"""Tests for payload generators, arrival processes and scenarios."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.workloads.arrivals import ClosedLoopSchedule, PoissonSchedule, merge_schedules
from repro.workloads.payloads import (
    ImagePayloadGenerator,
    PayloadGenerator,
    SensorReadingGenerator,
)
from repro.workloads.scenarios import IoTPipelineWorkload, PipelineStage


# ------------------------------------------------------------------- payloads
def test_payload_generator_produces_requested_size():
    generator = PayloadGenerator(size_bytes=4096, seed=1)
    item = generator.next_item()
    assert item.size_bytes == 4096
    assert len(item.checksum) == 64


def test_payload_generator_items_are_unique():
    generator = PayloadGenerator(size_bytes=128, seed=1)
    checksums = {item.checksum for item in generator.items(20)}
    assert len(checksums) == 20


def test_payload_generator_is_deterministic():
    a = [i.checksum for i in PayloadGenerator(256, seed=9).items(5)]
    b = [i.checksum for i in PayloadGenerator(256, seed=9).items(5)]
    assert a == b


def test_payload_generator_rejects_negative_size():
    with pytest.raises(ValueError):
        PayloadGenerator(size_bytes=-1)


def test_sensor_generator_emits_json_readings():
    generator = SensorReadingGenerator(sensor_id="s7", seed=2)
    item = generator.next_item()
    reading = json.loads(item.data)
    assert reading["sensor"] == "s7"
    assert -20.0 <= reading["temperature_c"] <= 35.0
    assert item.key.startswith("sensors/s7/")


def test_image_generator_size_varies_around_target():
    generator = ImagePayloadGenerator(size_bytes=100_000, size_jitter=0.2, seed=3)
    sizes = [generator.next_item().size_bytes for _ in range(10)]
    assert all(s > 0 for s in sizes)
    assert len(set(sizes)) > 1
    mean = sum(sizes) / len(sizes)
    assert 50_000 < mean < 200_000


# ------------------------------------------------------------------- arrivals
def test_closed_loop_schedule_count_and_order():
    schedule = ClosedLoopSchedule(total_requests=10, concurrency=2,
                                  estimated_service_time_s=0.1)
    times = list(schedule.arrival_times())
    assert len(times) == 10
    assert times == sorted(times)


def test_closed_loop_validation():
    with pytest.raises(ConfigurationError):
        ClosedLoopSchedule(total_requests=0)
    with pytest.raises(ConfigurationError):
        ClosedLoopSchedule(total_requests=1, concurrency=0)


def test_poisson_schedule_rate_and_bounds():
    schedule = PoissonSchedule(rate_per_s=10.0, duration_s=100.0, seed=5)
    times = list(schedule.arrival_times())
    assert all(0.0 <= t < 100.0 for t in times)
    assert times == sorted(times)
    assert len(times) == pytest.approx(schedule.expected_count(), rel=0.2)


def test_poisson_zero_rate_yields_nothing():
    assert list(PoissonSchedule(0.0, 10.0).arrival_times()) == []


def test_poisson_validation():
    with pytest.raises(ConfigurationError):
        PoissonSchedule(-1.0, 10.0)
    with pytest.raises(ConfigurationError):
        PoissonSchedule(1.0, 0.0)


def test_merge_schedules_sorted():
    merged = merge_schedules([
        PoissonSchedule(1.0, 10.0, seed=1),
        PoissonSchedule(2.0, 10.0, seed=2),
    ])
    assert merged == sorted(merged)


# ------------------------------------------------------------------ scenarios
def test_iot_pipeline_ingest_and_derive(desktop_deployment):
    workload = IoTPipelineWorkload(
        desktop_deployment.client, sensor_count=2, camera_count=1,
        image_size_bytes=8 * 1024, seed=11,
    )
    posts = workload.ingest_round()
    desktop_deployment.drain()
    assert len(posts) == 3
    assert all(p.handle.is_valid for p in posts)

    derived = workload.derive(PipelineStage(name="hourly-summary"))
    desktop_deployment.drain()
    assert derived.handle.is_valid
    assert sorted(derived.record.dependencies) == sorted(p.record.key for p in posts)

    lineage = desktop_deployment.client.get_lineage(derived.record.key)
    assert lineage.ancestor_count == 3

    checks = workload.verify_all()
    assert all(checks.values())
    assert workload.total_items == 4


def test_iot_pipeline_derive_requires_sources(desktop_deployment):
    workload = IoTPipelineWorkload(desktop_deployment.client, sensor_count=1, camera_count=0)
    with pytest.raises(ValueError):
        workload.derive(PipelineStage(name="empty"), source_posts=[])
