"""Vectorized arrival sampling: same draws as the generator, plan invariants."""

import pytest

from repro.common.errors import ConfigurationError
from repro.simulation.randomness import DeterministicRandom
from repro.workloads.arrivals import (
    CohortArrivalPlan,
    PoissonSchedule,
    sample_poisson_times,
)


class TestSamplePoissonTimes:
    def test_matches_generator_draw_for_draw(self):
        generated = list(PoissonSchedule(5.0, 30.0, seed=11).arrival_times())
        sampled = PoissonSchedule(5.0, 30.0, seed=11).sample()
        assert sampled == generated

    def test_zero_rate_is_empty(self):
        assert sample_poisson_times(DeterministicRandom(1), 0.0, 10.0) == []

    def test_rejects_bad_parameters(self):
        rng = DeterministicRandom(1)
        with pytest.raises(ConfigurationError):
            sample_poisson_times(rng, -1.0, 10.0)
        with pytest.raises(ConfigurationError):
            sample_poisson_times(rng, 1.0, 0.0)

    def test_times_stay_inside_the_window(self):
        times = sample_poisson_times(DeterministicRandom(3), 2.0, 50.0, start_time_s=5.0)
        assert all(5.0 <= t < 55.0 for t in times)
        assert times == sorted(times)


class TestCohortArrivalPlan:
    def make_plan(self, **overrides) -> CohortArrivalPlan:
        base = dict(
            devices=40, shards=4, rate_per_device_s=0.1,
            duration_s=50.0, seed=9, churn_fraction=0.25,
        )
        base.update(overrides)
        return CohortArrivalPlan(**base)

    def test_deterministic_across_constructions(self):
        first = self.make_plan()
        second = self.make_plan()
        assert first.merged() == second.merged()

    def test_device_streams_independent_of_shard_count(self):
        # Streams fork by device index, never by shard layout, so resharding
        # a fleet cannot move any device's submission times.
        by_two = {s.device_index: s.times for s in self.make_plan(shards=2).schedules}
        by_four = {s.device_index: s.times for s in self.make_plan(shards=4).schedules}
        assert by_two == by_four

    def test_shard_slices_partition_the_fleet(self):
        plan = self.make_plan()
        seen = []
        for shard in range(plan.shards):
            for schedule in plan.for_shard(shard):
                assert schedule.device_index % plan.shards == shard
                seen.append(schedule.device_index)
        assert sorted(seen) == list(range(plan.devices))
        assert sum(plan.total_arrivals(s) for s in range(plan.shards)) == (
            plan.total_arrivals()
        )

    def test_churned_devices_have_a_silent_window(self):
        plan = self.make_plan()
        churned = [s for s in plan.schedules if s.offline_window is not None]
        assert churned, "churn_fraction=0.25 must churn some devices"
        for schedule in churned:
            leave, rejoin = schedule.offline_window
            assert 0.0 < leave < rejoin <= plan.duration_s
            assert not any(leave <= t < rejoin for t in schedule.times)

    def test_merged_is_sorted_and_horizon_bounds_it(self):
        plan = self.make_plan()
        merged = plan.merged()
        assert merged == sorted(merged)
        assert merged, "plan should produce arrivals at these rates"
        assert merged[-1][0] == plan.horizon_s()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make_plan(devices=0)
        with pytest.raises(ConfigurationError):
            self.make_plan(churn_fraction=1.5)
        with pytest.raises(ConfigurationError):
            self.make_plan(churn_offline_fraction=0.9)
