"""Tests for organizations, identities, MSP validation and policies."""

import pytest

from repro.common.errors import CryptoError, NotFoundError
from repro.membership.identity import Organization
from repro.membership.msp import MSP
from repro.membership.policies import (
    AndPolicy,
    OrPolicy,
    OutOfPolicy,
    SignaturePolicy,
    all_of,
    any_of,
    majority_of,
)


# --------------------------------------------------------------- organizations
def test_enroll_creates_identity_with_valid_certificate():
    org = Organization("org1")
    identity = org.enroll("peer0", role="peer")
    assert identity.organization == "org1"
    assert org.ca.validate(identity.certificate)


def test_enroll_is_idempotent():
    org = Organization("org1")
    assert org.enroll("peer0") is org.enroll("peer0")
    assert org.identity_count == 1


def test_get_identity_unknown_raises():
    with pytest.raises(NotFoundError):
        Organization("org1").get_identity("ghost")


def test_identity_signature_verifies_via_msp():
    org = Organization("org1")
    identity = org.enroll("client1", role="client")
    msp = MSP([org])
    signature = identity.sign(b"proposal")
    assert msp.verify_signature(identity.certificate, b"proposal", signature)


def test_revoked_identity_fails_msp_validation():
    org = Organization("org1")
    identity = org.enroll("client1")
    msp = MSP([org])
    org.revoke("client1")
    assert not msp.validate_certificate(identity.certificate)
    with pytest.raises(CryptoError):
        msp.require_valid_certificate(identity.certificate)


# ------------------------------------------------------------------------ msp
def test_msp_rejects_foreign_organization():
    org1, org2 = Organization("org1"), Organization("org2")
    msp = MSP([org1])
    outsider = org2.enroll("peer0")
    assert not msp.validate_certificate(outsider.certificate)


def test_msp_add_and_remove_organization():
    org1, org2 = Organization("org1"), Organization("org2")
    msp = MSP([org1])
    msp.add_organization(org2)
    assert msp.organization_names == ["org1", "org2"]
    msp.remove_organization("org1")
    assert msp.organization_names == ["org2"]
    with pytest.raises(NotFoundError):
        msp.organization("org1")


def test_member_organizations_of_filters_invalid_certs():
    org1, org2 = Organization("org1"), Organization("org2")
    msp = MSP([org1])
    certs = [org1.enroll("a").certificate, org2.enroll("b").certificate]
    assert msp.member_organizations_of(certs) == ["org1"]


# ------------------------------------------------------------------- policies
def test_signature_policy():
    policy = SignaturePolicy("org1")
    assert policy({"org1", "org2"})
    assert not policy({"org2"})


def test_and_policy_requires_all():
    policy = AndPolicy(SignaturePolicy("org1"), SignaturePolicy("org2"))
    assert policy({"org1", "org2"})
    assert not policy({"org1"})


def test_or_policy_requires_any():
    policy = OrPolicy(SignaturePolicy("org1"), SignaturePolicy("org2"))
    assert policy({"org2"})
    assert not policy({"org3"})


def test_out_of_policy_threshold():
    policy = OutOfPolicy(2, [SignaturePolicy(f"org{i}") for i in range(1, 5)])
    assert policy({"org1", "org3"})
    assert not policy({"org1"})


def test_out_of_policy_validates_threshold():
    with pytest.raises(ValueError):
        OutOfPolicy(0, [SignaturePolicy("org1")])
    with pytest.raises(ValueError):
        OutOfPolicy(3, [SignaturePolicy("org1")])


def test_majority_of_four_organizations_needs_three():
    policy = majority_of(["org1", "org2", "org3", "org4"])
    assert policy({"org1", "org2", "org3"})
    assert not policy({"org1", "org2"})


def test_majority_of_single_org():
    assert majority_of(["org1"])({"org1"})
    with pytest.raises(ValueError):
        majority_of([])


def test_any_of_and_all_of_helpers():
    assert any_of(["org1", "org2"])({"org2"})
    assert all_of(["org1", "org2"])({"org1", "org2"})
    assert not all_of(["org1", "org2"])({"org1"})


def test_policy_descriptions_are_readable():
    policy = AndPolicy(SignaturePolicy("org1"), OrPolicy(SignaturePolicy("org2")))
    description = policy.describe()
    assert "org1" in description and "org2" in description


def test_empty_composite_policies_rejected():
    with pytest.raises(ValueError):
        AndPolicy()
    with pytest.raises(ValueError):
        OrPolicy()
