"""Tests for transactions, blocks, world state, history and the block store."""

import pytest

from repro.common.errors import NotFoundError, SealedEnvelopeError, ValidationError
from repro.ledger.block import Block
from repro.ledger.blockchain import BlockStore, GENESIS_PREVIOUS_HASH
from repro.ledger.history import HistoryDatabase
from repro.ledger.transaction import ReadWriteSet, Transaction, TxValidationCode
from repro.ledger.world_state import WorldState


def make_tx(tx_id: str, key: str = "k", value: str = "v", read_version=None) -> Transaction:
    rw_set = ReadWriteSet()
    rw_set.add_read(key, read_version)
    rw_set.add_write(key, value)
    return Transaction(
        tx_id=tx_id,
        channel="ch",
        chaincode="hyperprov",
        function="set",
        args=[key, value],
        rw_set=rw_set,
    )


# ----------------------------------------------------------------- transaction
def test_rw_set_digest_is_stable_and_content_sensitive():
    a = ReadWriteSet()
    a.add_read("k", (0, 1))
    a.add_write("k", "v")
    b = ReadWriteSet()
    b.add_read("k", (0, 1))
    b.add_write("k", "v")
    assert a.digest() == b.digest()
    b.add_write("other", "x")
    assert a.digest() != b.digest()


def test_transaction_digest_covers_args():
    assert make_tx("t1", value="a").digest() != make_tx("t1", value="b").digest()


def test_transaction_size_positive_and_grows_with_args():
    small = make_tx("t1", value="v")
    large = make_tx("t1", value="v" * 10_000)
    assert 0 < small.size_bytes < large.size_bytes


def test_transaction_is_valid_flag():
    tx = make_tx("t1")
    assert tx.is_valid
    tx.validation_code = TxValidationCode.MVCC_READ_CONFLICT
    assert not tx.is_valid


# ---------------------------------------------------------------- seal/tamper
def test_unsealed_transaction_recomputes_envelope_on_mutation():
    tx = make_tx("t1")
    before = tx.digest()
    tx.args[1] = "mutated"
    assert tx.digest() != before  # no stale cache on unsealed envelopes


def test_sealed_transaction_caches_envelope_and_rejects_mutation():
    tx = make_tx("t1")
    unsealed_digest = tx.digest()
    assert tx.seal() is tx
    assert tx.sealed and tx.rw_set.sealed
    assert tx.digest() == unsealed_digest  # sealing does not change bytes
    assert tx.envelope_bytes() is tx.envelope_bytes()  # compute-once
    with pytest.raises(TypeError):
        tx.args[1] = "forged"
    with pytest.raises(SealedEnvelopeError):
        tx.rw_set.add_write("k", "forged")
    with pytest.raises(SealedEnvelopeError):
        tx.rw_set.add_read("k", None)
    tx.seal()  # idempotent
    # Commit metadata stays assignable on sealed envelopes.
    tx.validation_code = TxValidationCode.MVCC_READ_CONFLICT
    assert not tx.is_valid


def test_sealed_transaction_rejects_scalar_field_mutation():
    tx = make_tx("t1").seal()
    with pytest.raises(SealedEnvelopeError):
        tx.timestamp = 999.0
    with pytest.raises(SealedEnvelopeError):
        tx.creator_signature = "forged"
    with pytest.raises(SealedEnvelopeError):
        tx.rw_set = ReadWriteSet()
    with pytest.raises(SealedEnvelopeError):
        tx.rw_set.reads = []


def test_sealed_endorsement_is_frozen_but_tamper_clone_is_not():
    from repro.crypto.certificates import CertificateAuthority
    from repro.ledger.transaction import Endorsement

    ca = CertificateAuthority("ca1", "org1")
    cert = ca.issue("peer0", "pk")
    endorsement = Endorsement(
        endorser="peer0", organization="org1", certificate=cert,
        signature="sig", response_digest="digest",
    )
    tx = make_tx("t1")
    tx.endorsements.append(endorsement)
    tx.seal()
    with pytest.raises(SealedEnvelopeError):
        endorsement.signature = "forged"
    clone = tx.tamper()
    clone.endorsements[0].signature = "forged"  # private copy: allowed
    assert tx.endorsements[0].signature == "sig"
    assert clone.digest() != tx.digest()


def test_rw_set_digest_cache_invalidated_by_mutation_api():
    rw = ReadWriteSet()
    rw.add_read("k", (0, 0))
    first = rw.digest()
    assert rw.digest() == first  # cached
    rw.add_write("k", "v2")
    assert rw.digest() != first  # mutation API dropped the cache


def test_tamper_clone_is_mutable_isolated_and_hash_visible():
    tx = make_tx("t1").seal()
    clone = tx.tamper()
    assert not clone.sealed
    assert clone.digest() == tx.digest()  # identical until mutated
    clone.args[1] = "forged"
    clone.rw_set.add_write("extra", "w")
    assert clone.digest() != tx.digest()
    # The sealed original is untouched.
    assert tx.args[1] == "v"
    assert len(tx.rw_set.writes) == 1


def test_block_tamper_swaps_in_private_clone():
    txs = [make_tx("t1").seal(), make_tx("t2").seal()]
    shared = Block.build(0, GENESIS_PREVIOUS_HASH, txs, timestamp=1.0)
    peer_copy = Block(
        header=shared.header, transactions=shared.transactions, orderer="o"
    )
    tampered = peer_copy.tamper(0)
    tampered.args[1] = "forged"
    assert not peer_copy.verify_data_hash()
    # The other Block sharing the sealed transactions still verifies.
    assert shared.verify_data_hash()
    assert shared.transactions[0].args[1] == "v"


# ----------------------------------------------------------------------- block
def test_block_build_computes_merkle_data_hash():
    block = Block.build(0, GENESIS_PREVIOUS_HASH, [make_tx("t1"), make_tx("t2")], timestamp=1.0)
    assert block.verify_data_hash()
    assert block.tx_count == 2


def test_block_data_hash_detects_tampering():
    block = Block.build(0, GENESIS_PREVIOUS_HASH, [make_tx("t1"), make_tx("t2")], timestamp=1.0)
    block.transactions[0].args[1] = "tampered"
    assert not block.verify_data_hash()


def test_block_valid_transactions_respects_flags():
    txs = [make_tx("t1"), make_tx("t2")]
    block = Block.build(0, GENESIS_PREVIOUS_HASH, txs, timestamp=0.0)
    assert len(block.valid_transactions()) == 2
    block.validation_flags = [TxValidationCode.VALID, TxValidationCode.MVCC_READ_CONFLICT]
    assert [tx.tx_id for tx in block.valid_transactions()] == ["t1"]
    assert block.validation_summary() == {"VALID": 1, "MVCC_READ_CONFLICT": 1}


def test_block_find_transaction():
    block = Block.build(0, GENESIS_PREVIOUS_HASH, [make_tx("t1")], timestamp=0.0)
    assert block.find_transaction("t1") is not None
    assert block.find_transaction("missing") is None


# ----------------------------------------------------------------- world state
def test_world_state_put_get_with_versions():
    state = WorldState()
    state.put("k", "v1", (0, 0))
    assert state.get_value("k") == "v1"
    assert state.get_version("k") == (0, 0)
    state.put("k", "v2", (1, 3))
    assert state.get_version("k") == (1, 3)


def test_world_state_delete():
    state = WorldState()
    state.put("k", "v", (0, 0))
    state.delete("k", (1, 0))
    assert state.get("k") is None
    assert "k" not in state


def test_world_state_range_query():
    state = WorldState()
    for key in ["a/1", "a/2", "b/1"]:
        state.put(key, key.upper(), (0, 0))
    assert state.range_query("a/", "a/~") == [("a/1", "A/1"), ("a/2", "A/2")]
    assert state.range_query("a/", "") == [("a/1", "A/1"), ("a/2", "A/2"), ("b/1", "B/1")]


def test_world_state_prefix_query_and_snapshot():
    state = WorldState()
    state.put("sensors/1", "x", (0, 0))
    state.put("cameras/1", "y", (0, 1))
    assert state.query_by_prefix("sensors/") == [("sensors/1", "x")]
    assert state.snapshot() == {"sensors/1": "x", "cameras/1": "y"}
    assert len(state) == 2


# -------------------------------------------------------------------- history
def test_history_records_in_order():
    history = HistoryDatabase()
    history.record("k", "t1", 0, 0, 1.0, "v1")
    history.record("k", "t2", 1, 0, 2.0, "v2")
    entries = history.history_for_key("k")
    assert [e.value for e in entries] == ["v1", "v2"]
    assert history.latest("k").tx_id == "t2"
    assert history.version_count("k") == 2


def test_history_unknown_key_is_empty():
    history = HistoryDatabase()
    assert history.history_for_key("ghost") == []
    assert history.latest("ghost") is None


def test_history_tracks_deletes():
    history = HistoryDatabase()
    history.record("k", "t1", 0, 0, 1.0, "v1")
    history.record("k", "t2", 1, 0, 2.0, None, is_delete=True)
    assert history.latest("k").is_delete


def test_history_keys_maintained_sorted_without_rescan():
    history = HistoryDatabase()
    for key in ["m/2", "a/1", "z/9", "a/0", "m/2", "a/1"]:
        history.record(key, f"t-{key}", 0, 0, 1.0, "v")
    assert history.keys() == ["a/0", "a/1", "m/2", "z/9"]
    # Returned list is a copy: mutating it cannot corrupt the index.
    history.keys().append("bogus")
    assert history.keys() == ["a/0", "a/1", "m/2", "z/9"]


def test_world_state_prefix_bucket_index_matches_cross_bucket_scan():
    state = WorldState()
    for key, value in [
        ("tenant/a/1", "a1"), ("tenant/b/2", "b2"), ("other/x", "x"),
        ("tenantx/y", "y"),
    ]:
        state.put(key, value, (0, 0))
    # Bucket-resolved prefix (contains the separator).
    assert state.query_by_prefix("tenant/a/") == [("tenant/a/1", "a1")]
    assert state.query_by_prefix("tenant/") == [
        ("tenant/a/1", "a1"), ("tenant/b/2", "b2")
    ]
    # A prefix without a separator spans buckets ("tenant" vs "tenantx").
    assert state.query_by_prefix("tenant") == [
        ("tenant/a/1", "a1"), ("tenant/b/2", "b2"), ("tenantx/y", "y")
    ]
    assert state.query_by_prefix("missing/") == []
    # Deletes are reflected in the bucket index too.
    state.delete("tenant/a/1", (1, 0))
    assert state.query_by_prefix("tenant/") == [("tenant/b/2", "b2")]


# ------------------------------------------------------------------ blockstore
def _chain_of(count: int) -> BlockStore:
    store = BlockStore()
    for number in range(count):
        block = Block.build(
            number, store.latest_hash, [make_tx(f"t{number}")], timestamp=float(number)
        )
        store.append(block)
    return store


def test_blockstore_appends_and_links():
    store = _chain_of(3)
    assert store.height == 3
    assert store.verify_chain()
    assert store.block(1).header.previous_hash == store.block(0).hash


def test_blockstore_rejects_wrong_number():
    store = _chain_of(1)
    wrong = Block.build(5, store.latest_hash, [make_tx("x")], timestamp=0.0)
    with pytest.raises(ValidationError):
        store.append(wrong)


def test_blockstore_rejects_broken_hash_link():
    store = _chain_of(1)
    wrong = Block.build(1, GENESIS_PREVIOUS_HASH * 1, [make_tx("x")], timestamp=0.0)
    # previous hash points at genesis instead of block 0.
    if store.block(0).hash != GENESIS_PREVIOUS_HASH:
        with pytest.raises(ValidationError):
            store.append(wrong)


def test_blockstore_rejects_tampered_block_data():
    store = _chain_of(1)
    block = Block.build(1, store.latest_hash, [make_tx("t1b")], timestamp=1.0)
    block.transactions[0].args[1] = "tampered"
    with pytest.raises(ValidationError):
        store.append(block)


def test_blockstore_transaction_index():
    store = _chain_of(3)
    assert store.find_transaction("t2").tx_id == "t2"
    assert store.transaction_location("t2") == (2, 0)
    assert store.find_transaction("missing") is None
    assert store.total_transactions == 3


def test_blockstore_block_out_of_range():
    store = _chain_of(1)
    with pytest.raises(NotFoundError):
        store.block(10)
