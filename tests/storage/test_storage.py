"""Tests for the off-chain storage backends and content addressing."""

import pytest

from repro.common.errors import ChecksumMismatchError, NotFoundError
from repro.common.hashing import checksum_of
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom
from repro.storage.content import ContentAddressedStore
from repro.storage.local import LocalStorageBackend
from repro.storage.sshfs import SSHFSConfig, SSHFSStorageBackend


@pytest.fixture
def network():
    fabric = NetworkFabric(engine=SimulationEngine(), rng=DeterministicRandom(1))
    fabric.register_node("client-host", profile=RASPBERRY_PI_3B_PLUS.nic)
    return fabric


@pytest.fixture
def sshfs(network):
    storage_device = DeviceModel("storage", XEON_E5_1603, rng=DeterministicRandom(2))
    return SSHFSStorageBackend(network=network, storage_device=storage_device)


@pytest.fixture
def client_device():
    return DeviceModel("client", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(3))


# ----------------------------------------------------------------------- local
def test_local_store_and_retrieve_roundtrip():
    backend = LocalStorageBackend()
    receipt = backend.store("a/b", b"payload")
    assert receipt.checksum == checksum_of(b"payload")
    assert backend.exists("a/b")
    retrieved = backend.retrieve("a/b")
    assert retrieved.checksum == receipt.checksum
    assert backend.get_object("a/b").data == b"payload"


def test_local_missing_path_raises():
    with pytest.raises(NotFoundError):
        LocalStorageBackend().retrieve("ghost")


def test_local_delete_and_list():
    backend = LocalStorageBackend()
    backend.store("x/1", b"1")
    backend.store("x/2", b"2")
    backend.store("y/1", b"3")
    assert backend.list_paths("x/") == ["x/1", "x/2"]
    assert backend.delete("x/1")
    assert not backend.delete("x/1")
    assert backend.list_paths("x/") == ["x/2"]


def test_local_with_device_charges_disk_time():
    device = DeviceModel("host", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(4))
    backend = LocalStorageBackend(device=device)
    receipt = backend.store("k", b"x" * 1024 * 1024)
    assert receipt.duration_s > 0
    assert device.busy_time(component="disk") > 0


def test_local_location_uses_file_scheme():
    assert LocalStorageBackend(host="edge-1").location_of("a") == "file://edge-1/a"


# ----------------------------------------------------------------------- sshfs
def test_sshfs_store_and_retrieve_with_costs(sshfs, client_device):
    data = b"y" * 256 * 1024
    receipt = sshfs.store(
        "items/1", data, at_time=0.0, client_device=client_device, client_node="client-host"
    )
    assert receipt.checksum == checksum_of(data)
    assert receipt.duration_s > 0
    assert receipt.location.startswith("ssh://storage/")

    fetched = sshfs.retrieve(
        "items/1", at_time=receipt.completed_at,
        client_device=client_device, client_node="client-host",
        expected_checksum=receipt.checksum,
    )
    assert fetched.checksum == receipt.checksum
    assert fetched.duration_s > 0


def test_sshfs_transfer_cost_grows_with_size(sshfs, client_device):
    small = sshfs.store("s", b"a" * 1024, client_device=client_device,
                        client_node="client-host")
    large = sshfs.store("l", b"a" * 4 * 1024 * 1024, client_device=client_device,
                        client_node="client-host")
    assert large.duration_s > small.duration_s


def test_sshfs_checksum_mismatch_detected(sshfs, client_device):
    sshfs.store("items/1", b"original", client_device=client_device,
                client_node="client-host")
    with pytest.raises(ChecksumMismatchError):
        sshfs.retrieve(
            "items/1", client_device=client_device, client_node="client-host",
            expected_checksum=checksum_of(b"something else"),
        )


def test_sshfs_missing_object_raises(sshfs):
    with pytest.raises(NotFoundError):
        sshfs.retrieve("ghost")


def test_sshfs_inventory_helpers(sshfs):
    sshfs.store("a/1", b"1")
    sshfs.store("a/2", b"22")
    assert sshfs.total_bytes_stored() == 3
    assert sshfs.list_paths("a/") == ["a/1", "a/2"]
    assert sshfs.verify_integrity() == []
    assert sshfs.delete("a/1")


def test_sshfs_registers_storage_node_on_network(network):
    device = DeviceModel("storage", XEON_E5_1603)
    SSHFSStorageBackend(network=network, storage_device=device,
                        config=SSHFSConfig(storage_node="nas"))
    assert "nas" in network.nodes


# --------------------------------------------------------------------- content
def test_content_store_is_idempotent(sshfs):
    store = ContentAddressedStore(sshfs)
    data = b"same payload"
    first = store.put(data)
    second = store.put(data)
    assert first.path == second.path
    assert second.duration_s == 0.0
    assert store.exists(checksum_of(data))
    assert store.list_checksums() == [checksum_of(data)]


def test_content_store_get_roundtrip(sshfs, client_device):
    store = ContentAddressedStore(sshfs)
    data = b"content addressed"
    receipt = store.put(data, client_device=client_device, client_node="client-host")
    fetched = store.get(receipt.checksum, client_device=client_device,
                        client_node="client-host")
    assert fetched.checksum == receipt.checksum
    assert store.get_object(receipt.checksum).data == data


def test_content_store_path_layout(sshfs):
    store = ContentAddressedStore(sshfs, prefix="objects")
    checksum = checksum_of(b"z")
    assert store.path_for(checksum) == f"objects/{checksum[:2]}/{checksum}"
