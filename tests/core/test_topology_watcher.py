"""Tests for the deployment builders and the file watcher."""

import pytest

from repro.common.errors import ConfigurationError
from repro.api.protocol import StoreRequest
from repro.consensus.batching import BatchConfig
from repro.consensus.raft import RaftOrderingService
from repro.consensus.solo import SoloOrderingService
from repro.core.topology import (
    DeploymentSpec,
    build_deployment,
    build_desktop_deployment,
    build_rpi_deployment,
)
from repro.core.watcher import FileWatcher
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603


# -------------------------------------------------------------------- topology
def test_desktop_deployment_matches_paper_setup(desktop_deployment):
    assert len(desktop_deployment.peers) == 4
    profiles = [p.device.profile.name for p in desktop_deployment.peers]
    assert profiles.count("xeon-e5-1603") == 2
    assert "core-i7-4700mq" in profiles
    assert "core-i3-2310m" in profiles
    assert isinstance(desktop_deployment.fabric.orderer, SoloOrderingService)
    assert "storage" in desktop_deployment.devices
    assert desktop_deployment.channel.name == "hyperprov-channel"


def test_rpi_deployment_uses_rpi_profiles(rpi_deployment):
    assert len(rpi_deployment.peers) == 4
    assert all(
        p.device.profile.name == "raspberry-pi-3b-plus" for p in rpi_deployment.peers
    )
    # Client co-located with a peer, as in the paper's energy measurements.
    context = rpi_deployment.fabric.client_context("hyperprov-client")
    assert context.host_node == rpi_deployment.peers[0].name


def test_deployments_are_deterministic_given_seed():
    first = build_desktop_deployment(seed=7)
    second = build_desktop_deployment(seed=7)
    post1 = first.client.as_store().submit(StoreRequest(key="k", data=b"x"))
    post2 = second.client.as_store().submit(StoreRequest(key="k", data=b"x"))
    first.drain()
    second.drain()
    assert post1.handle.latency_s == pytest.approx(post2.handle.latency_s)


def test_raft_deployment_builds_and_commits():
    deployment = build_desktop_deployment(ordering="raft", seed=3)
    assert isinstance(deployment.fabric.orderer, RaftOrderingService)
    deployment.engine.run(until=1.0)
    post = deployment.client.as_store().submit(StoreRequest(key="raft/1", data=b"x"))
    deployment.drain()
    assert post.done
    assert post.ok


def test_custom_batch_config_is_applied():
    config = BatchConfig(max_message_count=1, batch_timeout_s=0.5)
    deployment = build_desktop_deployment(batch_config=config, seed=5)
    assert deployment.channel.batch_config.max_message_count == 1
    assert deployment.fabric.orderer.batch_config.max_message_count == 1


def test_build_deployment_rejects_empty_peer_list():
    spec = DeploymentSpec(
        peer_profiles=[], orderer_profile=XEON_E5_1603,
        storage_profile=XEON_E5_1603, client_profile=XEON_E5_1603,
    )
    with pytest.raises(ConfigurationError):
        build_deployment(spec)


def test_build_deployment_rejects_unknown_ordering():
    spec = DeploymentSpec(
        peer_profiles=[RASPBERRY_PI_3B_PLUS], orderer_profile=XEON_E5_1603,
        storage_profile=XEON_E5_1603, client_profile=XEON_E5_1603,
        ordering="pbft",
    )
    with pytest.raises(ConfigurationError):
        build_deployment(spec)


def test_separate_client_host_supported():
    spec = DeploymentSpec(
        peer_profiles=[XEON_E5_1603, XEON_E5_1603],
        orderer_profile=XEON_E5_1603,
        storage_profile=XEON_E5_1603,
        client_profile=XEON_E5_1603,
        client_colocated_with=None,
    )
    deployment = build_deployment(spec)
    context = deployment.fabric.client_context("hyperprov-client")
    assert context.host_node == "client"
    post = deployment.client.as_store().submit(StoreRequest(key="k", data=b"x"))
    deployment.drain()
    assert post.ok


def test_device_lookup_helper(desktop_deployment):
    assert desktop_deployment.device("orderer").name == "orderer"
    with pytest.raises(ConfigurationError):
        desktop_deployment.device("ghost")


# --------------------------------------------------------------------- watcher
def test_watcher_posts_new_and_modified_files(desktop_deployment):
    watcher = FileWatcher(desktop_deployment.client, namespace="edge-files")
    first = watcher.observe("camera/frame.jpg", b"frame-v1")
    desktop_deployment.drain()
    assert first is not None and first.is_new
    assert first.post.handle.is_valid

    unchanged = watcher.observe("camera/frame.jpg", b"frame-v1")
    assert unchanged is None

    second = watcher.observe("camera/frame.jpg", b"frame-v2")
    desktop_deployment.drain()
    assert second is not None and not second.is_new
    assert watcher.change_count == 2
    assert watcher.observed_paths() == ["camera/frame.jpg"]


def test_watcher_links_versions_as_dependencies(desktop_deployment):
    watcher = FileWatcher(desktop_deployment.client, namespace="w")
    watcher.observe("data.csv", b"v1")
    desktop_deployment.drain()
    watcher.observe("data.csv", b"v2")
    desktop_deployment.drain()
    store = desktop_deployment.client.as_store()
    record = store.get("w/data.csv")
    assert list(record.dependencies) == ["w/data.csv"]
    assert len(store.history("w/data.csv")) == 2


def test_watcher_without_derivation_tracking(desktop_deployment):
    watcher = FileWatcher(desktop_deployment.client, namespace="w", track_derivations=False)
    watcher.observe("x", b"v1")
    desktop_deployment.drain()
    watcher.observe("x", b"v2")
    desktop_deployment.drain()
    record = desktop_deployment.client.as_store().get("w/x")
    assert list(record.dependencies) == []
