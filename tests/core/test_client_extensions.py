"""Tests for the extended client/chaincode features: rich queries,
ownership access control, chaincode events and parallel validation."""

import pytest

from repro.api.protocol import StoreRequest
from repro.bench.ablation_fastfabric import run_fastfabric_ablation
from repro.common.errors import ChaincodeError
from repro.common.hashing import checksum_of
from repro.core.client import HyperProvClient
from repro.core.topology import build_desktop_deployment
from repro.ledger.transaction import TxValidationCode


# ----------------------------------------------------------------- rich query
def test_query_records_by_creator_and_metadata(desktop_deployment):
    client = desktop_deployment.client
    store = client.as_store()
    store.submit(StoreRequest(key="q/a", data=b"a", metadata={"station": "tromso-01"}))
    store.submit(StoreRequest(key="q/b", data=b"b", metadata={"station": "oslo-02"}))
    desktop_deployment.drain()

    by_creator = client.query_records({"creator": "hyperprov-client"}).payload
    assert {row["key"] for row in by_creator} == {"q/a", "q/b"}

    by_station = client.query_records({"metadata.station": "tromso-01"}).payload
    assert [row["key"] for row in by_station] == ["q/a"]

    none = client.query_records({"creator": "nobody"}).payload
    assert none == []


def test_query_records_by_dependency(desktop_deployment):
    client = desktop_deployment.client
    store = client.as_store()
    store.submit(StoreRequest(key="q/raw", data=b"raw"))
    desktop_deployment.drain()
    store.submit(StoreRequest(key="q/derived", data=b"derived", dependencies=("q/raw",)))
    desktop_deployment.drain()
    rows = client.query_records({"dependencies": "q/raw"}).payload
    assert [row["key"] for row in rows] == ["q/derived"]


def test_query_records_rejects_bad_selector(desktop_deployment):
    client = desktop_deployment.client
    client.as_store().submit(StoreRequest(key="q/x", data=b"x"))
    desktop_deployment.drain()
    with pytest.raises(ChaincodeError):
        client.query_records({})


# ------------------------------------------------------------ access control
@pytest.fixture
def second_org_client(desktop_deployment):
    """A client enrolled with org2 on the same channel."""
    org2 = desktop_deployment.channel.msp.organization("org2")
    identity = org2.enroll("org2-client", role="client")
    device = desktop_deployment.peers[1].device
    desktop_deployment.fabric.add_client(
        "org2-client",
        identity=identity,
        device=device,
        host_node=desktop_deployment.peers[1].name,
        anchor_peer=desktop_deployment.peers[1].name,
    )
    return HyperProvClient(
        network=desktop_deployment.fabric,
        client_name="org2-client",
        storage=desktop_deployment.storage,
    )


def test_other_organization_cannot_update_owned_key(desktop_deployment, second_org_client):
    owner = desktop_deployment.client.as_store()
    owner.submit(StoreRequest(key="owned/key", data=b"v1"))
    desktop_deployment.drain()

    # org2's client tries to overwrite org1's record: rejected at endorsement.
    attempt = second_org_client.as_store().submit(
        StoreRequest(key="owned/key", checksum=checksum_of(b"forged"), location="loc")
    )
    desktop_deployment.drain()
    assert attempt.done
    assert attempt.handle.validation_code is TxValidationCode.ENDORSEMENT_POLICY_FAILURE

    # The original record is untouched, and the owner can still update it.
    assert owner.get("owned/key").checksum == checksum_of(b"v1")
    update = owner.submit(StoreRequest(key="owned/key", data=b"v2"))
    desktop_deployment.drain()
    assert update.ok


def test_other_organization_cannot_delete_owned_key(desktop_deployment, second_org_client):
    owner = desktop_deployment.client.as_store()
    owner.submit(StoreRequest(key="owned/delete-me", data=b"v1"))
    desktop_deployment.drain()
    handle = desktop_deployment.fabric.submit_transaction(
        "org2-client", "hyperprov", "delete", ["owned/delete-me"]
    )
    desktop_deployment.drain()
    assert not handle.is_valid
    assert owner.get("owned/delete-me").checksum == checksum_of(b"v1")


def test_second_org_can_create_its_own_keys(desktop_deployment, second_org_client):
    store = second_org_client.as_store()
    post = store.submit(StoreRequest(key="org2/data", data=b"theirs"))
    desktop_deployment.drain()
    assert post.ok
    record = store.get("org2/data")
    assert record.organization == "org2"


# ------------------------------------------------------------------- events
def test_provenance_recorded_event_fires_on_commit(desktop_deployment):
    client = desktop_deployment.client
    received = []
    client.on_provenance_recorded(received.append)

    post = client.as_store().submit(StoreRequest(key="events/1", data=b"payload"))
    assert received == []  # nothing until the block commits
    desktop_deployment.drain()

    assert len(received) == 1
    event = received[0]
    assert event["key"] == "events/1"
    assert event["checksum"] == post.record.checksum
    assert event["creator"] == "hyperprov-client"
    assert event["block_number"] == post.handle.commit_block


def test_no_event_for_invalidated_transaction(desktop_deployment):
    client = desktop_deployment.client
    received = []
    client.on_provenance_recorded(received.append)
    # Two conflicting updates: only the winner emits an event.
    store = client.as_store()
    store.submit(StoreRequest(key="events/conflict", checksum=checksum_of(b"a"), location="loc"))
    store.submit(StoreRequest(key="events/conflict", checksum=checksum_of(b"b"), location="loc"))
    desktop_deployment.drain()
    assert len(received) == 1


# -------------------------------------------------------- parallel validation
def test_parallel_validation_never_slower():
    ablation = run_fastfabric_ablation(payload_bytes=1024, requests=15)
    assert ablation.results["parallel"].committed == 15
    assert ablation.speedup >= 0.95


def test_parallel_validation_flag_reaches_peers():
    deployment = build_desktop_deployment(parallel_validation=True, seed=2)
    assert all(peer.parallel_validation for peer in deployment.peers)
    post = deployment.client.as_store().submit(StoreRequest(key="pv/1", data=b"x"))
    deployment.drain()
    assert post.ok
