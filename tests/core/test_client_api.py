"""Tests for the HyperProv client library (the paper's operator set)."""

import pytest

from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import ChaincodeError, NotFoundError, ValidationError
from repro.common.hashing import checksum_of
from repro.core.client import HyperProvClient


def test_init_succeeds_on_healthy_deployment(desktop_deployment):
    assert desktop_deployment.client.init() is True


def test_init_fails_without_chaincode(desktop_deployment):
    client = HyperProvClient(
        network=desktop_deployment.fabric,
        client_name="hyperprov-client",
        storage=desktop_deployment.storage,
        chaincode_name="not-instantiated",
    )
    with pytest.raises(ChaincodeError):
        client.init()


def test_post_and_get_metadata_only(desktop_deployment):
    client = desktop_deployment.client
    checksum = checksum_of(b"already stored elsewhere")
    post = client.post(
        key="external/1", checksum=checksum, location="file://edge-1/external/1",
        metadata={"source": "camera"}, size_bytes=17,
    )
    desktop_deployment.drain()
    assert post.handle.is_valid
    record = client.get("external/1").payload
    assert record.checksum == checksum
    assert record.location == "file://edge-1/external/1"
    assert record.metadata == {"source": "camera"}
    assert record.creator == "hyperprov-client"
    assert record.organization == "org1"


def test_store_data_roundtrip_with_offchain_storage(desktop_deployment):
    client = desktop_deployment.client
    payload = b"sensor reading 21.5C"
    post = client.store_data("sensors/1/r1", payload, metadata={"unit": "C"})
    desktop_deployment.drain()
    assert post.handle.is_valid
    assert post.storage_receipt is not None
    assert post.storage_receipt.checksum == checksum_of(payload)

    result = client.get_data("sensors/1/r1")
    assert result.verified
    assert result.data == payload
    assert result.timings["chain_s"] > 0
    assert result.timings["storage_s"] > 0


def test_get_data_detects_offchain_tampering(desktop_deployment):
    client = desktop_deployment.client
    payload = b"original"
    post = client.store_data("tamper/1", payload)
    desktop_deployment.drain()
    # Corrupt the off-chain object behind the chain's back.
    path = desktop_deployment.storage.path_for(post.record.checksum)
    backend = desktop_deployment.storage_backend
    obj = backend.get_object(path)
    backend._objects[path] = type(obj)(
        path=obj.path, data=b"corrupted", checksum=obj.checksum, stored_at=obj.stored_at
    )
    with pytest.raises(Exception):
        client.get_data("tamper/1")


def test_check_hash_accepts_bytes_and_checksums(desktop_deployment):
    client = desktop_deployment.client
    payload = b"integrity matters"
    client.store_data("check/1", payload)
    desktop_deployment.drain()
    assert client.check_hash("check/1", payload).payload is True
    assert client.check_hash("check/1", checksum_of(payload)).payload is True
    assert client.check_hash("check/1", b"modified").payload is False


def test_get_key_history_shows_every_version(desktop_deployment):
    client = desktop_deployment.client
    for version in (b"v1", b"v2", b"v3"):
        client.store_data("versioned/key", version)
        desktop_deployment.drain()
    history = client.get_key_history("versioned/key")
    assert len(history.payload) == 3
    checksums = [entry["record"].checksum for entry in history.payload]
    assert checksums == [checksum_of(b"v1"), checksum_of(b"v2"), checksum_of(b"v3")]


def test_get_dependencies_and_lineage(desktop_deployment):
    client = desktop_deployment.client
    client.store_data("raw/a", b"a")
    client.store_data("raw/b", b"b")
    desktop_deployment.drain()
    client.store_data("derived/ab", b"ab", dependencies=["raw/a", "raw/b"])
    desktop_deployment.drain()

    deps = client.get_dependencies("derived/ab").payload
    assert sorted(deps) == ["raw/a", "raw/b"]

    lineage = client.get_lineage("derived/ab")
    assert lineage.ancestor_count == 2
    assert lineage.contributing_agents == ["agent:org1/hyperprov-client"]


def test_get_by_range_excludes_internal_keys(desktop_deployment):
    client = desktop_deployment.client
    client.store_data("range/a", b"1")
    client.store_data("range/b", b"2")
    desktop_deployment.drain()
    rows = client.get_by_range("range/", "range/~").payload
    assert [row["key"] for row in rows] == ["range/a", "range/b"]
    assert all(isinstance(row["record"], ProvenanceRecord) for row in rows)


def test_get_missing_key_raises(desktop_deployment):
    with pytest.raises(NotFoundError):
        desktop_deployment.client.get("does/not/exist")
    with pytest.raises(NotFoundError):
        desktop_deployment.client.get_key_history("does/not/exist")


def test_store_data_requires_storage_backend(desktop_deployment):
    client = HyperProvClient(
        network=desktop_deployment.fabric, client_name="hyperprov-client", storage=None
    )
    with pytest.raises(ValidationError):
        client.store_data("k", b"x")
    with pytest.raises(ValidationError):
        client.get_data("k")


def test_query_latencies_are_recorded(desktop_deployment):
    client = desktop_deployment.client
    client.store_data("lat/1", b"x")
    desktop_deployment.drain()
    result = client.get("lat/1")
    assert result.latency_s > 0
    assert client.metrics.get_histogram("get_latency_s").count == 1
