"""Tests for the HyperProv client library (the paper's operator set).

Writes and key-scoped reads go through the unified
:class:`repro.api.ProvenanceStore` surface (``client.as_store()``); the
remaining operator-specific extensions (``get_data``, ``get_dependencies``,
``get_lineage``, ``get_by_range``) stay on the client.
"""

import pytest

from repro.api.protocol import StoreRequest
from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import ChaincodeError, NotFoundError, ValidationError
from repro.common.hashing import checksum_of
from repro.core.client import HyperProvClient


def test_init_succeeds_on_healthy_deployment(desktop_deployment):
    assert desktop_deployment.client.init() is True


def test_init_fails_without_chaincode(desktop_deployment):
    client = HyperProvClient(
        network=desktop_deployment.fabric,
        client_name="hyperprov-client",
        storage=desktop_deployment.storage,
        chaincode_name="not-instantiated",
    )
    with pytest.raises(ChaincodeError):
        client.init()


def test_post_and_get_metadata_only(desktop_deployment):
    store = desktop_deployment.client.as_store()
    checksum = checksum_of(b"already stored elsewhere")
    post = store.submit(
        StoreRequest(
            key="external/1", checksum=checksum,
            location="file://edge-1/external/1",
            metadata={"source": "camera"}, size_bytes=17,
        )
    )
    desktop_deployment.drain()
    assert post.ok
    record = store.get("external/1")
    assert record.checksum == checksum
    assert record.location == "file://edge-1/external/1"
    assert record.metadata == {"source": "camera"}
    assert record.creator == "hyperprov-client"
    assert record.organization == "org1"


def test_store_data_roundtrip_with_offchain_storage(desktop_deployment):
    client = desktop_deployment.client
    store = client.as_store()
    payload = b"sensor reading 21.5C"
    post = store.submit(
        StoreRequest(key="sensors/1/r1", data=payload, metadata={"unit": "C"})
    )
    desktop_deployment.drain()
    assert post.ok
    assert post.storage_receipt is not None
    assert post.storage_receipt.checksum == checksum_of(payload)

    result = client.get_data("sensors/1/r1")
    assert result.verified
    assert result.data == payload
    assert result.timings["chain_s"] > 0
    assert result.timings["storage_s"] > 0


def test_get_data_detects_offchain_tampering(desktop_deployment):
    client = desktop_deployment.client
    payload = b"original"
    post = client.as_store().submit(StoreRequest(key="tamper/1", data=payload))
    desktop_deployment.drain()
    # Corrupt the off-chain object behind the chain's back.
    path = desktop_deployment.storage.path_for(post.record.checksum)
    backend = desktop_deployment.storage_backend
    obj = backend.get_object(path)
    backend._objects[path] = type(obj)(
        path=obj.path, data=b"corrupted", checksum=obj.checksum, stored_at=obj.stored_at
    )
    with pytest.raises(Exception):
        client.get_data("tamper/1")


def test_verify_accepts_bytes_and_checksums(desktop_deployment):
    store = desktop_deployment.client.as_store()
    payload = b"integrity matters"
    store.submit(StoreRequest(key="check/1", data=payload))
    desktop_deployment.drain()
    assert store.verify("check/1", payload).matches is True
    assert store.verify("check/1", checksum_of(payload)).matches is True
    assert store.verify("check/1", b"modified").matches is False


def test_history_shows_every_version(desktop_deployment):
    store = desktop_deployment.client.as_store()
    for version in (b"v1", b"v2", b"v3"):
        store.submit(StoreRequest(key="versioned/key", data=version))
        desktop_deployment.drain()
    history = store.history("versioned/key")
    assert len(history) == 3
    checksums = [view.checksum for view in history.records]
    assert checksums == [checksum_of(b"v1"), checksum_of(b"v2"), checksum_of(b"v3")]


def test_get_dependencies_and_lineage(desktop_deployment):
    client = desktop_deployment.client
    store = client.as_store()
    store.submit(StoreRequest(key="raw/a", data=b"a"))
    store.submit(StoreRequest(key="raw/b", data=b"b"))
    desktop_deployment.drain()
    store.submit(
        StoreRequest(key="derived/ab", data=b"ab", dependencies=("raw/a", "raw/b"))
    )
    desktop_deployment.drain()

    deps = client.get_dependencies("derived/ab").payload
    assert sorted(deps) == ["raw/a", "raw/b"]

    lineage = client.get_lineage("derived/ab")
    assert lineage.ancestor_count == 2
    assert lineage.contributing_agents == ["agent:org1/hyperprov-client"]


def test_get_by_range_excludes_internal_keys(desktop_deployment):
    client = desktop_deployment.client
    store = client.as_store()
    store.submit(StoreRequest(key="range/a", data=b"1"))
    store.submit(StoreRequest(key="range/b", data=b"2"))
    desktop_deployment.drain()
    rows = client.get_by_range("range/", "range/~").payload
    assert [row["key"] for row in rows] == ["range/a", "range/b"]
    assert all(isinstance(row["record"], ProvenanceRecord) for row in rows)


def test_get_missing_key_raises(desktop_deployment):
    store = desktop_deployment.client.as_store()
    with pytest.raises(NotFoundError):
        store.get("does/not/exist")
    with pytest.raises(NotFoundError):
        store.history("does/not/exist")


def test_store_data_requires_storage_backend(desktop_deployment):
    client = HyperProvClient(
        network=desktop_deployment.fabric, client_name="hyperprov-client", storage=None
    )
    with pytest.raises(ValidationError):
        client.as_store().submit(StoreRequest(key="k", data=b"x"))
    with pytest.raises(ValidationError):
        client.get_data("k")


def test_query_latencies_are_recorded(desktop_deployment):
    client = desktop_deployment.client
    store = client.as_store()
    store.submit(StoreRequest(key="lat/1", data=b"x"))
    desktop_deployment.drain()
    result = store.get("lat/1")
    assert result.latency_s > 0
    assert client.metrics.get_histogram("get_latency_s").count == 1
