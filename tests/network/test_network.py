"""Tests for links, the network fabric and partitions."""

import pytest

from repro.common.errors import ConfigurationError, NotFoundError, PartitionError
from repro.network.fabric import NetworkFabric
from repro.network.link import GIGABIT_LAN, RPI_LAN, Link, LinkProfile
from repro.network.partitions import PartitionManager
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom


# ----------------------------------------------------------------------- links
def test_transfer_time_grows_with_payload():
    link = Link("a", "b", GIGABIT_LAN, rng=DeterministicRandom(1))
    small = link.transfer_time(1024)
    large = link.transfer_time(10 * 1024 * 1024)
    assert large > small


def test_transfer_time_includes_bandwidth_component():
    profile = LinkProfile(latency_s=0.0, bandwidth_bps=8e6, jitter_fraction=0.0)
    link = Link("a", "b", profile, rng=DeterministicRandom(1))
    # 1 MB over 8 Mbit/s should take about one second.
    assert link.transfer_time(1_000_000) == pytest.approx(1.0, rel=0.01)


def test_rpi_link_is_slower_than_gigabit():
    assert RPI_LAN.bandwidth_bps < GIGABIT_LAN.bandwidth_bps


def test_link_rejects_negative_payload():
    link = Link("a", "b", GIGABIT_LAN)
    with pytest.raises(ConfigurationError):
        link.transfer_time(-1)


def test_link_profile_validation():
    with pytest.raises(ConfigurationError):
        LinkProfile(latency_s=-1).validate()
    with pytest.raises(ConfigurationError):
        LinkProfile(bandwidth_bps=0).validate()
    with pytest.raises(ConfigurationError):
        LinkProfile(loss_rate=1.5).validate()


def test_link_tracks_traffic_counters():
    link = Link("a", "b", GIGABIT_LAN, rng=DeterministicRandom(1))
    link.transfer_time(100)
    link.transfer_time(200)
    assert link.bytes_transferred == 300
    assert link.messages_transferred == 2


# ------------------------------------------------------------------ partitions
def test_no_partition_means_full_connectivity():
    manager = PartitionManager()
    assert manager.can_communicate("a", "b")
    assert not manager.is_partitioned


def test_partition_blocks_cross_group_traffic():
    manager = PartitionManager()
    manager.partition([["a", "b"], ["c"]])
    assert manager.can_communicate("a", "b")
    assert not manager.can_communicate("a", "c")


def test_unassigned_nodes_form_implicit_group():
    manager = PartitionManager()
    manager.partition([["a"]])
    assert manager.can_communicate("x", "y")
    assert not manager.can_communicate("a", "x")


def test_heal_restores_connectivity():
    manager = PartitionManager()
    manager.partition([["a"], ["b"]])
    manager.heal()
    assert manager.can_communicate("a", "b")


def test_node_cannot_be_in_two_groups():
    manager = PartitionManager()
    with pytest.raises(ValueError):
        manager.partition([["a"], ["a", "b"]])


def test_reachable_from_and_groups():
    manager = PartitionManager()
    manager.partition([["a", "b"], ["c", "d"]])
    assert manager.reachable_from("a", ["a", "b", "c", "d"]) == ["a", "b"]
    assert manager.groups() == [{"a", "b"}, {"c", "d"}]


# --------------------------------------------------------------------- fabric
@pytest.fixture
def fabric():
    network = NetworkFabric(engine=SimulationEngine(), rng=DeterministicRandom(3))
    for node in ("alpha", "beta", "gamma"):
        network.register_node(node)
    return network


def test_send_delivers_to_handler(fabric):
    received = []
    fabric.set_handler("beta", lambda message: received.append(message))
    receipt = fabric.send("alpha", "beta", "ping", {"x": 1}, size_bytes=100)
    assert receipt.delivered
    assert received[0].payload == {"x": 1}
    assert receipt.latency_s > 0


def test_loopback_is_free(fabric):
    receipt = fabric.send("alpha", "alpha", "ping", None, size_bytes=10_000_000)
    assert receipt.latency_s == 0.0


def test_send_to_unknown_node_raises(fabric):
    with pytest.raises(NotFoundError):
        fabric.send("alpha", "ghost", "ping", None, 10)


def test_partitioned_nodes_cannot_communicate(fabric):
    fabric.partitions.partition([["alpha"], ["beta", "gamma"]])
    with pytest.raises(PartitionError):
        fabric.send("alpha", "beta", "ping", None, 10)


def test_send_later_delivers_via_engine(fabric):
    received = []
    fabric.set_handler("beta", lambda message: received.append(fabric.engine.now))
    fabric.send_later("alpha", "beta", "ping", None, size_bytes=1024)
    assert received == []
    fabric.engine.run_until_idle()
    assert len(received) == 1
    assert received[0] > 0.0


def test_broadcast_skips_source_and_partitioned_nodes(fabric):
    fabric.partitions.partition([["alpha", "beta"], ["gamma"]])
    receipts = fabric.broadcast("alpha", "announce", None, 10)
    assert set(receipts) == {"beta"}


def test_bytes_sent_accounting(fabric):
    fabric.send("alpha", "beta", "ping", None, size_bytes=500)
    fabric.send("alpha", "gamma", "ping", None, size_bytes=700)
    assert fabric.bytes_sent_by("alpha") == 1200
    assert fabric.bytes_sent_by("beta") == 0


def test_link_profile_uses_slower_endpoint():
    network = NetworkFabric(engine=SimulationEngine(), rng=DeterministicRandom(3))
    network.register_node("fast", profile=GIGABIT_LAN)
    network.register_node("slow", profile=RPI_LAN)
    fast_time = network.estimate_transfer_time("fast", "slow", 1_000_000)
    network2 = NetworkFabric(engine=SimulationEngine(), rng=DeterministicRandom(3))
    network2.register_node("fast", profile=GIGABIT_LAN)
    network2.register_node("fast2", profile=GIGABIT_LAN)
    both_fast = network2.estimate_transfer_time("fast", "fast2", 1_000_000)
    assert fast_time > both_fast
