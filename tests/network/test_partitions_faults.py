"""Edge cases for partitions and scheduled link degradations."""

import pytest

from repro.common.errors import NotFoundError, PartitionError
from repro.network.fabric import NetworkFabric
from repro.network.link import LinkProfile
from repro.network.partitions import PartitionManager
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom

FLAT = LinkProfile(latency_s=0.010, bandwidth_bps=1e9, jitter_fraction=0.0)


def make_fabric(*nodes):
    fabric = NetworkFabric(
        engine=SimulationEngine(),
        default_profile=FLAT,
        rng=DeterministicRandom(7),
    )
    for node in nodes:
        fabric.register_node(node)
    return fabric


# ------------------------------------------------------------- partitions
class TestPartitionManagerEdges:
    def test_unknown_node_raises_not_silently_noops(self):
        fabric = make_fabric("a", "b")
        with pytest.raises(NotFoundError, match="unknown node 'typo'"):
            fabric.partitions.partition([["typo"]])
        # The failed call must not leave a half-installed partition.
        assert not fabric.partitions.is_partitioned
        assert fabric.partitions.can_communicate("a", "b")

    def test_duplicate_node_across_groups_raises(self):
        manager = PartitionManager()
        with pytest.raises(ValueError, match="more than one group"):
            manager.partition([["a"], ["a", "b"]])

    def test_unlisted_nodes_form_an_implicit_group(self):
        manager = PartitionManager()
        manager.partition([["a"]])
        assert not manager.can_communicate("a", "b")
        assert manager.can_communicate("b", "c")

    def test_heal_is_idempotent_and_restores_everything(self):
        manager = PartitionManager()
        manager.partition([["a"], ["b"]])
        manager.heal()
        manager.heal()
        assert not manager.is_partitioned
        assert manager.can_communicate("a", "b")

    def test_repartition_replaces_the_previous_cut(self):
        manager = PartitionManager()
        manager.partition([["a"], ["b"]])
        manager.partition([["a", "b"]])
        assert manager.can_communicate("a", "b")
        assert not manager.can_communicate("a", "c")

    def test_partitioned_route_raises_partition_error(self):
        fabric = make_fabric("a", "b")
        fabric.partitions.partition([["a"]])
        with pytest.raises(PartitionError):
            fabric.estimate_transfer_time("a", "b", 1024)
        fabric.partitions.heal()
        assert fabric.estimate_transfer_time("a", "b", 1024) > 0


# ------------------------------------------------------------ link faults
class TestLinkFaultWindows:
    def test_extra_latency_applies_only_inside_the_window(self):
        fabric = make_fabric("a", "b")
        clean = fabric.estimate_transfer_time("a", "b", 1024)
        fabric.inject_link_fault(
            "a", "b", start_s=10.0, end_s=20.0, extra_latency_s=0.5
        )
        before = fabric.estimate_transfer_time("a", "b", 1024)
        fabric.engine.run(until=15.0)
        during = fabric.estimate_transfer_time("a", "b", 1024)
        fabric.engine.run(until=25.0)
        after = fabric.estimate_transfer_time("a", "b", 1024)
        assert before == pytest.approx(clean)
        assert during == pytest.approx(clean + 0.5)
        assert after == pytest.approx(clean)

    def test_zero_duration_window_never_fires(self):
        fabric = make_fabric("a", "b")
        clean = fabric.estimate_transfer_time("a", "b", 1024)
        fabric.inject_link_fault(
            "a", "b", start_s=10.0, end_s=10.0, extra_latency_s=9.9
        )
        fabric.engine.run(until=10.0)
        assert fabric.estimate_transfer_time("a", "b", 1024) == pytest.approx(clean)

    def test_overlapping_windows_stack_their_latency(self):
        fabric = make_fabric("a", "b")
        clean = fabric.estimate_transfer_time("a", "b", 1024)
        fabric.inject_link_fault("a", "b", start_s=0.0, end_s=10.0, extra_latency_s=0.2)
        fabric.inject_link_fault("a", "b", start_s=5.0, end_s=15.0, extra_latency_s=0.3)
        fabric.engine.run(until=7.0)
        both = fabric.estimate_transfer_time("a", "b", 1024)
        fabric.engine.run(until=12.0)
        second_only = fabric.estimate_transfer_time("a", "b", 1024)
        assert both == pytest.approx(clean + 0.5)
        assert second_only == pytest.approx(clean + 0.3)

    def test_unknown_endpoint_raises(self):
        fabric = make_fabric("a", "b")
        with pytest.raises(NotFoundError):
            fabric.inject_link_fault("a", "typo", start_s=0.0, end_s=1.0)

    def test_inverted_window_raises(self):
        fabric = make_fabric("a", "b")
        with pytest.raises(ValueError, match="inverted"):
            fabric.inject_link_fault("a", "b", start_s=5.0, end_s=1.0)

    def test_drop_retransmission_is_deterministic(self):
        def measure():
            fabric = make_fabric("a", "b")
            fabric.inject_link_fault(
                "a", "b", start_s=0.0, end_s=100.0, drop_rate=0.5
            )
            return [fabric.estimate_transfer_time("a", "b", 4096) for _ in range(20)]

        first, second = measure(), measure()
        assert first == second
        # At drop_rate 0.5 some of the 20 transfers must have paid the
        # retransmission (duration strictly above the clean link's).
        clean = make_fabric("a", "b").estimate_transfer_time("a", "b", 4096)
        assert any(duration > clean * 1.5 for duration in first)
