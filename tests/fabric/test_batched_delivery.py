"""Batched commit delivery: buffering, window flushes, virtual-time parity."""

from repro.consensus.batching import BatchConfig
from repro.workloads.fleet import (
    FleetSpec,
    build_fleet,
    commit_log_lines,
    submit_fleet,
)


def tiny_spec(**overrides) -> FleetSpec:
    base = dict(
        devices=20, shards=2, rate_per_device_s=0.1, duration_s=30.0,
        seed=5, batch_config=BatchConfig(max_message_count=1),
    )
    base.update(overrides)
    return FleetSpec(**base)


def run_mode(batch_commit_delivery: bool):
    deployment = build_fleet(tiny_spec(), batch_commit_delivery=batch_commit_delivery)
    submit_fleet(deployment)
    deployment.drain()
    return deployment


class TestBatchedCommitDelivery:
    def test_virtual_time_identical_to_per_block_path(self):
        scan = run_mode(batch_commit_delivery=False)
        indexed = run_mode(batch_commit_delivery=True)
        for site in scan.sites:
            assert commit_log_lines(indexed, site) == commit_log_lines(scan, site)

    def test_commit_batch_published_per_flush_not_per_block(self):
        deployment = build_fleet(tiny_spec(), batch_commit_delivery=True)
        batches = []
        deployment.fabric.events.subscribe(
            "commit_batch", lambda _topic, entries: batches.append(entries)
        )
        submit_fleet(deployment)
        deployment.drain()  # flush_and_drain flushes once at the end
        blocks = sum(len(entries) for entries in batches)
        assert blocks > 1
        # One batch per shard buffer, not one publish per block.
        assert len(batches) <= deployment.spec.shards
        assert all(isinstance(entries, list) for entries in batches)

    def test_buffer_drains_on_flush(self):
        deployment = build_fleet(tiny_spec(), batch_commit_delivery=True)
        submit_fleet(deployment)
        deployment.engine.run(until=15.0)
        assert deployment.fabric.buffered_commit_events > 0
        flushed = deployment.fabric.flush_commit_events()
        assert flushed > 0
        assert deployment.fabric.buffered_commit_events == 0
        # Flushing an empty buffer is a no-op.
        assert deployment.fabric.flush_commit_events() == 0

    def test_chaincode_event_batches_grouped_by_name(self):
        deployment = build_fleet(tiny_spec(), batch_commit_delivery=True)
        received = []
        deployment.fabric.events.subscribe(
            "chaincode_event_batch:provenance_recorded",
            lambda _topic, payloads: received.extend(payloads),
        )
        submit_fleet(deployment)
        deployment.drain()
        assert received
        assert all(event["name"] == "provenance_recorded" for event in received)
        assert all("tx_id" in event and "block_number" in event for event in received)
