"""Tests for peers (endorse/validate/commit) and the Fabric network flow."""

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import EndorsementError
from repro.api.protocol import StoreRequest
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment
from repro.fabric.gossip import GossipDisseminator
from repro.fabric.proposal import Proposal
from repro.ledger.transaction import TxValidationCode
from repro.membership.policies import majority_of


def make_proposal(identity, function, args, tx_id="tx-1", chaincode="hyperprov"):
    unsigned = Proposal(
        tx_id=tx_id, channel="test-channel", chaincode=chaincode, function=function,
        args=args, creator=identity.certificate, signature="", timestamp=0.0,
    )
    return Proposal(
        tx_id=tx_id, channel="test-channel", chaincode=chaincode, function=function,
        args=args, creator=identity.certificate,
        signature=identity.sign(unsigned.signed_bytes()), timestamp=0.0,
        size_bytes=len(unsigned.signed_bytes()),
    )


# ------------------------------------------------------------------------ peer
def test_peer_endorses_valid_set_proposal(single_peer, organizations):
    client = organizations[0].enroll("client1", role="client")
    proposal = make_proposal(
        client, "set", ["k", checksum_of(b"x"), "ssh://storage/k"]
    )
    response, finished_at = single_peer.endorse(proposal, at_time=0.0)
    assert response.is_ok
    assert response.endorsement is not None
    assert response.endorsement.organization == "org1"
    assert finished_at > 0.0
    assert response.rw_set.writes[0].key == "k"


def test_peer_rejects_bad_client_signature(single_peer, organizations):
    client = organizations[0].enroll("client1", role="client")
    proposal = make_proposal(client, "set", ["k", checksum_of(b"x"), "loc"])
    forged = Proposal(
        tx_id=proposal.tx_id, channel=proposal.channel, chaincode=proposal.chaincode,
        function=proposal.function, args=["k", checksum_of(b"y"), "loc"],
        creator=proposal.creator, signature=proposal.signature, timestamp=0.0,
    )
    response, _ = single_peer.endorse(forged, at_time=0.0)
    assert not response.is_ok
    assert response.endorsement is None


def test_peer_rejects_uninstalled_chaincode(single_peer, organizations):
    client = organizations[0].enroll("client1", role="client")
    proposal = make_proposal(client, "set", ["k", checksum_of(b"x"), "loc"],
                             chaincode="unknown-cc")
    with pytest.raises(Exception):
        single_peer.endorse(proposal, at_time=0.0)


def test_peer_endorsement_charges_device_time(single_peer, organizations):
    client = organizations[0].enroll("client1", role="client")
    proposal = make_proposal(client, "set", ["k", checksum_of(b"x"), "loc"])
    single_peer.endorse(proposal, at_time=0.0)
    assert single_peer.device.busy_time(component="cpu") > 0.0


def test_peer_rejects_chaincode_app_error(single_peer, organizations):
    client = organizations[0].enroll("client1", role="client")
    proposal = make_proposal(client, "get", ["missing-key"])
    response, _ = single_peer.endorse(proposal, at_time=0.0)
    assert not response.is_ok


# ------------------------------------------------------------------ full flow
def test_full_invoke_flow_commits_on_all_peers(desktop_deployment):
    store = desktop_deployment.client.as_store()
    post = store.submit(
        StoreRequest(key="data/1", checksum=checksum_of(b"x"),
                     location="ssh://storage/data/1")
    )
    desktop_deployment.drain()
    assert post.done
    assert post.ok
    assert post.handle.latency_s > 0
    heights = desktop_deployment.fabric.ledger_heights()
    assert set(heights.values()) == {1}
    for peer in desktop_deployment.peers:
        assert peer.committed(post.handle.tx_id)
        assert peer.block_store.verify_chain()


def test_query_does_not_create_blocks(desktop_deployment):
    store = desktop_deployment.client.as_store()
    post = store.submit(StoreRequest(key="q/1", checksum=checksum_of(b"x"), location="loc"))
    desktop_deployment.drain()
    heights_before = desktop_deployment.fabric.ledger_heights()
    result = store.get("q/1")
    assert isinstance(result.record, ProvenanceRecord)
    assert result.latency_s > 0
    assert desktop_deployment.fabric.ledger_heights() == heights_before
    assert post.ok


def test_duplicate_key_updates_create_history(desktop_deployment):
    store = desktop_deployment.client.as_store()
    for version in range(3):
        store.submit(
            StoreRequest(key="versioned", checksum=checksum_of(f"v{version}".encode()),
                         location="loc")
        )
        desktop_deployment.drain()
    assert len(store.history("versioned")) == 3


def test_mvcc_conflict_between_concurrent_writers(desktop_deployment):
    """Two transactions writing the same key in the same block: the second
    one read the same version as the first, so it must be invalidated."""
    store = desktop_deployment.client.as_store()
    checksum = checksum_of(b"x")
    first = store.submit(StoreRequest(key="conflict", checksum=checksum, location="loc-a"))
    second = store.submit(StoreRequest(key="conflict", checksum=checksum, location="loc-b"))
    desktop_deployment.drain()
    codes = {first.handle.validation_code, second.handle.validation_code}
    assert TxValidationCode.VALID in codes
    assert TxValidationCode.MVCC_READ_CONFLICT in codes


def test_endorsement_failure_completes_handle_without_block(desktop_deployment):
    client = desktop_deployment.client
    # 'get' on a missing key fails at endorsement time; submit it as an invoke.
    handle = desktop_deployment.fabric.submit_transaction(
        "hyperprov-client", "hyperprov", "set", ["only-a-key"],
    )
    desktop_deployment.drain()
    assert handle.is_complete
    assert not handle.is_valid


def test_batch_size_one_gives_one_block_per_tx():
    deployment = build_desktop_deployment(
        batch_config=BatchConfig(max_message_count=1), seed=1
    )
    store = deployment.client.as_store()
    for i in range(3):
        store.submit(StoreRequest(key=f"k{i}", checksum=checksum_of(b"x"), location="loc"))
        deployment.drain()
    assert set(deployment.fabric.ledger_heights().values()) == {3}


def test_transaction_handle_timings_populated(desktop_deployment):
    store = desktop_deployment.client.as_store()
    post = store.submit(StoreRequest(key="t/1", checksum=checksum_of(b"x"), location="loc"))
    desktop_deployment.drain()
    handle = post.handle
    assert handle.endorsed_at > handle.submitted_at
    assert handle.ordered_at >= handle.endorsed_at
    assert handle.committed_at > handle.ordered_at
    assert "endorsement_s" in handle.timings


# --------------------------------------------------------------------- gossip
def test_gossip_elects_one_leader_per_org(desktop_deployment):
    gossip = GossipDisseminator(desktop_deployment.network)
    leaders = gossip.elect_leaders(desktop_deployment.peers)
    assert len(leaders) == 4  # one org per peer in this deployment
    arrivals = gossip.disseminate(
        "orderer", desktop_deployment.peers, block_size_bytes=4096, sent_at=1.0
    )
    assert set(arrivals) == {p.name for p in desktop_deployment.peers}
    assert all(t > 1.0 for t in arrivals.values())


def test_gossip_respects_partitions(desktop_deployment):
    gossip = GossipDisseminator(desktop_deployment.network)
    unreachable = desktop_deployment.peers[-1].name
    others = [p.name for p in desktop_deployment.peers[:-1]] + ["orderer", "storage"]
    desktop_deployment.network.partitions.partition([others, [unreachable]])
    arrivals = gossip.disseminate(
        "orderer", desktop_deployment.peers, block_size_bytes=4096, sent_at=0.0
    )
    assert unreachable not in arrivals
