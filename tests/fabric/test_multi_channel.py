"""End-to-end tests for the multi-channel (sharded) Fabric host."""

import pytest

from repro.api.protocol import StoreRequest
from repro.api.service import HyperProvService
from repro.common.errors import ValidationError
from repro.core.topology import build_desktop_deployment
from repro.middleware.config import PipelineConfig
from repro.middleware.sharding import ConsistentHashRing


@pytest.fixture
def sharded(request):
    deployment = build_desktop_deployment(seed=42, shards=2)
    return deployment


def session_for(deployment, shards, **kwargs):
    service = HyperProvService(deployment)
    return service.session(pipeline=PipelineConfig(shards=shards, **kwargs))


def test_writes_spread_over_both_shards(sharded):
    session = session_for(sharded, 2)
    for i in range(16):
        session.submit(f"spread/{i}", f"v{i}".encode())
    session.drain()
    per_shard = [sum(sharded.fabric.shard_ledger_heights(i).values()) for i in (0, 1)]
    assert all(height > 0 for height in per_shard)
    # Aggregate heights equal the sum of the shard chains.
    total = sum(sharded.fabric.ledger_heights().values())
    assert total == sum(per_shard) > 0


def test_reads_follow_their_keys_shard(sharded):
    session = session_for(sharded, 2)
    ring = ConsistentHashRing(2)
    keys = [f"follow/{i}" for i in range(8)]
    for key in keys:
        session.submit(key, b"x")
    session.drain()
    for key in keys:
        view = session.get(key)
        assert view.key == key
        # The owning shard's ledger holds the key; the other does not.
        owner = ring.route(key)
        owning_peer = sharded.fabric.shard(owner).peers[
            sorted(sharded.fabric.shard(owner).peers)[0]
        ]
        assert owning_peer.world_state.get(key) is not None


def test_range_query_fans_out_across_shards(sharded):
    session = session_for(sharded, 2)
    keys = [f"fan/{i}" for i in range(12)]
    for key in keys:
        session.submit(key, b"x")
    session.drain()
    ring = ConsistentHashRing(2)
    owners = {ring.route(key) for key in keys}
    assert owners == {0, 1}  # the range genuinely spans both shards
    rows = sharded.client.get_by_range("fan/", "fan/~").payload
    assert [row["key"] for row in rows] == sorted(keys)


def test_rich_query_fans_out_and_merges(sharded):
    session = session_for(sharded, 2)
    for i in range(10):
        session.submit(f"rich/{i}", b"x", metadata={"kind": "demo"})
    session.drain()
    rows = sharded.client.query_records({"metadata.kind": "demo"}).payload
    assert len(rows) == 10


def test_cross_shard_history_merges_after_resharding(sharded):
    """A key whose shard moves when the ring grows: history still finds
    the versions committed under the old layout, ordered by commit time."""
    deployment = build_desktop_deployment(seed=42, shards=4)
    service = HyperProvService(deployment)
    ring2, ring4 = ConsistentHashRing(2), ConsistentHashRing(4)
    key = next(
        f"mig/key-{i}" for i in range(100)
        if ring2.route(f"mig/key-{i}") != ring4.route(f"mig/key-{i}")
    )

    with service.session(pipeline=PipelineConfig(shards=2)) as before:
        before.submit(key, b"v1")
        before.drain()

    with service.session(pipeline=PipelineConfig(shards=4)) as after:
        after.submit(key, b"v2")
        after.drain()
        history = after.history(key)
        assert len(history) == 2
        # Oldest first across shards (per-shard block numbers both start
        # at 0, so ordering must come from commit timestamps).
        checks = [view.checksum for view in history.records]
        assert len(set(checks)) == 2
        latest = after.get(key)
        assert latest.checksum == checks[-1]


def test_cache_invalidation_works_per_shard(sharded):
    session = session_for(sharded, 2, cache=True)
    keys = [f"cache/{i}" for i in range(6)]
    for key in keys:
        session.submit(key, b"v1")
    session.drain()
    for key in keys:
        session.get(key)
        session.get(key)  # hit
    # Overwrite one key: only its entry is invalidated (via its shard's
    # commit stream), the rest still answer from cache.
    session.submit(keys[0], b"v2")
    session.drain()
    refreshed = session.get(keys[0])
    assert refreshed.checksum != ""
    # The refreshed read observed the new version, not the stale cache.
    from repro.common.hashing import checksum_of
    assert refreshed.checksum == checksum_of(b"v2")


def test_pipeline_shards_must_not_exceed_network_channels(sharded):
    with pytest.raises(ValidationError):
        session_for(sharded, 4)


def test_single_shard_deployment_unchanged(desktop_deployment):
    assert desktop_deployment.fabric.shard_count == 1
    assert desktop_deployment.fabric.channel.name == "hyperprov-channel"
    session = HyperProvService(desktop_deployment).session()
    session.submit("compat/1", b"x")
    session.drain()
    assert set(desktop_deployment.fabric.ledger_heights().values()) == {1}


def test_flush_and_drain_covers_every_shard(sharded):
    session = session_for(sharded, 2)
    for i in range(10):
        session.submit(f"drainy/{i}", f"v{i}".encode())
    session.drain()
    for shard in sharded.fabric.shards:
        assert shard.batcher.queued == 0
        assert shard.orderer.intake_backlog == 0
    assert sharded.fabric.in_flight() == 0


def test_default_pipeline_config_leaves_deployment_scheduler_alone():
    """Regression: opening a session with an unrelated PipelineConfig must
    not silently reset a fair-share deployment back to FIFO."""
    from repro.consensus.scheduler import FairShareScheduler

    deployment = build_desktop_deployment(
        seed=42, scheduler="fair-share", scheduler_weights={"gold": 2.0}
    )
    service = HyperProvService(deployment)
    with service.session(tenant="a", pipeline=PipelineConfig(cache=True)):
        pass
    scheduler = deployment.fabric.orderer.scheduler
    assert isinstance(scheduler, FairShareScheduler)
    # An explicit swap keeps the deployment's build-time weights.
    deployment.fabric.set_scheduler("fair-share")
    assert deployment.fabric.orderer.scheduler.weights == {"gold": 2.0}


def test_rejected_configure_pipeline_leaves_client_functional(desktop_deployment):
    """Regression: a config rejected for asking too many shards must not
    close the live pipeline or report the rejected config."""
    from repro.common.hashing import checksum_of

    client = desktop_deployment.client
    client.configure_pipeline(PipelineConfig(cache=True))
    with pytest.raises(ValidationError):
        client.configure_pipeline(PipelineConfig(cache=True, shards=2))
    assert client.pipeline_config.shards == 1
    cache = client.read_cache
    assert cache is not None and cache._subscriptions

    store = client.as_store()
    store.submit(StoreRequest(key="alive", data=b"v1"))
    desktop_deployment.drain()
    store.get("alive")                        # populate the cache
    store.submit(StoreRequest(key="alive", data=b"v2"))
    desktop_deployment.drain()                # commit must still invalidate
    assert store.get("alive").checksum == checksum_of(b"v2")
