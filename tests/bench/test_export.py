"""Tests for the CSV/JSON experiment exporter."""

import csv
import json

import pytest

from repro.bench.export import (
    energy_rows,
    export_all,
    figure_series_rows,
    ops_rows,
    stage_rows,
    write_csv,
)
from repro.bench.fig1_throughput import run_fig1
from repro.bench.fig3_energy import run_fig3
from repro.bench.ops_table import run_ops_table


def test_figure_series_rows_carry_setup_and_metrics():
    series = run_fig1(sizes=(1024,), requests_per_size=10)
    rows = figure_series_rows(series)
    assert len(rows) == 1
    assert rows[0]["setup"] == "desktop"
    assert rows[0]["throughput_tps"] > 0
    assert rows[0]["size_bytes"] == 1024.0


def test_energy_rows_cover_every_interval():
    figure = run_fig3(load_levels={"idle (no HLF)": 0.0, "peak load": 5.0}, interval_s=60.0)
    rows = energy_rows(figure)
    assert [row["interval"] for row in rows] == ["idle (no HLF)", "peak load"]
    assert all(row["mean_watts"] > 0 for row in rows)


def test_ops_rows_flatten_both_setups():
    results = run_ops_table(repeats=2)
    rows = ops_rows(results)
    setups = {row["setup"] for row in rows}
    assert setups == {"desktop", "rpi"}
    assert all(row["latency_s"] > 0 for row in rows)

    breakdown = stage_rows(results)
    assert {row["setup"] for row in breakdown} == {"desktop", "rpi"}
    assert {row["stage"] for row in breakdown} == {"endorse", "order", "commit"}
    assert all(row["mean_latency_s"] > 0 for row in breakdown)


def test_write_csv_roundtrip(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    path = write_csv(tmp_path / "out.csv", rows)
    with path.open() as handle:
        parsed = list(csv.DictReader(handle))
    assert parsed == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]


def test_write_csv_rejects_empty(tmp_path):
    with pytest.raises(ValueError):
        write_csv(tmp_path / "empty.csv", [])


def test_export_all_writes_every_file(tmp_path):
    written = export_all(tmp_path, requests=10, rpi_requests=10, energy_interval_s=60.0)
    assert set(written) == {"fig1", "fig2", "fig3", "ops", "ops_stages", "manifest"}
    for path in written.values():
        assert (tmp_path / path.split("/")[-1]).exists() or path.startswith(str(tmp_path))
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["seed"] == 42
    assert set(manifest["files"]) == {"fig1", "fig2", "fig3", "ops", "ops_stages"}
    with (tmp_path / "fig1_desktop.csv").open() as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 6  # one row per default data size
