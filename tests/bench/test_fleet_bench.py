"""``bench fleet``: speedup report, anchor gate, BENCH_PERF.json merging."""

import json

import pytest

from repro.bench.cli import build_parser
from repro.bench.fleet import (
    check_fleet_anchor,
    fleet_spec,
    profile_name,
    run_fleet,
    shard_stats_table,
    write_fleet_entry,
)
from repro.bench.perf import PerfMeasurement, PerfRegressionError, PerfReport, write_report


@pytest.fixture(scope="module")
def tiny_report():
    return run_fleet(devices=24, shards=2, workers=2, duration_s=30.0)


class TestRunFleet:
    def test_report_shape_and_determinism(self, tiny_report):
        assert tiny_report.profile == "24x2"
        assert tiny_report.parallel.anchor == tiny_report.sequential.anchor
        tiny_report.verify_determinism()
        data = tiny_report.to_dict()
        assert data["devices"] == 24
        assert data["workers"] == 2
        assert data["committed"] == tiny_report.sequential.committed
        assert len(data["anchor"]) == 64
        assert len(data["shard_stats"]) == 2
        assert data["speedup"] > 0

    def test_mismatched_anchor_fails_loudly(self, tiny_report):
        import dataclasses

        drifted = dataclasses.replace(
            tiny_report.parallel,
            lines_by_site={
                site: list(lines) + ["s0;devX;tx-bogus;0.0;VALID;1.0;9"]
                for site, lines in tiny_report.parallel.lines_by_site.items()
            },
        )
        broken = type(tiny_report)(
            spec=tiny_report.spec,
            parallel=drifted,
            sequential=tiny_report.sequential,
        )
        with pytest.raises(PerfRegressionError):
            broken.verify_determinism()

    def test_shard_stats_table_renders(self, tiny_report):
        rendered = shard_stats_table(
            tiny_report.to_dict()["shard_stats"], "stats"
        ).render()
        assert "barrier stall" in rendered
        assert "utilization" in rendered


class TestPersistence:
    def test_write_fleet_entry_merges_without_clobbering(self, tiny_report, tmp_path):
        path = tmp_path / "BENCH_PERF.json"
        path.write_text(json.dumps({"measurements": [1, 2], "fleet": {"9x9": {"anchor": "x"}}}))
        document = write_fleet_entry(tiny_report, path)
        assert document["measurements"] == [1, 2]
        assert document["fleet"]["9x9"] == {"anchor": "x"}
        assert document["fleet"]["24x2"]["anchor"] == tiny_report.anchor
        assert json.loads(path.read_text()) == document

    def test_perf_write_report_preserves_fleet_section(self, tiny_report, tmp_path):
        path = tmp_path / "BENCH_PERF.json"
        write_fleet_entry(tiny_report, path)
        report = PerfReport(
            measurements=[
                PerfMeasurement("commit-heavy", 4, 4, 0.1, 40.0, 0.5)
            ]
        )
        document = write_report(report, path)
        assert document["fleet"]["24x2"]["anchor"] == tiny_report.anchor
        assert json.loads(path.read_text())["fleet"]["24x2"]["devices"] == 24

    def test_check_fleet_anchor_gate(self, tiny_report):
        good = {"fleet": {tiny_report.profile: {"anchor": tiny_report.anchor}}}
        assert check_fleet_anchor(tiny_report, good) == []
        bad = {"fleet": {tiny_report.profile: {"anchor": "0" * 64}}}
        failures = check_fleet_anchor(tiny_report, bad)
        assert failures and "anchor" in failures[0]
        # Absent profile or section: skipped, mirroring the perf gate.
        assert check_fleet_anchor(tiny_report, {}) == []
        assert check_fleet_anchor(tiny_report, {"fleet": {}}) == []


class TestCli:
    def test_fleet_flags_and_defaults(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fleet", "--fleet-devices", "500", "--fleet-shards", "2", "--workers", "2"]
        )
        assert args.fleet_devices == 500
        assert args.fleet_shards == 2
        assert args.workers == 2
        assert args.fleet_duration == 200.0
        defaults = parser.parse_args(["fleet"])
        assert defaults.fleet_devices == 10_000
        assert defaults.workers == 4

    def test_canonical_spec_profile(self):
        spec = fleet_spec(devices=500, shards=2)
        assert profile_name(spec) == "500x2"
        assert spec.batch_config.max_message_count == 1
        assert spec.churn_fraction > 0
        assert spec.partition_windows
