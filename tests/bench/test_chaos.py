"""Chaos bench: scenario smoke, persistence merge and the anchor gate."""

import json

import pytest

from repro.bench.chaos import (
    SCENARIOS,
    ChaosBenchReport,
    ChaosInvariantError,
    ChaosScenarioResult,
    check_chaos_anchors,
    run_chaos,
    write_chaos_entry,
)


@pytest.fixture(scope="module")
def report():
    # One shared smoke run; scenarios assert their invariants internally.
    return run_chaos(smoke=True)


class TestScenarios:
    def test_all_registered_scenarios_run_and_anchor(self, report):
        assert [r.name for r in report.scenarios] == list(SCENARIOS)
        assert len(report.scenarios) == 5
        for result in report.scenarios:
            assert len(result.anchor) == 64
            assert result.invariants

    def test_link_degrade_counts_drops_and_duplicates(self, report):
        invariants = report.scenario("link_degrade").invariants
        assert invariants["dropped"] >= 2
        assert invariants["duplicated"] >= 2
        assert invariants["degraded_window_s"] == pytest.approx(2.0)

    def test_scenarios_are_deterministic_across_calls(self, report):
        again = run_chaos(smoke=True)
        assert [r.anchor for r in again.scenarios] == [
            r.anchor for r in report.scenarios
        ]

    def test_seed_changes_the_anchors(self, report):
        shifted = SCENARIOS["orderer_stall"](report.seed + 1)
        assert shifted.anchor != report.scenario("orderer_stall").anchor


class TestPersistence:
    def test_write_merges_without_touching_other_sections(self, report, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"fleet": {"keep": 1}}))
        document = write_chaos_entry(report, path)
        assert document["fleet"] == {"keep": 1}
        on_disk = json.loads(path.read_text())
        assert set(on_disk["chaos"]["scenarios"]) == set(SCENARIOS)
        assert on_disk["chaos"]["seed"] == report.seed

    def test_write_tolerates_missing_and_corrupt_files(self, report, tmp_path):
        fresh = tmp_path / "fresh.json"
        write_chaos_entry(report, fresh)
        assert "chaos" in json.loads(fresh.read_text())
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        write_chaos_entry(report, corrupt)
        assert "chaos" in json.loads(corrupt.read_text())


class TestAnchorGate:
    def baseline_for(self, report):
        return {"chaos": {"scenarios": {r.name: r.to_dict() for r in report.scenarios}}}

    def test_matching_anchors_pass(self, report):
        assert check_chaos_anchors(report, self.baseline_for(report)) == []

    def test_changed_anchor_fails_that_scenario(self, report):
        baseline = self.baseline_for(report)
        baseline["chaos"]["scenarios"]["partition_heal"]["anchor"] = "0" * 64
        failures = check_chaos_anchors(report, baseline)
        assert len(failures) == 1
        assert "partition_heal" in failures[0]

    def test_absent_scenario_and_absent_section_are_skipped(self, report):
        assert check_chaos_anchors(report, {}) == []
        partial = {"chaos": {"scenarios": {}}}
        assert check_chaos_anchors(report, partial) == []

    def test_double_pass_mismatch_fails_the_full_profile(self, monkeypatch):
        calls = {"count": 0}

        def flaky(seed):
            calls["count"] += 1
            return ChaosScenarioResult(
                "flaky", f"{calls['count']:064d}", 0.0, {"writes": 0}
            )

        monkeypatch.setattr("repro.bench.chaos.SCENARIOS", {"flaky": flaky})
        with pytest.raises(ChaosInvariantError, match="non-deterministic"):
            run_chaos(smoke=False)

    def test_report_table_renders(self, report):
        rendered = ChaosBenchReport(
            seed=report.seed, repeats=report.repeats, scenarios=report.scenarios
        ).to_table().render()
        for name in SCENARIOS:
            assert name in rendered
