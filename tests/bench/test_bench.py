"""Tests for the benchmark harness: runner, reporting, CLI and figure shapes.

Figure-level shape assertions run with reduced request counts so the whole
suite stays fast; the full-size sweeps live in ``benchmarks/``.
"""

import pytest

from repro.bench.ablation_batch import run_batch_ablation
from repro.bench.ablation_concurrency import run_concurrency_ablation
from repro.bench.baseline_compare import run_baseline_comparison
from repro.bench.cli import build_parser, main
from repro.common.metrics import percentile
from repro.bench.fig1_throughput import run_fig1
from repro.bench.fig2_rpi import run_fig2
from repro.bench.fig3_energy import run_fig3
from repro.bench.ops_table import run_ops_table, to_table
from repro.bench.reporting import ResultTable, format_bytes, format_seconds, format_si
from repro.bench.runner import RunConfig, StoreDataRunner


# ------------------------------------------------------------------- reporting
def test_result_table_render_and_csv():
    table = ResultTable("Demo", ["a", "b"])
    table.add_row(1, 2.5)
    table.add_row("x", "y")
    table.add_note("a note")
    rendered = table.render()
    assert "Demo" in rendered and "a note" in rendered
    assert table.to_csv().splitlines()[0] == "a,b"
    assert table.to_dicts()[0] == {"a": 1, "b": 2.5}


def test_result_table_rejects_wrong_arity():
    table = ResultTable("t", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_formatting_helpers():
    assert format_si(1500) == "1.50 k"
    assert format_seconds(0.002).endswith("ms")
    assert format_seconds(2.0).endswith("s")
    assert format_seconds(float("nan")) == "n/a"
    assert format_bytes(2 * 1024 * 1024) == "2.0 MiB"


# ---------------------------------------------------------------------- runner
def test_runner_commits_every_request(desktop_deployment):
    runner = StoreDataRunner(desktop_deployment)
    result = runner.run(RunConfig(data_size_bytes=1024, request_count=12, concurrency=12))
    assert result.committed == 12
    assert result.failed == 0
    assert result.throughput_tps > 0
    assert len(result.response_times_s) == 12
    assert result.mean_response_s > 0
    assert result.p95_response_s >= result.mean_response_s * 0.5
    assert result.summary()["committed"] == 12.0


def test_runner_interval_estimate_grows_with_size(desktop_deployment):
    runner = StoreDataRunner(desktop_deployment)
    assert runner.estimate_item_interval(4 * 1024 * 1024) > runner.estimate_item_interval(1024)


def test_runner_percentiles_use_shared_helper(desktop_deployment):
    runner = StoreDataRunner(desktop_deployment)
    result = runner.run(RunConfig(data_size_bytes=1024, request_count=10, concurrency=10))
    assert result.p50_response_s == percentile(result.response_times_s, 50)
    assert result.p95_response_s == percentile(result.response_times_s, 95)
    assert result.p99_response_s == percentile(result.response_times_s, 99)
    summary = result.summary()
    assert summary["p50_response_s"] <= summary["p95_response_s"] <= summary["p99_response_s"]


def test_runner_clamps_concurrency_to_admission_cap(desktop_deployment):
    runner = StoreDataRunner(desktop_deployment)
    result = runner.run(
        RunConfig(
            data_size_bytes=512, request_count=12, concurrency=8,
            tenant="capped", max_in_flight=4,
        )
    )
    assert result.committed == 12
    assert result.failed == 0


def test_runner_supports_tenant_namespaces(desktop_deployment):
    runner = StoreDataRunner(desktop_deployment)
    result = runner.run(
        RunConfig(data_size_bytes=512, request_count=6, concurrency=6, tenant="bench-t")
    )
    assert result.committed == 6
    committed_keys = desktop_deployment.peers[0].history.keys()
    assert any(key.startswith("tenant/bench-t/") for key in committed_keys)


# --------------------------------------------------------------------- figures
def test_fig1_shape_throughput_falls_and_latency_rises():
    series = run_fig1(sizes=(1024, 1024 * 1024, 4 * 1024 * 1024), requests_per_size=15)
    throughputs = series.throughputs()
    responses = series.response_times()
    assert throughputs[0] > throughputs[-1]
    assert responses[-1] > responses[0]
    table = series.to_table("fig1")
    assert len(table.rows) == 3


def test_fig2_rpi_is_slower_than_desktop():
    sizes = (1024, 1024 * 1024)
    desktop = run_fig1(sizes=sizes, requests_per_size=12)
    rpi = run_fig2(sizes=sizes, requests_per_size=12)
    for d, r in zip(desktop.results, rpi.results):
        assert d.throughput_tps > r.throughput_tps
        assert r.mean_response_s > d.mean_response_s


def test_fig3_energy_matches_paper_shape():
    figure = run_fig3(
        load_levels={
            "idle (no HLF)": 0.0,
            "idle (HLF running)": 0.0,
            "peak load": 5.0,
        },
        interval_s=120.0,
    )
    idle_no_hlf = figure.report_for("idle (no HLF)")
    idle_hlf = figure.report_for("idle (HLF running)")
    peak = figure.report_for("peak load")
    # HLF idling barely adds power (paper: 2.71 W vs an idle RPi).
    assert idle_hlf.mean_watts - idle_no_hlf.mean_watts < 0.2
    assert idle_hlf.mean_watts == pytest.approx(2.71, abs=0.1)
    # Peak load stays a modest fraction above idle (paper: ~10.7 %, max 3.64 W).
    assert peak.mean_watts > idle_hlf.mean_watts
    assert peak.mean_watts < idle_hlf.mean_watts * 1.35
    assert peak.max_watts < 3.64 + 0.3
    table = figure.to_table()
    assert len(table.rows) == 3


def test_ops_table_covers_both_setups():
    results = run_ops_table(repeats=2)
    assert [r.setup for r in results] == ["desktop", "rpi"]
    desktop, rpi = results
    for operator in ("post", "get", "store_data", "get_data"):
        assert desktop.latencies_s[operator] > 0
        assert rpi.latencies_s[operator] > desktop.latencies_s[operator]
    rendered = to_table(results).render()
    assert "store_data" in rendered


def test_baseline_comparison_shape():
    report = run_baseline_comparison(requests=8, pow_difficulty_bits=22)
    hyperprov = report.entry("hyperprov")
    pow_chain = report.entry("provchain-pow")
    central = report.entry("central-db")
    # Permissioned blockchain beats PoW on throughput and power.
    assert hyperprov.throughput_tps > pow_chain.throughput_tps
    assert hyperprov.mean_power_w < pow_chain.mean_power_w
    # The centralized DB is fastest but not tamper evident.
    assert central.throughput_tps > hyperprov.throughput_tps
    assert not central.tamper_evident
    assert hyperprov.tamper_evident and pow_chain.tamper_evident
    assert len(report.to_table().rows) == 3


def test_batch_ablation_larger_batches_do_not_hurt_throughput():
    ablation = run_batch_ablation(batch_sizes=(1, 20), requests=20)
    assert len(ablation.results) == 2
    small, large = ablation.results
    assert large.throughput_tps >= small.throughput_tps * 0.8
    assert len(ablation.to_table().rows) == 2


def test_concurrency_ablation_deeper_pipelines_raise_throughput():
    ablation = run_concurrency_ablation(depths=(1, 16), requests=18)
    shallow, deep = ablation.results
    assert deep.throughput_tps > shallow.throughput_tps
    assert ablation.speedup > 1.0
    assert len(ablation.to_table().rows) == 2


# ------------------------------------------------------------------------- cli
def test_cli_parser_accepts_known_experiments():
    parser = build_parser()
    args = parser.parse_args(["fig1", "--requests", "5"])
    assert args.experiments == ["fig1"]
    assert args.requests == 5
    assert args.concurrency is None


def test_cli_exposes_concurrency_and_requests():
    parser = build_parser()
    args = parser.parse_args(["ablation-concurrency", "--requests", "8", "--concurrency", "4"])
    assert args.experiments == ["ablation-concurrency"]
    assert args.requests == 8
    assert args.concurrency == 4
    with pytest.raises(SystemExit):
        parser.parse_args(["fig1", "--concurrency", "0"])


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figx"])


def test_cli_main_runs_ops_experiment(capsys):
    exit_code = main(["ops", "--requests", "20"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "operator" in captured.out


# ----------------------------------------------------------- sharding ablation
def test_sharding_ablation_scales_write_throughput():
    from repro.bench.ablation_sharding import run_sharding_ablation

    ablation = run_sharding_ablation(shard_counts=(1, 2), requests=60)
    assert [r.committed for r in ablation.results] == [60, 60]
    assert ablation.speedup > 1.2  # two ordering machines beat one
    rendered = ablation.to_table().render()
    assert "shards" in rendered


def test_cli_exposes_shards_and_scheduler_flags():
    parser = build_parser()
    args = parser.parse_args(
        ["ablation-sharding", "--shards", "2", "--scheduler", "fair-share"]
    )
    assert args.shards == 2
    assert args.scheduler == "fair-share"
    with pytest.raises(SystemExit):
        parser.parse_args(["ablation-sharding", "--scheduler", "lifo"])


def test_cli_main_runs_sharding_experiment(capsys):
    exit_code = main(["ablation-sharding", "--shards", "2", "--requests", "4"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "tenant isolation" in captured.out
    assert "throughput scaling" in captured.out


# ------------------------------------------------------------------ bench perf
def test_perf_harness_measures_all_workloads(tmp_path):
    from repro.bench.perf import run_perf, write_report

    report = run_perf(commit_requests=8, keys=120, queries=4)
    workloads = {m.workload for m in report.measurements}
    assert workloads == {"commit-heavy", "range-query", "rich-query", "read-mix"}
    for measurement in report.measurements:
        assert measurement.wall_s > 0
        assert measurement.wall_ops_per_s > 0
        assert measurement.operations > 0
    # Commit-heavy actually commits every request at the full scale.
    full = report.find("commit-heavy", 8)
    assert full is not None and full.operations == 8

    output = tmp_path / "BENCH_PERF.json"
    document = write_report(report, output)
    assert output.exists()
    assert len(document["measurements"]) == len(report.measurements)


def test_perf_report_carries_baseline_forward(tmp_path):
    import json

    from repro.bench.perf import (
        PerfMeasurement, PerfReport, write_report,
    )

    output = tmp_path / "BENCH_PERF.json"
    baseline = {
        "measurements": [
            {"workload": "commit-heavy", "scale": 8, "operations": 8,
             "wall_s": 1.0, "wall_ops_per_s": 8.0, "virtual_mean_s": 0.1},
        ]
    }
    output.write_text(json.dumps({"baseline_pre_pr": baseline}))
    report = PerfReport([
        PerfMeasurement(
            workload="commit-heavy", scale=8, operations=8,
            wall_s=0.25, wall_ops_per_s=32.0, virtual_mean_s=0.1,
        )
    ])
    document = write_report(report, output)
    assert document["baseline_pre_pr"] == baseline
    assert document["speedup_vs_pre_pr"] == {"commit-heavy@8": 4.0}
    # The file on disk round-trips the same content.
    assert json.loads(output.read_text())["speedup_vs_pre_pr"] == {
        "commit-heavy@8": 4.0
    }


def test_perf_regression_gate(tmp_path):
    import json

    from repro.bench.perf import PerfMeasurement, PerfReport, check_regression

    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps({
        "measurements": [
            {"workload": "commit-heavy", "scale": 8, "operations": 8,
             "wall_s": 1.0, "wall_ops_per_s": 900.0, "virtual_mean_s": 0.1},
            {"workload": "rich-query", "scale": 120, "operations": 4,
             "wall_s": 1.0, "wall_ops_per_s": 90.0, "virtual_mean_s": 0.1},
        ]
    }))

    def report_with(tput):
        return PerfReport([
            PerfMeasurement(
                workload="commit-heavy", scale=8, operations=8,
                wall_s=1.0, wall_ops_per_s=tput, virtual_mean_s=0.1,
            )
        ])

    # Within tolerance (3x): no failures; unmatched baseline rows skipped.
    assert check_regression(report_with(400.0), baseline_path) == []
    failures = check_regression(report_with(200.0), baseline_path)
    assert len(failures) == 1 and "commit-heavy@8" in failures[0]
    # A custom tolerance moves the floor.
    assert check_regression(report_with(200.0), baseline_path, tolerance=5.0) == []


def test_cli_perf_runs_and_honours_baseline_gate(tmp_path, capsys):
    import json

    output = tmp_path / "perf.json"
    exit_code = main([
        "perf", "--perf-requests", "6", "--perf-keys", "60",
        "--perf-queries", "3", "--perf-output", str(output),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "wall ops/s" in captured.out
    assert output.exists()

    # A baseline demanding impossible throughput fails the gate (exit 1).
    impossible = {
        "measurements": [
            {"workload": "commit-heavy", "scale": 6, "operations": 6,
             "wall_s": 1.0, "wall_ops_per_s": 1e12, "virtual_mean_s": 0.1},
        ]
    }
    baseline_path = tmp_path / "impossible.json"
    baseline_path.write_text(json.dumps(impossible))
    exit_code = main([
        "perf", "--perf-requests", "6", "--perf-keys", "60",
        "--perf-queries", "3", "--perf-output", str(output),
        "--perf-baseline", str(baseline_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "regression" in captured.out


def test_cli_perf_gate_not_vacuous_when_output_is_baseline(tmp_path, capsys):
    """Regression: with --perf-output == --perf-baseline the gate must
    compare against the baseline as committed, not the file it just wrote."""
    import json

    shared = tmp_path / "BENCH_PERF.json"
    shared.write_text(json.dumps({
        "measurements": [
            {"workload": "commit-heavy", "scale": 6, "operations": 6,
             "wall_s": 1.0, "wall_ops_per_s": 1e12, "virtual_mean_s": 0.1},
        ]
    }))
    exit_code = main([
        "perf", "--perf-requests", "6", "--perf-keys", "60",
        "--perf-queries", "3", "--perf-output", str(shared),
        "--perf-baseline", str(shared),
    ])
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "regression" in captured.out
