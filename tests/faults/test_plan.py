"""FaultPlan validation and introspection."""

import pytest

from repro.common.errors import ConfigurationError
from repro.faults import (
    ByzantineFault,
    ChurnFault,
    FaultPlan,
    LinkDegradeFault,
    OrdererStallFault,
    PartitionFault,
    PeerCrashFault,
)


class TestWindowValidation:
    def test_negative_start_raises(self):
        with pytest.raises(ConfigurationError, match="start_s"):
            FaultPlan(seed=1, faults=(PartitionFault(-1.0, 2.0, (("a",),)),)).validate()

    def test_inverted_window_raises(self):
        with pytest.raises(ConfigurationError, match="end_s"):
            FaultPlan(seed=1, faults=(ChurnFault(5.0, 1.0, "dev"),)).validate()

    def test_zero_duration_window_is_legal(self):
        FaultPlan(seed=1, faults=(PartitionFault(2.0, 2.0, (("a",),)),)).validate()

    def test_partition_needs_a_named_node(self):
        with pytest.raises(ConfigurationError, match="named node"):
            FaultPlan(seed=1, faults=(PartitionFault(0.0, 1.0, ()),)).validate()
        with pytest.raises(ConfigurationError, match="named node"):
            FaultPlan(seed=1, faults=(PartitionFault(0.0, 1.0, ((),)),)).validate()

    def test_empty_names_raise(self):
        with pytest.raises(ConfigurationError):
            ChurnFault(0.0, 1.0, "").validate()
        with pytest.raises(ConfigurationError):
            PeerCrashFault(0.0, 1.0, "").validate()
        with pytest.raises(ConfigurationError):
            LinkDegradeFault(0.0, 1.0, "a", "").validate()


class TestFieldValidation:
    def test_link_rates_must_be_fractions(self):
        for bad in ({"drop_rate": 1.5}, {"duplicate_rate": -0.1}):
            with pytest.raises(ConfigurationError, match="must be in"):
                LinkDegradeFault(0.0, 1.0, "a", "b", **bad).validate()

    def test_link_extra_latency_must_be_non_negative(self):
        with pytest.raises(ConfigurationError, match="extra_latency_s"):
            LinkDegradeFault(0.0, 1.0, "a", "b", extra_latency_s=-0.1).validate()

    def test_byzantine_bounds(self):
        with pytest.raises(ConfigurationError, match="block_number"):
            ByzantineFault(1.0, "p", block_number=-2).validate()
        with pytest.raises(ConfigurationError, match="tx_position"):
            ByzantineFault(1.0, "p", tx_position=-1).validate()
        ByzantineFault(1.0, "p").validate()

    def test_stall_shard_must_be_non_negative(self):
        with pytest.raises(ConfigurationError, match="shard"):
            OrdererStallFault(0.0, 1.0, shard=-1).validate()


class TestPlanIntrospection:
    def test_groups_normalised_for_structural_equality(self):
        first = PartitionFault(0.0, 1.0, [["a", "b"], ["c"]])
        second = PartitionFault(0.0, 1.0, (("a", "b"), ("c",)))
        assert first == second

    def test_of_type_filters(self):
        plan = FaultPlan(
            seed=1,
            faults=(
                PartitionFault(0.0, 1.0, (("a",),)),
                ChurnFault(2.0, 3.0, "dev"),
                ByzantineFault(4.0, "p"),
            ),
        )
        assert len(plan.of_type(PartitionFault)) == 1
        assert len(plan.of_type(PartitionFault, ChurnFault)) == 2
        assert plan.of_type(OrdererStallFault) == ()

    def test_horizon_covers_the_last_edge(self):
        plan = FaultPlan(
            seed=1,
            faults=(
                PartitionFault(0.0, 7.0, (("a",),)),
                ByzantineFault(9.5, "p"),
            ),
        )
        assert plan.horizon_s == 9.5
        assert FaultPlan(seed=1).horizon_s == 0.0
