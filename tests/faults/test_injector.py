"""FaultInjector behaviour against a live deployment."""

import pytest

from repro.api.protocol import StoreRequest
from repro.common.errors import NotFoundError, SimulationError
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.core.topology import DeploymentSpec, build_deployment
from repro.devices.profiles import DESKTOP_PROFILES, XEON_E5_1603
from repro.faults import (
    FAULT_INJECTED_TOPIC,
    ByzantineFault,
    ChurnFault,
    FaultInjector,
    FaultPlan,
    OrdererStallFault,
    PartitionFault,
    PeerCrashFault,
)

CHECKSUM = checksum_of(b"faults")


def make_deployment(seed=11):
    return build_deployment(
        DeploymentSpec(
            name="faults-test",
            peer_profiles=DESKTOP_PROFILES,
            orderer_profile=XEON_E5_1603,
            storage_profile=XEON_E5_1603,
            client_profile=DESKTOP_PROFILES[2],
            client_colocated_with=None,
            batch_config=BatchConfig(max_message_count=1),
            seed=seed,
        )
    )


def submit_at(deployment, at, key):
    store = deployment.client.as_store()

    def fire():
        outcome = store.submit(
            StoreRequest(key=key, checksum=CHECKSUM, location="x://", size_bytes=64)
        )
        handles[key] = outcome.handle

    handles = submit_at.handles.setdefault(id(deployment), {})
    deployment.engine.schedule_at(at, fire)
    return handles


submit_at.handles = {}


class TestInstallLifecycle:
    def test_double_install_raises(self):
        deployment = make_deployment()
        injector = FaultInjector(FaultPlan(seed=1), deployment.fabric)
        injector.install()
        with pytest.raises(SimulationError, match="already installed"):
            injector.install()

    def test_uninstall_cancels_pending_injections(self):
        deployment = make_deployment()
        plan = FaultPlan(seed=1, faults=(PartitionFault(1.0, 5.0, (("client",),)),))
        injector = FaultInjector(plan, deployment.fabric).install()
        injector.uninstall()
        deployment.engine.run(until=10.0)
        assert not deployment.fabric.network.partitions.is_partitioned
        assert injector.log == []

    def test_injections_are_published_on_the_aggregate_bus(self):
        deployment = make_deployment()
        seen = []
        deployment.fabric.events.subscribe(
            FAULT_INJECTED_TOPIC, lambda t, p: seen.append(p["kind"])
        )
        plan = FaultPlan(seed=1, faults=(ChurnFault(1.0, 2.0, "client"),))
        FaultInjector(plan, deployment.fabric).install()
        deployment.engine.run(until=3.0)
        assert seen == ["partition", "heal"]


class TestPartitionWindows:
    def test_zero_duration_window_is_a_no_op(self):
        deployment = make_deployment()
        plan = FaultPlan(seed=1, faults=(PartitionFault(1.0, 1.0, (("client",),)),))
        injector = FaultInjector(plan, deployment.fabric).install()
        handles = submit_at(deployment, 1.0, "zd")
        deployment.drain()
        assert not deployment.fabric.network.partitions.is_partitioned
        assert handles["zd"].is_valid
        assert injector.log == []

    def test_overlapping_windows_intersect(self):
        deployment = make_deployment()
        partitions = deployment.fabric.network.partitions
        plan = FaultPlan(
            seed=1,
            faults=(
                PartitionFault(1.0, 3.0, (("client",),)),
                PartitionFault(2.0, 4.0, (("peer0.org1",),)),
            ),
        )
        FaultInjector(plan, deployment.fabric).install()
        observed = {}

        def probe(tag):
            observed[tag] = (
                partitions.can_communicate("client", "peer1.org2"),
                partitions.can_communicate("peer0.org1", "peer1.org2"),
                partitions.can_communicate("client", "peer0.org1"),
            )

        for tag, at in (("first", 1.5), ("both", 2.5), ("second", 3.5), ("healed", 4.5)):
            deployment.engine.schedule_at(at, lambda tag=tag: probe(tag))
        deployment.engine.run(until=5.0)
        assert observed["first"] == (False, True, False)
        assert observed["both"] == (False, False, False)
        assert observed["second"] == (True, False, False)
        assert observed["healed"] == (True, True, True)
        assert not partitions.is_partitioned

    def test_unknown_site_name_raises_at_the_boundary(self):
        deployment = make_deployment()
        plan = FaultPlan(seed=1, faults=(PartitionFault(1.0, 2.0, (("typo-site",),)),))
        FaultInjector(plan, deployment.fabric).install()
        with pytest.raises(NotFoundError, match="typo-site"):
            deployment.engine.run(until=3.0)


class TestPointFaults:
    def test_crashed_peer_recovers_missed_blocks_on_restart(self):
        deployment = make_deployment()
        plan = FaultPlan(seed=1, faults=(PeerCrashFault(1.0, 3.0, "peer0.org1"),))
        injector = FaultInjector(plan, deployment.fabric).install()
        handles = submit_at(deployment, 2.0, "during-crash")
        deployment.drain()
        handle = handles["during-crash"]
        assert handle.is_valid
        # The crashed peer missed the delivery but replayed it on restart.
        assert deployment.fabric.peer("peer0.org1").committed(handle.tx_id)
        assert [entry["kind"] for entry in injector.log] == [
            "peer_crash",
            "peer_restart",
        ]

    def test_stalled_orderer_defers_commits_until_resume(self):
        deployment = make_deployment()
        plan = FaultPlan(seed=1, faults=(OrdererStallFault(1.0, 4.0),))
        FaultInjector(plan, deployment.fabric).install()
        handles = submit_at(deployment, 2.0, "stalled")
        deployment.drain()
        handle = handles["stalled"]
        assert handle.is_valid
        assert handle.committed_at >= 4.0
        assert deployment.fabric.shard(0).orderer.intake_backlog == 0

    def test_byzantine_on_empty_ledger_is_recorded_as_skipped(self):
        deployment = make_deployment()
        plan = FaultPlan(seed=1, faults=(ByzantineFault(1.0, "peer0.org1"),))
        injector = FaultInjector(plan, deployment.fabric).install()
        deployment.engine.run(until=2.0)
        assert [entry["kind"] for entry in injector.log] == ["byzantine_skipped"]

    def test_byzantine_tamper_breaks_exactly_that_peers_chain(self):
        deployment = make_deployment()
        handles = submit_at(deployment, 0.5, "bz")
        plan = FaultPlan(seed=1, faults=(ByzantineFault(2.0, "peer0.org1"),))
        injector = FaultInjector(plan, deployment.fabric).install()
        deployment.drain()
        assert handles["bz"].is_valid
        assert [entry["kind"] for entry in injector.log] == ["byzantine_tamper"]
        for peer in deployment.peers:
            intact = peer.block_store.verify_chain()
            assert intact == (peer.name != "peer0.org1")


class TestDeterminism:
    def test_same_plan_same_seed_same_log(self):
        def run():
            deployment = make_deployment()
            plan = FaultPlan(
                seed=7,
                faults=(
                    ChurnFault(1.0, 2.0, "client"),
                    OrdererStallFault(2.5, 3.0),
                    ByzantineFault(4.0, "peer1.org2"),
                ),
            )
            injector = FaultInjector(plan, deployment.fabric).install()
            submit_at(deployment, 0.5, "d0")
            submit_at(deployment, 3.2, "d1")
            deployment.drain()
            return injector.log

        assert run() == run()


class TestDeadlockReporting:
    def test_never_resumed_orderer_reports_deadlock(self):
        deployment = make_deployment()
        deployment.fabric.shard(0).orderer.stall()
        handles = submit_at(deployment, 0.5, "stuck")
        outcome = deployment.fabric.flush_and_drain()
        assert outcome.stop_reason == "deadlock"
        assert handles["stuck"].validation_code is None
        assert deployment.fabric.in_flight() > 0
