"""Tests for the ProvChain-style PoW baseline and the central DB baseline."""

import pytest

from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.common.errors import NotFoundError
from repro.common.hashing import checksum_of
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.simulation.randomness import DeterministicRandom


@pytest.fixture
def miner():
    return DeviceModel("miner", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(1))


@pytest.fixture
def pow_chain(miner):
    return PowProvenanceChain(miner, difficulty_bits=12, rng=DeterministicRandom(2))


# ------------------------------------------------------------------- provchain
def test_pow_chain_stores_and_retrieves(pow_chain):
    result = pow_chain.store_data("item/1", b"payload", creator="alice")
    assert result.latency_s > 0
    assert pow_chain.get("item/1").record.checksum == checksum_of(b"payload")
    assert pow_chain.length == 1
    assert pow_chain.verify_chain()


def test_pow_chain_history_tracks_versions(pow_chain):
    pow_chain.store_data("item/1", b"v1")
    pow_chain.store_data("item/1", b"v2", at_time=10.0)
    assert len(pow_chain.history("item/1")) == 2
    assert pow_chain.get("item/1").record.checksum == checksum_of(b"v2")


def test_pow_chain_missing_key(pow_chain):
    with pytest.raises(NotFoundError):
        pow_chain.get("ghost")


def test_pow_chain_mining_pegs_the_cpu(pow_chain, miner):
    result = pow_chain.store_data("item/1", b"x")
    assert miner.busy_time(component="cpu") > 0
    assert result.entry.mined_in_s >= 0


def test_pow_chain_detects_tampering(pow_chain):
    pow_chain.store_data("item/1", b"original")
    assert pow_chain.verify_chain()
    pow_chain.tamper("item/1", checksum_of(b"forged"))
    assert not pow_chain.verify_chain()


def test_pow_chain_is_much_slower_than_low_difficulty():
    miner = DeviceModel("m", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(3))
    easy = PowProvenanceChain(miner, difficulty_bits=8, rng=DeterministicRandom(4))
    hard = PowProvenanceChain(miner, difficulty_bits=22, rng=DeterministicRandom(4))
    easy_latency = easy.store_data("a", b"x").latency_s
    hard_latency = hard.store_data("b", b"x").latency_s
    assert hard_latency > easy_latency


# ------------------------------------------------------------------ central db
def test_central_db_store_and_get():
    server = DeviceModel("db", XEON_E5_1603, rng=DeterministicRandom(5))
    database = CentralProvenanceDatabase(server_device=server)
    result = database.store_data("item/1", b"payload", creator="alice")
    assert result.latency_s > 0
    assert database.get("item/1").checksum == checksum_of(b"payload")
    assert database.record_count == 1


def test_central_db_history_and_missing_key():
    server = DeviceModel("db", XEON_E5_1603)
    database = CentralProvenanceDatabase(server_device=server)
    database.store_data("k", b"v1")
    database.store_data("k", b"v2")
    assert len(database.history("k")) == 2
    with pytest.raises(NotFoundError):
        database.get("ghost")


def test_central_db_tampering_is_silent_and_undetected():
    """The property HyperProv exists to prevent: a central admin can rewrite
    provenance without any detectable trace."""
    server = DeviceModel("db", XEON_E5_1603)
    database = CentralProvenanceDatabase(server_device=server)
    database.store_data("k", b"original")
    forged = checksum_of(b"forged")
    database.tamper("k", forged)
    assert database.get("k").checksum == forged
    assert database.detect_tampering() == []


def test_central_db_is_faster_than_pow():
    server = DeviceModel("db", XEON_E5_1603, rng=DeterministicRandom(6))
    database = CentralProvenanceDatabase(server_device=server)
    miner = DeviceModel("m", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(7))
    chain = PowProvenanceChain(miner, difficulty_bits=18, rng=DeterministicRandom(8))
    db_latency = database.store_data("k", b"x").latency_s
    pow_latency = chain.store_data("k", b"x").latency_s
    assert db_latency < pow_latency
