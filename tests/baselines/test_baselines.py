"""Tests for the ProvChain-style PoW baseline and the central DB baseline.

Both baselines are exercised through their unified
:class:`repro.api.ProvenanceStore` adapters (``as_store()``); only the
backend-specific surfaces (``tamper``, ``verify_chain``, ``length``,
``record_count``, ``detect_tampering``) are touched directly.
"""

import pytest

from repro.api.protocol import StoreRequest
from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.common.errors import NotFoundError
from repro.common.hashing import checksum_of
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.simulation.randomness import DeterministicRandom


def _store(backend, key, data, creator="", at_time=None):
    """Blocking write via the unified store surface."""
    return backend.as_store().store(
        StoreRequest(key=key, data=data, creator=creator), at_time=at_time
    )


@pytest.fixture
def miner():
    return DeviceModel("miner", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(1))


@pytest.fixture
def pow_chain(miner):
    return PowProvenanceChain(miner, difficulty_bits=12, rng=DeterministicRandom(2))


# ------------------------------------------------------------------- provchain
def test_pow_chain_stores_and_retrieves(pow_chain):
    result = _store(pow_chain, "item/1", b"payload", creator="alice")
    assert result.latency_s > 0
    assert pow_chain.as_store().get("item/1").checksum == checksum_of(b"payload")
    assert pow_chain.length == 1
    assert pow_chain.verify_chain()


def test_pow_chain_history_tracks_versions(pow_chain):
    store = pow_chain.as_store()
    _store(pow_chain, "item/1", b"v1")
    _store(pow_chain, "item/1", b"v2", at_time=10.0)
    assert len(store.history("item/1")) == 2
    assert store.get("item/1").checksum == checksum_of(b"v2")


def test_pow_chain_missing_key(pow_chain):
    with pytest.raises(NotFoundError):
        pow_chain.as_store().get("ghost")


def test_pow_chain_mining_pegs_the_cpu(pow_chain, miner):
    result = _store(pow_chain, "item/1", b"x")
    assert miner.busy_time(component="cpu") > 0
    assert result.raw.entry.mined_in_s >= 0


def test_pow_chain_detects_tampering(pow_chain):
    _store(pow_chain, "item/1", b"original")
    assert pow_chain.as_store().audit()
    pow_chain.tamper("item/1", checksum_of(b"forged"))
    assert not pow_chain.as_store().audit()


def test_pow_chain_is_much_slower_than_low_difficulty():
    miner = DeviceModel("m", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(3))
    easy = PowProvenanceChain(miner, difficulty_bits=8, rng=DeterministicRandom(4))
    hard = PowProvenanceChain(miner, difficulty_bits=22, rng=DeterministicRandom(4))
    easy_latency = _store(easy, "a", b"x").latency_s
    hard_latency = _store(hard, "b", b"x").latency_s
    assert hard_latency > easy_latency


# ------------------------------------------------------------------ central db
def test_central_db_store_and_get():
    server = DeviceModel("db", XEON_E5_1603, rng=DeterministicRandom(5))
    database = CentralProvenanceDatabase(server_device=server)
    result = _store(database, "item/1", b"payload", creator="alice")
    assert result.latency_s > 0
    assert database.as_store().get("item/1").checksum == checksum_of(b"payload")
    assert database.record_count == 1


def test_central_db_history_and_missing_key():
    server = DeviceModel("db", XEON_E5_1603)
    database = CentralProvenanceDatabase(server_device=server)
    _store(database, "k", b"v1")
    _store(database, "k", b"v2")
    assert len(database.as_store().history("k")) == 2
    with pytest.raises(NotFoundError):
        database.as_store().get("ghost")


def test_central_db_tampering_is_silent_and_undetected():
    """The property HyperProv exists to prevent: a central admin can rewrite
    provenance without any detectable trace."""
    server = DeviceModel("db", XEON_E5_1603)
    database = CentralProvenanceDatabase(server_device=server)
    _store(database, "k", b"original")
    forged = checksum_of(b"forged")
    database.tamper("k", forged)
    assert database.as_store().get("k").checksum == forged
    assert database.detect_tampering() == []


def test_central_db_is_faster_than_pow():
    server = DeviceModel("db", XEON_E5_1603, rng=DeterministicRandom(6))
    database = CentralProvenanceDatabase(server_device=server)
    miner = DeviceModel("m", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(7))
    chain = PowProvenanceChain(miner, difficulty_bits=18, rng=DeterministicRandom(8))
    db_latency = _store(database, "k", b"x").latency_s
    pow_latency = _store(chain, "k", b"x").latency_s
    assert db_latency < pow_latency
