"""Tests for deterministic ids and canonical serialization."""

from dataclasses import dataclass

import pytest

from repro.common.ids import DeterministicIdGenerator, IdGenerator, short_uid
from repro.common.serialization import canonical_json, from_canonical_json


def test_short_uid_is_stable():
    assert short_uid("hello") == short_uid("hello")
    assert short_uid("hello") != short_uid("world")


def test_short_uid_length():
    assert len(short_uid("x", length=8)) == 8


def test_id_generator_sequence_is_deterministic():
    first = IdGenerator("tx", seed="s")
    second = IdGenerator("tx", seed="s")
    assert [first.next() for _ in range(5)] == [second.next() for _ in range(5)]


def test_id_generator_unique_within_run():
    gen = IdGenerator("tx")
    ids = [gen.next() for _ in range(100)]
    assert len(set(ids)) == 100


def test_id_generator_prefix_embedded():
    gen = IdGenerator("block")
    assert gen.next().startswith("block-0-")


def test_deterministic_generator_tracks_issued_count():
    gen = DeterministicIdGenerator("tx")
    assert gen.peek_index() == 0
    gen.next()
    gen.next()
    assert gen.peek_index() == 2


def test_different_seeds_produce_different_ids():
    assert IdGenerator("tx", seed="a").next() != IdGenerator("tx", seed="b").next()


# --------------------------------------------------------------------------- serialization
def test_canonical_json_sorts_keys():
    assert canonical_json({"b": 1, "a": 2}) == b'{"a":2,"b":1}'


def test_canonical_json_equal_objects_equal_bytes():
    left = {"x": [1, 2, 3], "y": {"nested": True}}
    right = {"y": {"nested": True}, "x": [1, 2, 3]}
    assert canonical_json(left) == canonical_json(right)


def test_canonical_json_handles_bytes_roundtrip():
    payload = {"data": b"\x00\x01binary"}
    decoded = from_canonical_json(canonical_json(payload))
    assert decoded["data"] == b"\x00\x01binary"


def test_canonical_json_handles_sets_deterministically():
    assert canonical_json({"s": {3, 1, 2}}) == b'{"s":[1,2,3]}'


def test_canonical_json_handles_dataclasses():
    @dataclass
    class Point:
        x: int
        y: int

    assert canonical_json(Point(1, 2)) == b'{"x":1,"y":2}'


def test_canonical_json_rejects_unserializable_objects():
    with pytest.raises(TypeError):
        canonical_json({"f": object()})


def test_from_canonical_json_accepts_str_and_bytes():
    blob = canonical_json({"k": 1})
    assert from_canonical_json(blob) == from_canonical_json(blob.decode())
