"""Tests for the event bus and the metrics registry."""

import pytest

from repro.common.events import EventBus
from repro.common.metrics import Histogram, MetricsRegistry


# ------------------------------------------------------------------ event bus
def test_publish_reaches_subscriber():
    bus = EventBus()
    received = []
    bus.subscribe("topic", lambda topic, payload: received.append((topic, payload)))
    delivered = bus.publish("topic", {"x": 1})
    assert delivered == 1
    assert received == [("topic", {"x": 1})]


def test_publish_without_subscribers_is_fine():
    bus = EventBus()
    assert bus.publish("nobody-listening", 42) == 0


def test_multiple_subscribers_all_receive():
    bus = EventBus()
    hits = []
    bus.subscribe("t", lambda *_: hits.append("a"))
    bus.subscribe("t", lambda *_: hits.append("b"))
    bus.publish("t")
    assert hits == ["a", "b"]


def test_unsubscribe_stops_delivery():
    bus = EventBus()
    hits = []
    subscription = bus.subscribe("t", lambda *_: hits.append(1))
    subscription.cancel()
    bus.publish("t")
    assert hits == []


def test_subscriber_exception_propagates_after_all_handlers_run():
    bus = EventBus()
    hits = []

    def failing(topic, payload):
        raise RuntimeError("boom")

    bus.subscribe("t", failing)
    bus.subscribe("t", lambda *_: hits.append(1))
    with pytest.raises(RuntimeError):
        bus.publish("t")
    assert hits == [1]


def test_topics_lists_only_active_topics():
    bus = EventBus()
    bus.subscribe("a", lambda *_: None)
    sub = bus.subscribe("b", lambda *_: None)
    sub.cancel()
    assert bus.topics() == ["a"]


def test_published_count_increments():
    bus = EventBus()
    bus.publish("x")
    bus.publish("y")
    assert bus.published_count == 2


def test_per_tx_topics_stay_bounded_across_many_transactions():
    """Regression: one-shot ``tx_committed:{tx_id}`` subscriptions must not
    leave an empty handler list behind for every transaction ever seen."""
    bus = EventBus()
    for tx_number in range(1000):
        topic = f"tx_committed:tx-{tx_number}"
        received = []
        subscription = bus.subscribe(topic, lambda _t, p: received.append(p))
        bus.publish(topic, {"tx": tx_number})
        subscription.cancel()
        assert received == [{"tx": tx_number}]
    assert bus.topic_count == 0
    assert bus.topics() == []


def test_handler_cancelling_itself_during_publish_drops_topic():
    bus = EventBus()
    subscription = bus.subscribe("once", lambda *_: subscription.cancel())
    assert bus.publish("once") == 1
    assert bus.topic_count == 0
    # Publishing to the now-empty topic is a no-op, not an error.
    assert bus.publish("once") == 0


def test_unsubscribe_keeps_topic_with_remaining_subscribers():
    bus = EventBus()
    keep = []
    bus.subscribe("t", lambda *_: keep.append(1))
    other = bus.subscribe("t", lambda *_: None)
    other.cancel()
    assert bus.topic_count == 1
    bus.publish("t")
    assert keep == [1]


def test_cancel_inside_own_handler_does_not_skip_later_handlers():
    """Regression: a handler cancelling its own subscription mid-publish
    (the one-shot continuous-query cursor pattern) must not shift the
    handler list under the iteration — every later handler still runs."""
    bus = EventBus()
    hits = []

    def one_shot(_topic, _payload):
        hits.append("one-shot")
        first.cancel()

    first = bus.subscribe("t", one_shot)
    bus.subscribe("t", lambda *_: hits.append("second"))
    bus.subscribe("t", lambda *_: hits.append("third"))
    assert bus.publish("t") == 3
    assert hits == ["one-shot", "second", "third"]
    # The cancelled handler is genuinely gone on the next publish.
    assert bus.publish("t") == 2
    assert hits == ["one-shot", "second", "third", "second", "third"]


def test_cancel_other_subscription_mid_publish_suppresses_it():
    bus = EventBus()
    hits = []
    bus.subscribe("t", lambda *_: later.cancel())
    later = bus.subscribe("t", lambda *_: hits.append("later"))
    bus.publish("t")
    assert hits == []
    bus.publish("t")
    assert hits == []


def test_subscribe_during_publish_does_not_see_inflight_event():
    bus = EventBus()
    hits = []

    def subscribe_more(_topic, _payload):
        bus.subscribe("t", lambda *_: hits.append("new"))

    bus.subscribe("t", subscribe_more)
    assert bus.publish("t") == 1
    assert hits == []
    assert bus.publish("t") == 2
    assert hits == ["new"]


def test_cancel_is_idempotent_mid_and_post_publish():
    bus = EventBus()

    def cancel_twice(_topic, _payload):
        subscription.cancel()
        subscription.cancel()

    subscription = bus.subscribe("t", cancel_twice)
    bus.publish("t")
    subscription.cancel()
    assert bus.topic_count == 0


def test_subscription_is_a_context_manager():
    bus = EventBus()
    hits = []
    with bus.subscribe("t", lambda *_: hits.append(1)) as subscription:
        assert subscription.active
        bus.publish("t")
    assert hits == [1]
    assert not subscription.active
    bus.publish("t")
    assert hits == [1]
    assert bus.topic_count == 0


# -------------------------------------------------------------------- metrics
def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry("test")
    counter = registry.counter("ops")
    counter.inc()
    counter.inc(2)
    assert counter.value == 3
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_and_add():
    gauge = MetricsRegistry().gauge("queue")
    gauge.set(5)
    gauge.add(-2)
    assert gauge.value == 3


def test_histogram_summary_statistics():
    histogram = Histogram("lat")
    for value in [1.0, 2.0, 3.0, 4.0]:
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.mean == pytest.approx(2.5)
    assert histogram.minimum == 1.0
    assert histogram.maximum == 4.0
    assert histogram.percentile(50) == pytest.approx(2.5)
    assert histogram.percentile(100) == 4.0


def test_histogram_empty_is_safe():
    histogram = Histogram("empty")
    assert histogram.mean == 0.0
    assert histogram.percentile(95) == 0.0
    assert histogram.stddev == 0.0


def test_histogram_percentile_validates_range():
    histogram = Histogram("h")
    histogram.observe(1.0)
    with pytest.raises(ValueError):
        histogram.percentile(150)


def test_registry_namespaces_metric_names():
    registry = MetricsRegistry("peer.p0")
    registry.counter("txs").inc()
    assert "peer.p0.txs" in registry.snapshot()


def test_registry_same_name_returns_same_object():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.histogram("h") is registry.histogram("h")


def test_registry_reset_clears_everything():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.histogram("b").observe(1)
    registry.reset()
    assert registry.snapshot() == {}
