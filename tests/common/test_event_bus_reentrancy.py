"""EventBus re-entrancy: subscriptions taken out mid-publish.

Regression tests for the subscriber-during-publish bug: a handler that
subscribes another handler while a publish is being delivered must not
cause the new subscriber to see the *in-flight* event (historically it
could, because delivery iterated the live subscriber list).
"""

from repro.common.events import EventBus


class TestSubscribeDuringPublish:
    def test_new_subscriber_skips_the_in_flight_event(self):
        bus = EventBus()
        late_calls = []

        def subscribing_handler(topic, payload):
            bus.subscribe("topic", lambda t, p: late_calls.append(p))

        bus.subscribe("topic", subscribing_handler)
        delivered = bus.publish("topic", "first")
        assert delivered == 1
        assert late_calls == []

    def test_new_subscriber_sees_the_next_publish(self):
        bus = EventBus()
        late_calls = []
        bus.subscribe(
            "topic",
            lambda t, p: bus.subscribe("topic", lambda t2, p2: late_calls.append(p2)),
        )
        bus.publish("topic", "first")
        bus.publish("topic", "second")
        # One subscription was added during "first" (sees only "second"),
        # a second one during "second" (sees nothing yet).
        assert late_calls == ["second"]

    def test_mid_publish_subscription_to_another_topic_is_deferred_too(self):
        bus = EventBus()
        other_calls = []

        def subscribing_handler(topic, payload):
            bus.subscribe("other", lambda t, p: other_calls.append(p))
            bus.publish("other", "nested-after-join")

        bus.subscribe("topic", subscribing_handler)
        bus.publish("topic", None)
        # The nested publish post-dates the subscribe call, so the new
        # subscriber legitimately sees it — but only that one.
        assert other_calls == ["nested-after-join"]
        bus.publish("other", "later")
        assert other_calls == ["nested-after-join", "later"]

    def test_subscription_taken_before_a_nested_publish_is_not_delivered(self):
        bus = EventBus()
        inner_calls = []
        order = []

        def outer(topic, payload):
            order.append("outer")
            # Subscribe to the *same* topic, then trigger a nested publish
            # of it from within the outer delivery.
            bus.subscribe("topic", lambda t, p: inner_calls.append(p))
            if payload == "trigger":
                bus.publish("topic", "nested")

        bus.subscribe("topic", outer)
        bus.publish("topic", "trigger")
        # The nested publish post-dates the inner subscription, so exactly
        # the nested payload is delivered to it — never "trigger".
        assert inner_calls == ["nested"]
        assert order == ["outer", "outer"]

    def test_delivery_count_excludes_the_deferred_join(self):
        bus = EventBus()
        bus.subscribe(
            "topic", lambda t, p: bus.subscribe("topic", lambda t2, p2: None)
        )
        # The joiner is registered but not delivered to during the first
        # publish; from the second publish on it counts.
        assert bus.publish("topic", None) == 1
        assert bus.publish("topic", None) == 2

    def test_cancel_during_publish_still_works_alongside_joins(self):
        bus = EventBus()
        seen = []
        subscription = bus.subscribe("topic", lambda t, p: seen.append(("a", p)))

        def cancelling_then_subscribing(topic, payload):
            subscription.cancel()
            bus.subscribe("topic", lambda t, p: seen.append(("late", p)))

        bus.subscribe("topic", cancelling_then_subscribing)
        bus.publish("topic", 1)
        bus.publish("topic", 2)
        # "a" saw only the first event (cancelled mid-first-publish after
        # delivery); "late" saw only the second (joined mid-first-publish).
        assert seen == [("a", 1), ("late", 2)]
