"""Tests for repro.common.hashing."""

import hashlib

import pytest

from repro.common.hashing import (
    HashChain,
    checksum_of,
    combine_hashes,
    sha256_bytes,
    sha256_hex,
)


def test_sha256_hex_matches_stdlib():
    assert sha256_hex(b"hyperprov") == hashlib.sha256(b"hyperprov").hexdigest()


def test_sha256_accepts_strings_as_utf8():
    assert sha256_hex("data") == sha256_hex(b"data")


def test_sha256_bytes_returns_32_bytes():
    assert len(sha256_bytes(b"x")) == 32


def test_checksum_is_sha256_alias():
    assert checksum_of(b"payload") == sha256_hex(b"payload")


def test_combine_hashes_is_order_sensitive():
    a, b = sha256_hex(b"a"), sha256_hex(b"b")
    assert combine_hashes([a, b]) != combine_hashes([b, a])


def test_hash_chain_starts_at_genesis():
    chain = HashChain()
    assert chain.current == HashChain.GENESIS
    assert len(chain) == 0


def test_hash_chain_extend_changes_digest():
    chain = HashChain()
    first = chain.extend(b"block-1")
    second = chain.extend(b"block-2")
    assert first != second
    assert len(chain) == 2


def test_hash_chain_verify_replays_items():
    chain = HashChain()
    items = [b"a", b"b", b"c"]
    for item in items:
        chain.extend(item)
    assert chain.verify(items)
    assert not chain.verify([b"a", b"tampered", b"c"])


def test_hash_chain_verify_detects_missing_item():
    chain = HashChain()
    chain.extend(b"a")
    chain.extend(b"b")
    assert not chain.verify([b"a"])


def test_hash_chain_custom_seed():
    chain = HashChain(seed=sha256_hex(b"seed"))
    chain.extend(b"x")
    assert chain.verify([b"x"], seed=sha256_hex(b"seed"))
    assert not chain.verify([b"x"])


@pytest.mark.parametrize("payload", [b"", b"a", b"x" * 10_000])
def test_checksum_length_is_64_hex_chars(payload):
    digest = checksum_of(payload)
    assert len(digest) == 64
    assert all(c in "0123456789abcdef" for c in digest)
