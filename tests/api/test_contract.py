"""Contract tests: one assertion set, all three ``ProvenanceStore`` backends.

The suite runs identical store/get/history/verify assertions against the
HyperProv client, the central database and the PoW chain through their
adapters, then checks each backend's tamper-evidence semantics through
the uniform ``audit()`` call.
"""

from __future__ import annotations

import pytest

from repro.api import ProvenanceStore, StoreRequest
from repro.api.adapters import CentralDbStore, HyperProvStore, PowChainStore, adapt_store
from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.common.errors import (
    IncompleteTransactionError,
    NotFoundError,
    ValidationError,
)
from repro.common.hashing import checksum_of
from repro.core.topology import build_desktop_deployment
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.simulation.randomness import DeterministicRandom

BACKENDS = ("hyperprov", "central-db", "provchain-pow")


def _build_store(backend: str) -> ProvenanceStore:
    if backend == "hyperprov":
        return build_desktop_deployment(seed=42).client.as_store()
    if backend == "central-db":
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        return CentralProvenanceDatabase(server_device=device).as_store()
    device = DeviceModel("miner", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(8))
    return PowProvenanceChain(
        device, difficulty_bits=8, rng=DeterministicRandom(9)
    ).as_store()


@pytest.fixture(params=BACKENDS)
def store(request) -> ProvenanceStore:
    return _build_store(request.param)


# ----------------------------------------------------------------- protocol
def test_adapters_satisfy_the_protocol(store):
    assert isinstance(store, ProvenanceStore)
    assert store.backend_name in BACKENDS


def test_store_then_get_roundtrip(store):
    handle = store.store(StoreRequest(key="contract/a", data=b"payload-a"))
    assert handle.done and handle.ok
    assert handle.latency_s > 0
    receipt = handle.result()
    assert receipt.ok and receipt.backend == store.backend_name
    view = store.get("contract/a")
    assert view.key == "contract/a"
    assert view.checksum == checksum_of(b"payload-a")
    assert view.record is not None


def test_get_missing_key_raises(store):
    with pytest.raises(NotFoundError):
        store.get("contract/never-stored")


def test_history_lists_every_version_oldest_first(store):
    for version in (b"v1", b"v2", b"v3"):
        store.store(StoreRequest(key="contract/hist", data=version))
    history = store.history("contract/hist")
    assert len(history) == 3
    checksums = [entry.view.checksum for entry in history]
    assert checksums == [checksum_of(b"v1"), checksum_of(b"v2"), checksum_of(b"v3")]


def test_verify_accepts_original_and_rejects_forgery(store):
    store.store(StoreRequest(key="contract/v", data=b"genuine"))
    assert store.verify("contract/v", b"genuine")
    assert store.verify("contract/v", checksum_of(b"genuine"))
    assert not store.verify("contract/v", b"forged")


def test_metadata_and_dependencies_roundtrip(store):
    store.store(StoreRequest(key="contract/dep", data=b"base"))
    store.store(
        StoreRequest(
            key="contract/derived",
            data=b"derived",
            dependencies=("contract/dep",),
            metadata={"stage": "thumb"},
        )
    )
    view = store.get("contract/derived")
    assert view.dependencies == ("contract/dep",)
    assert view.metadata["stage"] == "thumb"


def test_audit_is_clean_without_tampering(store):
    store.store(StoreRequest(key="contract/audit", data=b"ok"))
    assert store.audit() is True


# ------------------------------------------------------- tamper semantics
def test_tamper_evidence_matches_backend_semantics():
    """PoW exposes rewrites via audit; the central DB never notices."""
    pow_store = _build_store("provchain-pow")
    pow_store.store(StoreRequest(key="t", data=b"original"))
    pow_store.backend.tamper("t", checksum_of(b"forged"))
    assert pow_store.audit() is False  # hash chain broke: evidence

    central = _build_store("central-db")
    central.store(StoreRequest(key="t", data=b"original"))
    central.backend.tamper("t", checksum_of(b"forged"))
    assert central.audit() is True  # silent rewrite: no evidence
    assert not central.verify("t", b"original")  # history was rewritten


def test_hyperprov_audit_detects_local_ledger_rewrite():
    deployment = build_desktop_deployment(seed=42)
    store = deployment.client.as_store()
    store.store(StoreRequest(key="t", data=b"original"))
    victim = deployment.peers[0]
    block = victim.block_store.block(0)
    position = next(
        i for i, t in enumerate(block.transactions) if t.function == "set"
    )
    # Committed envelopes are sealed and shared across peers; the rewrite
    # goes through the peer's copy-on-write tamper hook.
    tx = victim.tamper(0, position)
    tx.args[1] = checksum_of(b"forged")
    assert store.audit() is False


# -------------------------------------------------------------- envelopes
def test_metadata_only_submit_requires_checksum_and_location():
    store = _build_store("hyperprov")
    with pytest.raises(ValidationError):
        store.submit(StoreRequest(key="meta/only"))
    handle = store.store(
        StoreRequest(
            key="meta/only",
            checksum=checksum_of(b"elsewhere"),
            location="file://elsewhere",
        )
    )
    assert handle.ok
    assert store.get("meta/only").location == "file://elsewhere"


def test_hyperprov_submit_is_nonblocking_and_result_gated():
    store = _build_store("hyperprov")
    handle = store.submit(StoreRequest(key="async/1", data=b"payload"))
    assert not handle.done
    with pytest.raises(IncompleteTransactionError):
        handle.result()
    with pytest.raises(IncompleteTransactionError):
        _ = handle.latency_s
    store.drain()
    assert handle.done and handle.ok
    assert handle.result().latency_s > 0


def test_adapt_store_dispatches_and_caches():
    device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
    database = CentralProvenanceDatabase(server_device=device)
    assert isinstance(adapt_store(database), CentralDbStore)
    assert database.as_store() is database.as_store()

    deployment = build_desktop_deployment(seed=42)
    assert isinstance(adapt_store(deployment.client), HyperProvStore)

    miner = DeviceModel("m", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(8))
    chain = PowProvenanceChain(miner, difficulty_bits=8, rng=DeterministicRandom(9))
    assert isinstance(adapt_store(chain), PowChainStore)


# ------------------------------------------------------- deprecated shims
def test_legacy_methods_still_work_but_warn(desktop_deployment):
    client = desktop_deployment.client
    with pytest.warns(DeprecationWarning):
        post = client.store_data("legacy/1", b"old-api")
    desktop_deployment.drain()
    assert post.handle.is_valid
    with pytest.warns(DeprecationWarning):
        record = client.get("legacy/1").payload
    assert record.checksum == checksum_of(b"old-api")
    with pytest.warns(DeprecationWarning):
        assert client.check_hash("legacy/1", b"old-api").payload


def test_legacy_baseline_methods_still_work_but_warn():
    device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
    database = CentralProvenanceDatabase(server_device=device)
    with pytest.warns(DeprecationWarning):
        database.store_data("legacy/k", b"v")
    with pytest.warns(DeprecationWarning):
        assert database.get("legacy/k").checksum == checksum_of(b"v")
    with pytest.warns(DeprecationWarning):
        assert len(database.history("legacy/k")) == 1


def test_post_result_total_latency_contract(desktop_deployment):
    client = desktop_deployment.client
    with pytest.warns(DeprecationWarning):
        post = client.store_data("latency/1", b"x")
    with pytest.raises(IncompleteTransactionError):
        _ = post.total_latency_s
    desktop_deployment.drain()
    assert post.total_latency_s > 0
