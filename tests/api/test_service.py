"""Service facade tests: sessions, futures, tenant isolation, admission."""

from __future__ import annotations

import pytest

from repro.api import HyperProvService
from repro.common.errors import AdmissionRejectedError, ConfigurationError, NotFoundError
from repro.middleware.config import PipelineConfig
from repro.middleware.tenancy import namespace_key, strip_namespace, tenant_namespace


@pytest.fixture
def service(desktop_deployment) -> HyperProvService:
    return HyperProvService(desktop_deployment)


# ----------------------------------------------------------------- sessions
def test_default_session_wraps_the_deployment_client(service, desktop_deployment):
    session = service.session()
    assert session.backend.client is desktop_deployment.client
    handle = session.submit("svc/1", b"payload")
    assert session.in_flight == 1 and not handle.done
    session.drain()
    assert session.in_flight == 0 and handle.ok
    assert session.get("svc/1").checksum == handle.record.checksum


def test_multiple_submissions_stay_in_flight_until_drain(service):
    session = service.session()
    handles = [session.submit(f"svc/batch/{i}", b"x" * 64) for i in range(5)]
    assert session.in_flight == 5
    assert all(not handle.done for handle in handles)
    session.drain()
    assert all(handle.done and handle.ok for handle in handles)


def test_context_manager_drains_on_exit(service):
    with service.session() as session:
        handle = session.submit("svc/ctx", b"payload")
        assert not handle.done
    assert handle.done and handle.ok


def test_done_callbacks_fire_on_commit(service):
    session = service.session()
    completions = []
    handle = session.submit("svc/cb", b"payload")
    handle.add_done_callback(lambda h: completions.append(h.committed_at))
    assert completions == []
    session.drain()
    assert len(completions) == 1 and completions[0] > 0
    # Late registration on a completed handle fires immediately.
    handle.add_done_callback(lambda h: completions.append(h.committed_at))
    assert len(completions) == 2


def test_session_with_pipeline_config_applies_order_batch(service, desktop_deployment):
    session = service.session(pipeline=PipelineConfig(order_batch_size=4))
    for index in range(4):
        session.submit(f"svc/obatch/{index}", b"y" * 32)
    session.drain()
    flushes = desktop_deployment.fabric.metrics.get_counter("batcher.flushes")
    assert flushes is not None and flushes.value >= 1


# ------------------------------------------------------------------ tenancy
def test_namespace_helpers_roundtrip():
    assert tenant_namespace("acme") == "tenant/acme/"
    assert namespace_key("acme", "k") == "tenant/acme/k"
    assert strip_namespace("acme", "tenant/acme/k") == "k"
    with pytest.raises(ConfigurationError):
        tenant_namespace("bad/name")
    with pytest.raises(ConfigurationError):
        tenant_namespace("")


def test_tenants_cannot_read_each_others_keys(service):
    alice = service.session(tenant="alice")
    bob = service.session(tenant="bob")
    alice.store("shared-name", b"alice-data")
    with pytest.raises(NotFoundError):
        bob.get("shared-name")
    with pytest.raises(NotFoundError):
        bob.history("shared-name")


def test_same_relative_key_is_distinct_per_tenant(service):
    alice = service.session(tenant="alice")
    bob = service.session(tenant="bob")
    alice.store("reading", b"alice-value")
    bob.store("reading", b"bob-value")
    assert alice.get("reading").checksum != bob.get("reading").checksum
    # Views are tenant-relative: no namespace prefix leaks out.
    assert alice.get("reading").key == "reading"
    assert len(alice.history("reading")) == 1


def test_tenant_dependencies_stay_in_namespace(service):
    alice = service.session(tenant="alice")
    alice.store("raw", b"base")
    alice.store("derived", b"out", dependencies=("raw",))
    view = alice.get("derived")
    assert view.dependencies == ("raw",)  # relative view...
    assert view.record.dependencies == ["tenant/alice/raw"]  # namespaced ledger


def test_tenant_keys_are_namespaced_on_the_ledger(service, desktop_deployment):
    alice = service.session(tenant="alice")
    alice.store("item", b"v")
    peer = desktop_deployment.peers[0]
    assert "tenant/alice/item" in peer.history.keys()


def test_verify_is_tenant_scoped(service):
    alice = service.session(tenant="alice")
    bob = service.session(tenant="bob")
    alice.store("doc", b"alice-doc")
    bob.store("doc", b"bob-doc")
    assert alice.verify("doc", b"alice-doc")
    assert not alice.verify("doc", b"bob-doc")


# --------------------------------------------------------------- admission
def test_admission_cap_rejects_excess_in_flight(service):
    session = service.session(tenant="capped", max_in_flight=3)
    for index in range(3):
        session.submit(f"burst/{index}", b"x")
    with pytest.raises(AdmissionRejectedError) as excinfo:
        session.submit("burst/overflow", b"x")
    assert excinfo.value.tenant == "capped"
    assert excinfo.value.limit == 3


def test_admission_slots_free_after_drain(service):
    session = service.session(tenant="capped", max_in_flight=2)
    session.submit("a", b"1")
    session.submit("b", b"2")
    session.drain()
    session.submit("c", b"3")  # no longer rejected
    session.drain()
    assert session.get("c").checksum is not None


def test_admission_does_not_limit_reads(service):
    session = service.session(tenant="capped", max_in_flight=1)
    session.store("r", b"v")
    session.submit("in-flight", b"w")  # occupies the single slot
    for _ in range(5):
        assert session.get("r").key == "r"  # reads pass freely
    session.drain()


def test_admission_cap_is_shared_across_sessions_of_one_tenant(service):
    first = service.session(tenant="acme", max_in_flight=4)
    second = service.session(tenant="acme", max_in_flight=4)
    for index in range(2):
        first.submit(f"s1/{index}", b"x")
        second.submit(f"s2/{index}", b"x")
    # Four in flight tenant-wide: both sessions are now at the cap.
    with pytest.raises(AdmissionRejectedError):
        first.submit("s1/overflow", b"x")
    with pytest.raises(AdmissionRejectedError):
        second.submit("s2/overflow", b"x")
    # A different tenant is unaffected.
    other = service.session(tenant="globex", max_in_flight=4)
    other.submit("s3/0", b"x")
    first.drain()


def test_submitted_counter_survives_drain(service):
    session = service.session()
    session.submit("count/1", b"x")
    session.submit("count/2", b"x")
    assert session.submitted == 2
    session.drain()
    assert session.submitted == 2
    session.submit("count/3", b"x")
    session.drain()
    assert session.submitted == 3


def test_admission_cap_without_tenant(service):
    session = service.session(max_in_flight=2)
    session.submit("anon/1", b"x")
    session.submit("anon/2", b"x")
    with pytest.raises(AdmissionRejectedError):
        session.submit("anon/3", b"x")
    session.drain()


# ---------------------------------------------------------- config surface
def test_pipeline_config_names_include_tenancy_middlewares():
    config = PipelineConfig(tenant="acme", max_in_flight=8)
    names = config.middleware_names()
    assert "tenant-prefix" in names and "admission-control" in names
    assert names.index("admission-control") < names.index("tenant-prefix")


def test_pipeline_config_validates_tenancy_fields():
    with pytest.raises(ConfigurationError):
        PipelineConfig(tenant="has/slash")
    with pytest.raises(ConfigurationError):
        PipelineConfig(max_in_flight=-1)
    roundtrip = PipelineConfig.from_dict(PipelineConfig(tenant="t", max_in_flight=2).to_dict())
    assert roundtrip.tenant == "t" and roundtrip.max_in_flight == 2
