"""Tests for the chaincode shim, records, lifecycle and the HyperProv chaincode."""

import json

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.lifecycle import ChaincodeRegistry
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import ChaincodeStub
from repro.common.errors import ChaincodeError, NotFoundError, ValidationError
from repro.common.hashing import checksum_of
from repro.crypto.keys import KeyPair
from repro.ledger.history import HistoryDatabase
from repro.ledger.world_state import WorldState
from repro.membership.identity import Organization
from repro.membership.policies import SignaturePolicy


@pytest.fixture
def creator_cert():
    org = Organization("org1")
    return org.enroll("client1", role="client").certificate


def make_stub(function, args, world_state=None, history=None, creator=None, tx_id="tx-1"):
    return ChaincodeStub(
        tx_id=tx_id,
        channel="ch",
        function=function,
        args=args,
        world_state=world_state if world_state is not None else WorldState(),
        history=history if history is not None else HistoryDatabase(),
        creator=creator,
        timestamp=1.0,
    )


def committed_state_with(key, record_json):
    state = WorldState()
    state.put(key, record_json, (0, 0))
    return state


# ----------------------------------------------------------------------- shim
def test_stub_get_state_records_read_version():
    state = WorldState()
    state.put("k", "v", (3, 1))
    stub = make_stub("get", ["k"], world_state=state)
    assert stub.get_state("k") == "v"
    assert stub.rw_set.reads[0].version == (3, 1)


def test_stub_put_state_is_buffered_not_applied():
    state = WorldState()
    stub = make_stub("set", [], world_state=state)
    stub.put_state("k", "v")
    assert state.get("k") is None
    assert stub.rw_set.writes[0].key == "k"


def test_stub_read_your_own_writes():
    stub = make_stub("set", [])
    stub.put_state("k", "v-new")
    assert stub.get_state("k") == "v-new"


def test_stub_del_state_marks_delete():
    stub = make_stub("delete", [])
    stub.put_state("k", "v")
    stub.del_state("k")
    assert stub.get_state("k") is None
    assert stub.rw_set.writes[-1].is_delete


def test_stub_put_empty_key_rejected():
    with pytest.raises(ChaincodeError):
        make_stub("set", []).put_state("", "v")


def test_stub_counts_state_operations():
    stub = make_stub("set", [])
    stub.put_state("a", "1")
    stub.get_state("a")
    stub.get_state_by_range("", "")
    assert stub.state_operations == 3


# -------------------------------------------------------------------- records
def test_record_roundtrip_json():
    record = ProvenanceRecord(
        key="k", checksum=checksum_of(b"x"), location="ssh://storage/k",
        creator="client1", organization="org1", certificate_fingerprint="abcd",
        dependencies=["dep1"], metadata={"note": "hello"}, size_bytes=1,
    )
    parsed = ProvenanceRecord.from_json(record.to_json())
    assert parsed == record


def test_record_validation_rejects_bad_checksum():
    record = ProvenanceRecord(
        key="k", checksum="short", location="loc", creator="c",
        organization="o", certificate_fingerprint="",
    )
    with pytest.raises(ValidationError):
        record.validate()


def test_record_validation_rejects_missing_fields():
    with pytest.raises(ValidationError):
        ProvenanceRecord(
            key="", checksum=checksum_of(b"x"), location="loc", creator="c",
            organization="o", certificate_fingerprint="",
        ).validate()
    with pytest.raises(ValidationError):
        ProvenanceRecord(
            key="k", checksum=checksum_of(b"x"), location="", creator="c",
            organization="o", certificate_fingerprint="",
        ).validate()


def test_record_from_malformed_json_raises():
    with pytest.raises(ValidationError):
        ProvenanceRecord.from_json("{not json")


def test_record_matches_checksum():
    checksum = checksum_of(b"x")
    record = ProvenanceRecord(
        key="k", checksum=checksum, location="loc", creator="c",
        organization="o", certificate_fingerprint="",
    )
    assert record.matches_checksum(checksum)
    assert not record.matches_checksum(checksum_of(b"y"))
    assert not record.matches_checksum("")


# ------------------------------------------------------------------ hyperprov
def test_set_then_get_roundtrip(creator_cert):
    chaincode = HyperProvChaincode()
    state = WorldState()
    checksum = checksum_of(b"payload")
    set_stub = make_stub(
        "set", ["data/1", checksum, "ssh://storage/data/1", "[]", "{}", "7"],
        world_state=state, creator=creator_cert,
    )
    response = chaincode.invoke(set_stub)
    assert response.is_ok

    # Simulate the commit, then query.
    committed = committed_state_with("data/1", set_stub.rw_set.writes[0].value)
    get_stub = make_stub("get", ["data/1"], world_state=committed, creator=creator_cert)
    get_response = chaincode.invoke(get_stub)
    record = ProvenanceRecord.from_json(get_response.payload)
    assert record.checksum == checksum
    assert record.creator == "client1"
    assert record.organization == "org1"
    assert record.size_bytes == 7


def test_set_requires_creator_certificate():
    chaincode = HyperProvChaincode()
    stub = make_stub("set", ["k", checksum_of(b"x"), "loc"], creator=None)
    assert not chaincode.invoke(stub).is_ok


def test_set_requires_minimum_args(creator_cert):
    chaincode = HyperProvChaincode()
    stub = make_stub("set", ["k"], creator=creator_cert)
    response = chaincode.invoke(stub)
    assert not response.is_ok
    assert "requires" in response.message


def test_set_rejects_unknown_dependency(creator_cert):
    chaincode = HyperProvChaincode()
    stub = make_stub(
        "set",
        ["k", checksum_of(b"x"), "loc", json.dumps(["missing-dep"])],
        creator=creator_cert,
    )
    response = chaincode.invoke(stub)
    assert not response.is_ok
    assert "missing-dep" in response.message


def test_set_accepts_existing_dependency(creator_cert):
    chaincode = HyperProvChaincode()
    dependency_record = ProvenanceRecord(
        key="raw", checksum=checksum_of(b"raw"), location="loc", creator="client1",
        organization="org1", certificate_fingerprint="",
    )
    state = committed_state_with("raw", dependency_record.to_json())
    stub = make_stub(
        "set",
        ["derived", checksum_of(b"d"), "loc2", json.dumps(["raw"])],
        world_state=state, creator=creator_cert,
    )
    response = chaincode.invoke(stub)
    assert response.is_ok
    record = ProvenanceRecord.from_json(response.payload)
    assert record.dependencies == ["raw"]


def test_get_missing_key_errors(creator_cert):
    chaincode = HyperProvChaincode()
    response = chaincode.invoke(make_stub("get", ["ghost"], creator=creator_cert))
    assert not response.is_ok


def test_checkhash_matches_and_mismatches(creator_cert):
    chaincode = HyperProvChaincode()
    checksum = checksum_of(b"x")
    record = ProvenanceRecord(
        key="k", checksum=checksum, location="loc", creator="client1",
        organization="org1", certificate_fingerprint="",
    )
    state = committed_state_with("k", record.to_json())
    ok = chaincode.invoke(make_stub("checkhash", ["k", checksum], world_state=state))
    bad = chaincode.invoke(make_stub("checkhash", ["k", checksum_of(b"y")], world_state=state))
    assert json.loads(ok.payload)["matches"] is True
    assert json.loads(bad.payload)["matches"] is False


def test_getkeyhistory_returns_all_versions(creator_cert):
    chaincode = HyperProvChaincode()
    history = HistoryDatabase()
    history.record("k", "t1", 0, 0, 1.0, "v1")
    history.record("k", "t2", 1, 0, 2.0, "v2")
    response = chaincode.invoke(make_stub("getkeyhistory", ["k"], history=history))
    entries = json.loads(response.payload)
    assert [e["tx_id"] for e in entries] == ["t1", "t2"]


def test_getkeyhistory_empty_errors():
    chaincode = HyperProvChaincode()
    response = chaincode.invoke(make_stub("getkeyhistory", ["ghost"]))
    assert not response.is_ok


def test_getbyrange_excludes_other_prefixes(creator_cert):
    chaincode = HyperProvChaincode()
    state = WorldState()
    for key in ["a/1", "a/2", "b/1"]:
        state.put(key, "{}", (0, 0))
    response = chaincode.invoke(make_stub("getbyrange", ["a/", "a/~"], world_state=state))
    rows = json.loads(response.payload)
    assert [row["key"] for row in rows] == ["a/1", "a/2"]


def test_getdependencies(creator_cert):
    chaincode = HyperProvChaincode()
    record = ProvenanceRecord(
        key="k", checksum=checksum_of(b"x"), location="loc", creator="client1",
        organization="org1", certificate_fingerprint="", dependencies=["a", "b"],
    )
    state = committed_state_with("k", record.to_json())
    response = chaincode.invoke(make_stub("getdependencies", ["k"], world_state=state))
    assert json.loads(response.payload) == ["a", "b"]


def test_delete_existing_and_missing(creator_cert):
    chaincode = HyperProvChaincode()
    state = committed_state_with("k", "{}")
    ok = chaincode.invoke(make_stub("delete", ["k"], world_state=state))
    assert ok.is_ok
    missing = chaincode.invoke(make_stub("delete", ["ghost"]))
    assert not missing.is_ok


def test_unknown_function_errors():
    chaincode = HyperProvChaincode()
    response = chaincode.invoke(make_stub("frobnicate", []))
    assert not response.is_ok
    assert "unknown function" in response.message


def test_init_writes_marker():
    chaincode = HyperProvChaincode()
    stub = make_stub("init", [])
    assert chaincode.init(stub).is_ok
    assert stub.rw_set.writes[0].key == "__hyperprov_initialized__"


# ------------------------------------------------------------------- lifecycle
def test_lifecycle_instantiate_and_install():
    registry = ChaincodeRegistry()
    definition = registry.instantiate("hyperprov", "1.0", HyperProvChaincode(),
                                      SignaturePolicy("org1"))
    registry.install_on("hyperprov", "peer0")
    assert definition.is_installed_on("peer0")
    assert not definition.is_installed_on("peer1")
    assert registry.names() == {"hyperprov"}


def test_lifecycle_duplicate_version_rejected():
    registry = ChaincodeRegistry()
    registry.instantiate("cc", "1.0", HyperProvChaincode(), SignaturePolicy("org1"))
    with pytest.raises(ChaincodeError):
        registry.instantiate("cc", "1.0", HyperProvChaincode(), SignaturePolicy("org1"))


def test_lifecycle_upgrade_keeps_installations():
    registry = ChaincodeRegistry()
    registry.instantiate("cc", "1.0", HyperProvChaincode(), SignaturePolicy("org1"))
    registry.install_on("cc", "peer0")
    registry.instantiate("cc", "2.0", HyperProvChaincode(), SignaturePolicy("org1"))
    assert registry.get("cc").version == "2.0"
    assert registry.get("cc").is_installed_on("peer0")


def test_lifecycle_unknown_chaincode():
    registry = ChaincodeRegistry()
    with pytest.raises(NotFoundError):
        registry.get("ghost")
    assert registry.find("ghost") is None
