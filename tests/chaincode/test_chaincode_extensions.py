"""Unit tests for the chaincode extensions: rich queries, ownership ACL and
chaincode events (at the shim level, without a full deployment)."""

import json

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import ChaincodeStub
from repro.common.errors import ChaincodeError
from repro.common.hashing import checksum_of
from repro.ledger.history import HistoryDatabase
from repro.ledger.world_state import WorldState
from repro.membership.identity import Organization


@pytest.fixture
def org1_cert():
    return Organization("org1").enroll("client1", role="client").certificate


@pytest.fixture
def org2_cert():
    return Organization("org2").enroll("client2", role="client").certificate


def stub_for(function, args, state=None, creator=None):
    return ChaincodeStub(
        tx_id="tx-1",
        channel="ch",
        function=function,
        args=args,
        world_state=state if state is not None else WorldState(),
        history=HistoryDatabase(),
        creator=creator,
        timestamp=1.0,
    )


def state_with_records(*records):
    state = WorldState()
    for position, record in enumerate(records):
        state.put(record.key, record.to_json(), (0, position))
    return state


def record(key, creator="client1", organization="org1", metadata=None, dependencies=()):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(key.encode()),
        location=f"ssh://storage/{key}",
        creator=creator,
        organization=organization,
        certificate_fingerprint="fp",
        metadata=metadata or {},
        dependencies=list(dependencies),
    )


# ------------------------------------------------------------------ rich query
def test_query_by_creator(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(
        record("a", creator="client1"), record("b", creator="someone-else")
    )
    response = chaincode.invoke(
        stub_for("query", [json.dumps({"creator": "client1"})], state=state)
    )
    assert response.is_ok
    assert [row["key"] for row in json.loads(response.payload)] == ["a"]


def test_query_by_metadata_and_dependency(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(
        record("raw", metadata={"station": "tromso"}),
        record("derived", dependencies=["raw"]),
    )
    by_metadata = chaincode.invoke(
        stub_for("query", [json.dumps({"metadata.station": "tromso"})], state=state)
    )
    assert [row["key"] for row in json.loads(by_metadata.payload)] == ["raw"]
    by_dependency = chaincode.invoke(
        stub_for("query", [json.dumps({"dependencies": "raw"})], state=state)
    )
    assert [row["key"] for row in json.loads(by_dependency.payload)] == ["derived"]


def test_query_rejects_malformed_selectors():
    chaincode = HyperProvChaincode()
    assert not chaincode.invoke(stub_for("query", [])).is_ok
    assert not chaincode.invoke(stub_for("query", ["{not json"])).is_ok
    assert not chaincode.invoke(stub_for("query", [json.dumps({})])).is_ok
    assert not chaincode.invoke(stub_for("query", [json.dumps(["list"])])).is_ok


def test_query_skips_internal_and_malformed_values():
    chaincode = HyperProvChaincode()
    state = state_with_records(record("good"))
    state.put("__hyperprov_initialized__", "true", (0, 9))
    state.put("broken", "not-a-record", (0, 10))
    response = chaincode.invoke(
        stub_for("query", [json.dumps({"organization": "org1"})], state=state)
    )
    assert [row["key"] for row in json.loads(response.payload)] == ["good"]


def test_query_prefix_scopes_scan_to_candidate_keys():
    chaincode = HyperProvChaincode()
    state = state_with_records(
        record("tenant/a/1", creator="client1"),
        record("tenant/a/2", creator="other"),
        record("tenant/b/1", creator="client1"),
    )
    scoped = chaincode.invoke(
        stub_for(
            "query",
            [json.dumps({"_prefix": "tenant/a/", "creator": "client1"})],
            state=state,
        )
    )
    assert [row["key"] for row in json.loads(scoped.payload)] == ["tenant/a/1"]
    # The rw-set only records the candidate keys, not the whole key space.
    stub = stub_for(
        "query", [json.dumps({"_prefix": "tenant/a/", "creator": "client1"})],
        state=state,
    )
    chaincode.invoke(stub)
    assert sorted(r.key for r in stub.rw_set.reads) == ["tenant/a/1", "tenant/a/2"]


def test_query_prefix_alone_returns_everything_under_it():
    chaincode = HyperProvChaincode()
    state = state_with_records(record("p/1"), record("p/2"), record("q/1"))
    response = chaincode.invoke(
        stub_for("query", [json.dumps({"_prefix": "p/"})], state=state)
    )
    assert [row["key"] for row in json.loads(response.payload)] == ["p/1", "p/2"]


def test_query_prefix_validation():
    chaincode = HyperProvChaincode()
    assert not chaincode.invoke(
        stub_for("query", [json.dumps({"_prefix": 7})])
    ).is_ok
    # An empty prefix with no other selector fields is still rejected.
    assert not chaincode.invoke(
        stub_for("query", [json.dumps({"_prefix": ""})])
    ).is_ok


def test_query_parse_memo_does_not_serve_stale_records_after_update():
    chaincode = HyperProvChaincode()
    state = state_with_records(record("item", metadata={"rev": 1}))
    selector = [json.dumps({"metadata.rev": 2})]
    assert json.loads(chaincode.invoke(stub_for("query", selector, state=state)).payload) == []
    updated = record("item", metadata={"rev": 2})
    state.put("item", updated.to_json(), (1, 0))  # new version, new value
    rows = json.loads(chaincode.invoke(stub_for("query", selector, state=state)).payload)
    assert [row["key"] for row in rows] == ["item"]


# --------------------------------------------------------------------- ACL
def test_set_rejected_for_foreign_organization(org2_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for(
            "set", ["owned", checksum_of(b"new"), "loc"], state=state, creator=org2_cert
        )
    )
    assert not response.is_ok
    assert "owned by organization" in response.message


def test_set_allowed_for_owning_organization(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for(
            "set", ["owned", checksum_of(b"new"), "loc"], state=state, creator=org1_cert
        )
    )
    assert response.is_ok
    updated = ProvenanceRecord.from_json(response.payload)
    assert updated.metadata["previous_checksum"] == checksum_of(b"owned")


def test_delete_rejected_for_foreign_organization(org2_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for("delete", ["owned"], state=state, creator=org2_cert)
    )
    assert not response.is_ok


def test_delete_allowed_for_owner(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for("delete", ["owned"], state=state, creator=org1_cert)
    )
    assert response.is_ok


# -------------------------------------------------------------------- events
def test_set_emits_provenance_recorded_event(org1_cert):
    chaincode = HyperProvChaincode()
    stub = stub_for("set", ["k", checksum_of(b"x"), "loc"], creator=org1_cert)
    assert chaincode.invoke(stub).is_ok
    assert stub.event is not None
    name, payload = stub.event
    assert name == HyperProvChaincode.RECORD_EVENT
    assert json.loads(payload)["key"] == "k"


def test_failed_set_emits_no_event(org2_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    stub = stub_for("set", ["owned", checksum_of(b"x"), "loc"], state=state,
                    creator=org2_cert)
    assert not chaincode.invoke(stub).is_ok
    assert stub.event is None


def test_set_event_requires_name():
    stub = stub_for("set", [])
    with pytest.raises(ChaincodeError):
        stub.set_event("")
    stub.set_event("custom", "payload")
    assert stub.event == ("custom", "payload")


def test_set_memo_does_not_leak_across_retry_timestamps(org1_cert):
    """Regression: a retried tx reuses its tx_id with a later proposal
    timestamp; the memoized record must carry the endorsed attempt's
    timestamp, not the aborted one's."""
    from repro.chaincode.shim import ChaincodeStub
    from repro.ledger.history import HistoryDatabase

    chaincode = HyperProvChaincode()
    checksum = checksum_of(b"data")

    def attempt(timestamp):
        stub = ChaincodeStub(
            tx_id="tx-retry", channel="ch", function="set",
            args=["k", checksum, "loc"], world_state=WorldState(),
            history=HistoryDatabase(), creator=org1_cert, timestamp=timestamp,
        )
        response = chaincode.invoke(stub)
        assert response.is_ok
        return json.loads(response.payload)

    assert attempt(1.0)["timestamp"] == 1.0
    assert attempt(2.5)["timestamp"] == 2.5
