"""Unit tests for the chaincode extensions: rich queries, ownership ACL and
chaincode events (at the shim level, without a full deployment)."""

import json

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import ChaincodeStub
from repro.common.errors import ChaincodeError
from repro.common.hashing import checksum_of
from repro.ledger.history import HistoryDatabase
from repro.ledger.world_state import WorldState
from repro.membership.identity import Organization


@pytest.fixture
def org1_cert():
    return Organization("org1").enroll("client1", role="client").certificate


@pytest.fixture
def org2_cert():
    return Organization("org2").enroll("client2", role="client").certificate


def stub_for(function, args, state=None, creator=None):
    return ChaincodeStub(
        tx_id="tx-1",
        channel="ch",
        function=function,
        args=args,
        world_state=state if state is not None else WorldState(),
        history=HistoryDatabase(),
        creator=creator,
        timestamp=1.0,
    )


def state_with_records(*records):
    state = WorldState()
    for position, record in enumerate(records):
        state.put(record.key, record.to_json(), (0, position))
    return state


def record(key, creator="client1", organization="org1", metadata=None, dependencies=()):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(key.encode()),
        location=f"ssh://storage/{key}",
        creator=creator,
        organization=organization,
        certificate_fingerprint="fp",
        metadata=metadata or {},
        dependencies=list(dependencies),
    )


# ------------------------------------------------------------------ rich query
def test_query_by_creator(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(
        record("a", creator="client1"), record("b", creator="someone-else")
    )
    response = chaincode.invoke(
        stub_for("query", [json.dumps({"creator": "client1"})], state=state)
    )
    assert response.is_ok
    assert [row["key"] for row in json.loads(response.payload)] == ["a"]


def test_query_by_metadata_and_dependency(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(
        record("raw", metadata={"station": "tromso"}),
        record("derived", dependencies=["raw"]),
    )
    by_metadata = chaincode.invoke(
        stub_for("query", [json.dumps({"metadata.station": "tromso"})], state=state)
    )
    assert [row["key"] for row in json.loads(by_metadata.payload)] == ["raw"]
    by_dependency = chaincode.invoke(
        stub_for("query", [json.dumps({"dependencies": "raw"})], state=state)
    )
    assert [row["key"] for row in json.loads(by_dependency.payload)] == ["derived"]


def test_query_rejects_malformed_selectors():
    chaincode = HyperProvChaincode()
    assert not chaincode.invoke(stub_for("query", [])).is_ok
    assert not chaincode.invoke(stub_for("query", ["{not json"])).is_ok
    assert not chaincode.invoke(stub_for("query", [json.dumps({})])).is_ok
    assert not chaincode.invoke(stub_for("query", [json.dumps(["list"])])).is_ok


def test_query_skips_internal_and_malformed_values():
    chaincode = HyperProvChaincode()
    state = state_with_records(record("good"))
    state.put("__hyperprov_initialized__", "true", (0, 9))
    state.put("broken", "not-a-record", (0, 10))
    response = chaincode.invoke(
        stub_for("query", [json.dumps({"organization": "org1"})], state=state)
    )
    assert [row["key"] for row in json.loads(response.payload)] == ["good"]


# --------------------------------------------------------------------- ACL
def test_set_rejected_for_foreign_organization(org2_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for(
            "set", ["owned", checksum_of(b"new"), "loc"], state=state, creator=org2_cert
        )
    )
    assert not response.is_ok
    assert "owned by organization" in response.message


def test_set_allowed_for_owning_organization(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for(
            "set", ["owned", checksum_of(b"new"), "loc"], state=state, creator=org1_cert
        )
    )
    assert response.is_ok
    updated = ProvenanceRecord.from_json(response.payload)
    assert updated.metadata["previous_checksum"] == checksum_of(b"owned")


def test_delete_rejected_for_foreign_organization(org2_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for("delete", ["owned"], state=state, creator=org2_cert)
    )
    assert not response.is_ok


def test_delete_allowed_for_owner(org1_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    response = chaincode.invoke(
        stub_for("delete", ["owned"], state=state, creator=org1_cert)
    )
    assert response.is_ok


# -------------------------------------------------------------------- events
def test_set_emits_provenance_recorded_event(org1_cert):
    chaincode = HyperProvChaincode()
    stub = stub_for("set", ["k", checksum_of(b"x"), "loc"], creator=org1_cert)
    assert chaincode.invoke(stub).is_ok
    assert stub.event is not None
    name, payload = stub.event
    assert name == HyperProvChaincode.RECORD_EVENT
    assert json.loads(payload)["key"] == "k"


def test_failed_set_emits_no_event(org2_cert):
    chaincode = HyperProvChaincode()
    state = state_with_records(record("owned", organization="org1"))
    stub = stub_for("set", ["owned", checksum_of(b"x"), "loc"], state=state,
                    creator=org2_cert)
    assert not chaincode.invoke(stub).is_ok
    assert stub.event is None


def test_set_event_requires_name():
    stub = stub_for("set", [])
    with pytest.raises(ChaincodeError):
        stub.set_event("")
    stub.set_event("custom", "payload")
    assert stub.event == ("custom", "payload")
