"""Tests for keys, certificates and Merkle trees."""

import pytest

from repro.common.errors import CryptoError, DuplicateError
from repro.crypto.certificates import CertificateAuthority
from repro.crypto.keys import KeyPair, sign, verify
from repro.crypto.merkle import MerkleTree


# ----------------------------------------------------------------------- keys
def test_keypair_generation_is_deterministic():
    assert KeyPair.generate("alice").public_key == KeyPair.generate("alice").public_key
    assert KeyPair.generate("alice").public_key != KeyPair.generate("bob").public_key


def test_sign_verify_roundtrip():
    keys = KeyPair.generate("alice")
    signature = keys.sign(b"message")
    assert keys.verify(b"message", signature)


def test_verify_rejects_wrong_message():
    keys = KeyPair.generate("alice")
    signature = keys.sign(b"message")
    assert not keys.verify(b"other message", signature)


def test_verify_rejects_signature_from_other_key():
    alice, bob = KeyPair.generate("alice"), KeyPair.generate("bob")
    signature = bob.sign(b"message")
    assert not verify(alice.public_key, b"message", signature)


def test_verify_rejects_malformed_signature():
    keys = KeyPair.generate("alice")
    assert not verify(keys.public_key, b"m", "garbage")
    assert not verify(keys.public_key, b"m", f"{keys.public_key}:not-hex!")


def test_sign_requires_bytes():
    with pytest.raises(CryptoError):
        sign(KeyPair.generate("a").private_key, "not-bytes")  # type: ignore[arg-type]


# --------------------------------------------------------------- certificates
def test_ca_issues_valid_certificates():
    ca = CertificateAuthority("ca1", "org1")
    keys = KeyPair.generate("peer0")
    certificate = ca.issue("peer0", keys.public_key, role="peer")
    assert ca.validate(certificate)
    assert certificate.organization == "org1"
    assert certificate.role == "peer"


def test_ca_rejects_duplicate_subject():
    ca = CertificateAuthority("ca1", "org1")
    ca.issue("peer0", KeyPair.generate("peer0").public_key)
    with pytest.raises(DuplicateError):
        ca.issue("peer0", KeyPair.generate("other").public_key)


def test_revoked_certificate_fails_validation():
    ca = CertificateAuthority("ca1", "org1")
    certificate = ca.issue("peer0", KeyPair.generate("peer0").public_key)
    ca.revoke(certificate)
    assert ca.is_revoked(certificate)
    assert not ca.validate(certificate)


def test_certificate_from_other_ca_fails_validation():
    ca1 = CertificateAuthority("ca1", "org1")
    ca2 = CertificateAuthority("ca2", "org2")
    certificate = ca2.issue("peer0", KeyPair.generate("peer0").public_key)
    assert not ca1.validate(certificate)
    with pytest.raises(CryptoError):
        ca1.revoke(certificate)


def test_certificate_fingerprint_is_stable():
    ca = CertificateAuthority("ca1", "org1")
    certificate = ca.issue("peer0", KeyPair.generate("peer0").public_key)
    assert certificate.fingerprint == certificate.fingerprint
    assert len(certificate.fingerprint) == 16


def test_ca_lookup_and_count():
    ca = CertificateAuthority("ca1", "org1")
    issued = ca.issue("peer0", KeyPair.generate("peer0").public_key)
    assert ca.lookup("peer0") == issued
    assert ca.lookup("nobody") is None
    assert ca.issued_count == 1


# --------------------------------------------------------------------- merkle
def test_merkle_root_changes_with_content():
    left = MerkleTree([b"a", b"b", b"c"])
    right = MerkleTree([b"a", b"b", b"x"])
    assert left.root != right.root


def test_merkle_root_depends_on_order():
    assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root


def test_empty_tree_has_stable_root():
    assert MerkleTree([]).root == MerkleTree([]).root == MerkleTree.EMPTY_ROOT


def test_single_leaf_tree():
    tree = MerkleTree([b"only"])
    assert tree.leaf_count == 1
    proof = tree.proof(0)
    assert MerkleTree.verify_proof(b"only", proof, tree.root)


@pytest.mark.parametrize("count", [2, 3, 4, 5, 8, 13])
def test_inclusion_proofs_verify_for_every_leaf(count):
    leaves = [f"tx-{i}".encode() for i in range(count)]
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)


def test_inclusion_proof_fails_for_wrong_leaf():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.proof(1)
    assert not MerkleTree.verify_proof(b"tampered", proof, tree.root)


def test_proof_index_out_of_range():
    with pytest.raises(IndexError):
        MerkleTree([b"a"]).proof(5)
