"""Unit tests for the field-value secondary index and its ledger attachment."""

import pytest

from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import ValidationError
from repro.common.hashing import checksum_of
from repro.ledger.world_state import WorldState
from repro.query.indexes import (
    DEFAULT_INDEX_FIELDS,
    FieldValueIndex,
    validate_index_fields,
)


def record_json(key, creator="client1", organization="org1", metadata=None):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(key.encode()),
        location=f"ssh://storage/{key}",
        creator=creator,
        organization=organization,
        certificate_fingerprint="fp",
        metadata=metadata or {},
    ).to_json()


# ------------------------------------------------------------- validation
def test_validate_accepts_record_fields_metadata_paths_and_wildcard():
    fields = validate_index_fields(
        ["creator", "metadata.station", "metadata.*", "checksum"]
    )
    assert fields == ("creator", "metadata.station", "metadata.*", "checksum")


def test_validate_collapses_duplicates_preserving_order():
    assert validate_index_fields(["creator", "checksum", "creator"]) == (
        "creator",
        "checksum",
    )


@pytest.mark.parametrize(
    "bad",
    [
        ["no_such_field"],
        ["dependencies"],  # container field: membership, not equality
        ["metadata"],  # container field
        ["metadata."],  # needs a key (or the wildcard)
        [""],
        [None],
        [],
    ],
)
def test_validate_rejects_bad_field_lists(bad):
    with pytest.raises(ValidationError):
        validate_index_fields(bad)


def test_default_fields_are_valid():
    assert validate_index_fields(DEFAULT_INDEX_FIELDS) == DEFAULT_INDEX_FIELDS


# --------------------------------------------------------------- coverage
def test_covers_exact_fields_and_wildcard_metadata():
    index = FieldValueIndex(["creator", "metadata.*"])
    assert index.covers("creator")
    assert index.covers("metadata.station")
    assert not index.covers("checksum")
    assert not index.covers("metadata.")  # empty key is never servable
    assert not index.covers("organization")


def test_without_wildcard_only_named_metadata_paths_are_covered():
    index = FieldValueIndex(["metadata.station"])
    assert index.covers("metadata.station")
    assert not index.covers("metadata.other")


# ------------------------------------------------------------ maintenance
def test_update_posts_and_lookup_finds_keys():
    index = FieldValueIndex(["creator"])
    index.update("a", record_json("a", creator="alice"))
    index.update("b", record_json("b", creator="alice"))
    index.update("c", record_json("c", creator="bob"))
    assert index.lookup("creator", "alice") == {"a", "b"}
    assert index.lookup("creator", "bob") == {"c"}
    assert index.cardinality("creator", "alice") == 2
    assert index.indexed_key_count == 3


def test_missing_field_is_posted_under_its_from_json_default():
    """A document without ``creator`` must be reachable via ``creator == ""``,
    matching the selector predicate's default-filling semantics."""
    index = FieldValueIndex(["creator"])
    index.update("bare", '{"key": "bare"}')
    assert index.lookup("creator", "") == {"bare"}


def test_overwrite_moves_postings_to_the_new_value():
    index = FieldValueIndex(["creator"])
    index.update("a", record_json("a", creator="alice"))
    index.update("a", record_json("a", creator="bob"))
    assert index.lookup("creator", "alice") == set()
    assert index.lookup("creator", "bob") == {"a"}
    assert index.indexed_key_count == 1


def test_remove_drops_every_posting():
    index = FieldValueIndex(["creator", "metadata.*"])
    index.update("a", record_json("a", creator="alice", metadata={"station": "tromso"}))
    index.remove("a")
    assert index.lookup("creator", "alice") == set()
    assert index.lookup("metadata.station", "tromso") == set()
    assert index.indexed_key_count == 0
    assert index.posting_sizes("creator") == {}


def test_remove_is_idempotent():
    index = FieldValueIndex(["creator"])
    index.update("a", record_json("a"))
    index.remove("a")
    index.remove("a")
    assert index.indexed_key_count == 0


def test_wildcard_posts_every_scalar_metadata_entry():
    index = FieldValueIndex(["metadata.*"])
    index.update(
        "a",
        record_json("a", metadata={"station": "tromso", "run": 7, "tags": ["x"]}),
    )
    assert index.lookup("metadata.station", "tromso") == {"a"}
    assert index.lookup("metadata.run", 7) == {"a"}
    # Unhashable values are never posted; those selectors stay on the scan.
    assert index.lookup("metadata.tags", ("x",)) == set()


def test_exact_metadata_entry_is_not_double_posted_with_wildcard():
    index = FieldValueIndex(["metadata.station", "metadata.*"])
    index.update("a", record_json("a", metadata={"station": "tromso"}))
    assert index.lookup("metadata.station", "tromso") == {"a"}
    assert index.posting_sizes("metadata.station") == {"tromso": 1}


def test_malformed_document_gets_no_postings():
    index = FieldValueIndex(["creator"])
    index.update("broken", "not json at all")
    assert index.indexed_key_count == 0
    assert index.lookup("creator", "") == set()


def test_lookup_on_uncovered_field_is_none():
    index = FieldValueIndex(["creator"])
    assert index.lookup("checksum", "x") is None
    assert index.cardinality("checksum", "x") == 0


# ----------------------------------------------------- ledger attachment
def test_attach_reindexes_existing_committed_state():
    state = WorldState()
    state.put("a", record_json("a", creator="alice"), (0, 0))
    state.put("b", record_json("b", creator="bob"), (0, 1))
    index = FieldValueIndex(["creator"])
    state.attach_secondary_index(index)
    assert state.secondary_index is index
    assert index.lookup("creator", "alice") == {"a"}
    assert index.lookup("creator", "bob") == {"b"}


def test_index_is_maintained_transactionally_with_put_and_delete():
    state = WorldState()
    index = FieldValueIndex(["creator"])
    state.attach_secondary_index(index)
    state.put("a", record_json("a", creator="alice"), (0, 0))
    assert index.lookup("creator", "alice") == {"a"}
    state.put("a", record_json("a", creator="bob"), (0, 1))
    assert index.lookup("creator", "alice") == set()
    assert index.lookup("creator", "bob") == {"a"}
    state.delete("a", (0, 2))
    assert index.lookup("creator", "bob") == set()
    assert index.indexed_key_count == 0


def test_delete_then_reput_does_not_duplicate_postings():
    state = WorldState()
    index = FieldValueIndex(["creator"])
    state.attach_secondary_index(index)
    for round_number in range(25):
        state.put("a", record_json("a", creator="alice"), (round_number, 0))
        state.delete("a", (round_number, 1))
    state.put("a", record_json("a", creator="alice"), (99, 0))
    assert index.lookup("creator", "alice") == {"a"}
    assert index.cardinality("creator", "alice") == 1


def test_detaching_stops_maintenance():
    state = WorldState()
    index = FieldValueIndex(["creator"])
    state.attach_secondary_index(index)
    state.put("a", record_json("a", creator="alice"), (0, 0))
    state.attach_secondary_index(None)
    assert state.secondary_index is None
    state.put("b", record_json("b", creator="alice"), (0, 1))
    assert index.lookup("creator", "alice") == {"a"}
