"""Secondary indexes must not move simulated time.

Every query access path costs exactly one state operation in the device
cost model, so running the same workload with indexes on and off must
produce byte-identical virtual-time results — same engine clock, same
latencies, same payloads.  This is the no-drift acceptance gate for the
read-side query subsystem.
"""

from repro.api.protocol import StoreRequest
from repro.core.topology import build_desktop_deployment
from repro.middleware.config import PipelineConfig


def run_workload(indexed: bool):
    deployment = build_desktop_deployment(seed=42)
    if indexed:
        deployment.client.configure_pipeline(
            PipelineConfig(indexes=("creator", "metadata.*"))
        )
    store = deployment.client.as_store()
    for i in range(8):
        store.submit(
            StoreRequest(
                key=f"vt/{i}",
                data=f"payload-{i}".encode(),
                metadata={"group": i % 2, "hot": i % 4 == 0},
            )
        )
    deployment.drain()
    client = deployment.client
    observations = []
    for result in [
        client.query_records({"metadata.group": 1}),
        client.query_records({"creator": "hyperprov-client", "metadata.hot": True}),
        client.query_records({"_prefix": "vt/"}, limit=3),
        client.query_records({"_prefix": "vt/"}, limit=3, bookmark="vt/2"),
        client.get_by_range("vt/", "vt/~"),
        client.get_by_range("vt/", "vt/~", limit=4),
    ]:
        observations.append(
            (
                [(row["key"], row["record"].to_json()) for row in result.payload],
                round(result.latency_s, 12),
                result.bookmark,
            )
        )
    observations.append(round(deployment.engine.now, 12))
    return observations


def test_virtual_time_is_byte_identical_with_indexes_on_and_off():
    assert run_workload(indexed=False) == run_workload(indexed=True)
