"""Continuous queries: registration, exactly-once commit-fed delivery,
tenant isolation, shard fan-in and session lifecycle."""

import json

import pytest

from repro.api.service import HyperProvService
from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import ConfigurationError, ValidationError
from repro.common.events import EventBus
from repro.common.hashing import checksum_of
from repro.core.topology import build_desktop_deployment
from repro.fabric.peer import CommitResult
from repro.ledger.block import Block
from repro.ledger.transaction import ReadWriteSet, Transaction, TxValidationCode, WriteSetEntry
from repro.middleware.config import PipelineConfig
from repro.query.continuous import ContinuousQueryRegistry


def record_value(key, creator="client1", metadata=None):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(key.encode()),
        location=f"ssh://storage/{key}",
        creator=creator,
        organization="org1",
        certificate_fingerprint="fp",
        metadata=metadata or {},
    ).to_json()


def block_payload(number, writes, codes=None, shard=0):
    """A ``block_delivered`` payload carrying one transaction per write."""
    transactions = []
    for tx_number, write in enumerate(writes):
        rw_set = ReadWriteSet(writes=[write])
        transactions.append(
            Transaction(
                tx_id=f"tx-{number}-{tx_number}",
                channel="ch",
                chaincode="hyperprov",
                function="set",
                args=[],
                rw_set=rw_set,
            )
        )
    block = Block.build(
        number=number, previous_hash="", transactions=transactions, timestamp=1.0
    )
    result = CommitResult(
        peer="peer0",
        block_number=number,
        received_at=1.0,
        committed_at=1.0,
        validation_codes=list(codes or [TxValidationCode.VALID] * len(transactions)),
    )
    return {"block": block, "commits": {"peer0": result}, "shard": shard}


# ----------------------------------------------------------- registration
def test_register_rejects_bad_selectors():
    registry = ContinuousQueryRegistry(EventBus())
    with pytest.raises(ValidationError):
        registry.register({})
    with pytest.raises(ValidationError):
        registry.register("not a dict")
    with pytest.raises(ValidationError):
        registry.register({"_prefix": 7})
    with pytest.raises(ValidationError):
        registry.register({"creator": "x", "_limit": 5})
    with pytest.raises(ValidationError):
        registry.register({"_explain": True})
    assert registry.active_count == 0


def test_prefix_only_selector_is_valid():
    registry = ContinuousQueryRegistry(EventBus())
    query = registry.register({"_prefix": "iot/"})
    assert query.active
    assert registry.active_count == 1


def test_cancel_is_idempotent_and_deregisters():
    registry = ContinuousQueryRegistry(EventBus())
    query = registry.register({"creator": "x"})
    query.cancel()
    query.cancel()
    assert not query.active
    assert registry.active_count == 0


def test_handle_is_a_context_manager():
    registry = ContinuousQueryRegistry(EventBus())
    with registry.register({"creator": "x"}) as query:
        assert query.active
    assert registry.active_count == 0


# ------------------------------------------------------ unit-level stream
def test_matching_commits_are_delivered_exactly_once():
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    seen = []
    registry.register({"creator": "cam-1"}, callback=seen.append)
    bus.publish(
        "block_delivered",
        block_payload(
            0,
            [
                WriteSetEntry("iot/a", record_value("iot/a", creator="cam-1")),
                WriteSetEntry("iot/b", record_value("iot/b", creator="other")),
            ],
        ),
    )
    assert [event["key"] for event in seen] == ["iot/a"]
    assert seen[0]["block_number"] == 0
    assert seen[0]["tx_id"] == "tx-0-0"
    assert seen[0]["record"]["creator"] == "cam-1"


def test_invalidated_transactions_are_never_delivered():
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    seen = []
    registry.register({"_prefix": "iot/"}, callback=seen.append)
    bus.publish(
        "block_delivered",
        block_payload(
            0,
            [
                WriteSetEntry("iot/valid", record_value("iot/valid")),
                WriteSetEntry("iot/conflicted", record_value("iot/conflicted")),
            ],
            codes=[TxValidationCode.VALID, TxValidationCode.MVCC_READ_CONFLICT],
        ),
    )
    assert [event["key"] for event in seen] == ["iot/valid"]


def test_deletes_are_not_delivered():
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    seen = []
    registry.register({"_prefix": "iot/"}, callback=seen.append)
    bus.publish(
        "block_delivered",
        block_payload(
            0,
            [
                WriteSetEntry("iot/gone", None, is_delete=True),
                WriteSetEntry("iot/kept", record_value("iot/kept")),
            ],
        ),
    )
    assert [event["key"] for event in seen] == ["iot/kept"]


def test_commit_batch_topic_delivers_each_block_once():
    """In batched delivery mode the network publishes ``commit_batch``
    *instead of* per-block events — the registry must not double-count."""
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    seen = []
    registry.register({"_prefix": "iot/"}, callback=seen.append)
    entries = [
        block_payload(0, [WriteSetEntry("iot/a", record_value("iot/a"))]),
        block_payload(1, [WriteSetEntry("iot/b", record_value("iot/b"))], shard=1),
    ]
    bus.publish("commit_batch", entries)
    assert [(event["key"], event["shard"]) for event in seen] == [
        ("iot/a", 0),
        ("iot/b", 1),
    ]


def test_without_callback_events_buffer_on_the_handle():
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    query = registry.register({"_prefix": "iot/"})
    bus.publish(
        "block_delivered",
        block_payload(0, [WriteSetEntry("iot/a", record_value("iot/a"))]),
    )
    assert query.pending_count == 1
    assert [event["key"] for event in query.pop_events()] == ["iot/a"]
    assert query.pop_events() == []
    assert query.delivered_count == 1


def test_cancelled_query_receives_nothing_more():
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    seen = []
    query = registry.register({"_prefix": "iot/"}, callback=seen.append)
    bus.publish(
        "block_delivered",
        block_payload(0, [WriteSetEntry("iot/a", record_value("iot/a"))]),
    )
    query.cancel()
    bus.publish(
        "block_delivered",
        block_payload(1, [WriteSetEntry("iot/b", record_value("iot/b"))]),
    )
    assert [event["key"] for event in seen] == ["iot/a"]


def test_registry_close_detaches_from_the_bus():
    bus = EventBus()
    registry = ContinuousQueryRegistry(bus)
    seen = []
    registry.register({"_prefix": "iot/"}, callback=seen.append)
    registry.close()
    assert bus.topics() == []
    bus.publish(
        "block_delivered",
        block_payload(0, [WriteSetEntry("iot/a", record_value("iot/a"))]),
    )
    assert seen == []
    assert registry.active_count == 0


# ------------------------------------------------------- end-to-end flow
def test_session_subscribe_requires_the_pipeline_knob(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    session = service.session(pipeline=PipelineConfig())
    with pytest.raises(ConfigurationError):
        session.subscribe({"_prefix": "iot/"})


def test_deliveries_follow_commits_under_churn(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    session = service.session(pipeline=PipelineConfig(continuous_queries=True))
    seen = []
    session.subscribe({"metadata.kind": "telemetry"}, callback=seen.append)
    # Churn: matching writes, non-matching writes, and an overwrite of a
    # matching key — every matching *commit* is delivered, exactly once.
    session.submit("iot/a", b"v1", metadata={"kind": "telemetry"})
    session.submit("iot/b", b"v1", metadata={"kind": "admin"})
    session.drain()
    session.submit("iot/a", b"v2", metadata={"kind": "telemetry"})
    session.submit("iot/c", b"v1", metadata={"kind": "telemetry"})
    session.drain()
    keys = sorted(event["key"] for event in seen)
    assert keys == ["iot/a", "iot/a", "iot/c"]
    assert len({(e["key"], e["tx_id"]) for e in seen}) == 3  # no duplicates


def test_session_close_cancels_standing_queries(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    session = service.session(pipeline=PipelineConfig(continuous_queries=True))
    seen = []
    handle = session.subscribe({"_prefix": "iot/"}, callback=seen.append)
    session.submit("iot/a", b"x")
    session.close()
    assert not handle.active
    # Further commits (through a fresh session) must not reach it.
    late = service.session(pipeline=PipelineConfig(continuous_queries=True))
    late.submit("iot/b", b"x")
    late.drain()
    assert all(event["key"] != "iot/b" for event in seen)


def test_tenant_subscriptions_are_isolated_and_tenant_relative(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    acme = service.session(
        tenant="acme", pipeline=PipelineConfig(continuous_queries=True)
    )
    rival = service.session(
        tenant="rival", pipeline=PipelineConfig(continuous_queries=True)
    )
    acme_seen, rival_seen = [], []
    acme.subscribe({"_prefix": "doc/"}, callback=acme_seen.append)
    rival.subscribe({"_prefix": "doc/"}, callback=rival_seen.append)
    acme.submit("doc/a", b"x")
    rival.submit("doc/r", b"x")
    service.drain()
    assert [event["key"] for event in acme_seen] == ["doc/a"]
    assert [event["key"] for event in rival_seen] == ["doc/r"]
    acme.close()
    rival.close()


def test_multi_shard_commits_all_reach_one_subscriber():
    deployment = build_desktop_deployment(seed=42, shards=2)
    service = HyperProvService(deployment)
    session = service.session(
        pipeline=PipelineConfig(shards=2, continuous_queries=True)
    )
    seen = []
    session.subscribe({"_prefix": "fleet/"}, callback=seen.append)
    keys = [f"fleet/{i:02d}" for i in range(10)]
    for key in keys:
        session.submit(key, b"x")
    service.drain()
    assert sorted(event["key"] for event in seen) == keys
    assert len(seen) == len(keys)  # exactly once despite two shard streams
    assert {event["shard"] for event in seen} == {0, 1}
