"""Bookmark pagination: chaincode envelopes, the client surface, tenant
namespacing and multi-shard fan-out merging."""

import json

import pytest

from repro.api.service import HyperProvService
from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import ChaincodeStub
from repro.common.hashing import checksum_of
from repro.core.topology import build_desktop_deployment
from repro.ledger.history import HistoryDatabase
from repro.ledger.world_state import WorldState
from repro.middleware.config import PipelineConfig


def record(key):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(key.encode()),
        location=f"ssh://storage/{key}",
        creator="client1",
        organization="org1",
        certificate_fingerprint="fp",
    )


def state_with_keys(*keys):
    state = WorldState()
    for position, key in enumerate(keys):
        state.put(key, record(key).to_json(), (0, position))
    return state


def getbyrange(state, args):
    return HyperProvChaincode().invoke(
        ChaincodeStub(
            tx_id="tx-1",
            channel="ch",
            function="getbyrange",
            args=args,
            world_state=state,
            history=HistoryDatabase(),
            creator=None,
            timestamp=1.0,
        )
    )


FIVE = ["r/0", "r/1", "r/2", "r/3", "r/4"]


# --------------------------------------------------- chaincode getbyrange
def test_two_argument_getbyrange_stays_a_plain_list():
    response = getbyrange(state_with_keys(*FIVE), ["r/", "r/~"])
    rows = json.loads(response.payload)
    assert isinstance(rows, list)
    assert [row["key"] for row in rows] == FIVE


def test_getbyrange_limit_pages_with_bookmark_resume():
    state = state_with_keys(*FIVE)
    first = json.loads(getbyrange(state, ["r/", "r/~", "2"]).payload)
    assert [row["key"] for row in first["records"]] == ["r/0", "r/1"]
    assert first["bookmark"] == "r/1"
    second = json.loads(getbyrange(state, ["r/", "r/~", "2", "r/1"]).payload)
    assert [row["key"] for row in second["records"]] == ["r/2", "r/3"]
    # The last page fills exactly, so one trailing empty page closes the walk.
    third = json.loads(getbyrange(state, ["r/", "r/~", "2", "r/3"]).payload)
    assert [row["key"] for row in third["records"]] == ["r/4"]
    assert third["bookmark"] is None


def test_getbyrange_zero_limit_returns_everything_in_one_envelope():
    envelope = json.loads(getbyrange(state_with_keys(*FIVE), ["r/", "r/~", "0"]).payload)
    assert [row["key"] for row in envelope["records"]] == FIVE
    assert envelope["bookmark"] is None


def test_getbyrange_resumes_past_a_deleted_bookmark_key():
    state = state_with_keys(*FIVE)
    first = json.loads(getbyrange(state, ["r/", "r/~", "2"]).payload)
    state.delete(first["bookmark"], (1, 0))  # r/1 vanishes between pages
    second = json.loads(
        getbyrange(state, ["r/", "r/~", "2", first["bookmark"]]).payload
    )
    assert [row["key"] for row in second["records"]] == ["r/2", "r/3"]


@pytest.mark.parametrize("bad_limit", ["abc", "-1"])
def test_getbyrange_rejects_bad_limits(bad_limit):
    assert not getbyrange(state_with_keys(*FIVE), ["r/", "r/~", bad_limit]).is_ok


# -------------------------------------------------------- client surface
def submit_keys(deployment, keys):
    from repro.api.protocol import StoreRequest

    store = deployment.client.as_store()
    for key in keys:
        store.submit(StoreRequest(key=key, data=key.encode()))
    deployment.drain()


def test_client_query_pagination_walks_every_match(desktop_deployment):
    keys = [f"page/{i}" for i in range(5)]
    submit_keys(desktop_deployment, keys)
    client = desktop_deployment.client
    collected, bookmark, pages = [], None, 0
    while True:
        result = client.query_records(
            {"_prefix": "page/"}, limit=2, bookmark=bookmark
        )
        collected.extend(row["key"] for row in result.payload)
        pages += 1
        if result.bookmark is None:
            break
        bookmark = result.bookmark
    assert collected == keys
    assert pages == 3


def test_client_query_explain_surfaces_the_plan(desktop_deployment):
    submit_keys(desktop_deployment, ["plan/a", "plan/b"])
    result = desktop_deployment.client.query_records(
        {"_prefix": "plan/"}, explain=True
    )
    assert [row["key"] for row in result.payload] == ["plan/a", "plan/b"]
    assert result.plan["access_path"] == "prefix"


def test_client_get_by_range_pagination(desktop_deployment):
    keys = [f"rng/{i}" for i in range(5)]
    submit_keys(desktop_deployment, keys)
    client = desktop_deployment.client
    first = client.get_by_range("rng/", "rng/~", limit=3)
    assert [row["key"] for row in first.payload] == keys[:3]
    assert first.bookmark == "rng/2"
    second = client.get_by_range("rng/", "rng/~", limit=3, bookmark=first.bookmark)
    assert [row["key"] for row in second.payload] == keys[3:]
    assert second.bookmark is None


def test_unpaginated_query_has_no_bookmark(desktop_deployment):
    submit_keys(desktop_deployment, ["solo/a"])
    result = desktop_deployment.client.query_records({"_prefix": "solo/"})
    assert result.bookmark is None
    assert result.plan is None


# ------------------------------------------------------- tenant sessions
def test_tenant_session_pagination_is_tenant_relative(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    acme = service.session(tenant="acme", pipeline=PipelineConfig())
    rival = service.session(tenant="rival", pipeline=PipelineConfig())
    for i in range(4):
        acme.submit(f"doc/{i}", b"x")
    rival.submit("doc/intruder", b"x")
    service.drain()

    first = acme.query({"_prefix": "doc/"}, limit=2)
    assert [view.key for view in first.records] == ["doc/0", "doc/1"]
    assert first.bookmark == "doc/1"  # tenant-relative resume token
    second = acme.query({"_prefix": "doc/"}, limit=2, bookmark=first.bookmark)
    assert [view.key for view in second.records] == ["doc/2", "doc/3"]
    # The other tenant's rows are invisible at every page.
    everything = acme.query({"_prefix": "doc/"})
    assert [view.key for view in everything.records] == [f"doc/{i}" for i in range(4)]
    acme.close()
    rival.close()


def test_tenant_range_bookmark_round_trips_through_the_namespace(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    session = service.session(tenant="acme", pipeline=PipelineConfig())
    for i in range(4):
        session.submit(f"doc/{i}", b"x")
    service.drain()
    client = session.backend.client
    first = client.get_by_range("doc/", "doc/~", limit=2)
    # Keys come back namespaced (the session layer strips them for views),
    # but the bookmark is already tenant-relative — clients feed it back
    # verbatim and the tenancy middleware re-namespaces it on the way down.
    assert [row["key"] for row in first.payload] == [
        "tenant/acme/doc/0", "tenant/acme/doc/1"
    ]
    assert first.bookmark == "doc/1"
    second = client.get_by_range("doc/", "doc/~", limit=2, bookmark=first.bookmark)
    assert [row["key"] for row in second.payload] == [
        "tenant/acme/doc/2", "tenant/acme/doc/3"
    ]
    session.close()


# ------------------------------------------------------- shard fan-out
@pytest.fixture
def sharded():
    return build_desktop_deployment(seed=42, shards=2)


def test_sharded_query_pagination_merges_to_one_global_walk(sharded):
    service = HyperProvService(sharded)
    session = service.session(pipeline=PipelineConfig(shards=2))
    keys = [f"fan/{i:02d}" for i in range(12)]
    for key in keys:
        session.submit(key, b"x")
    session.drain()
    client = sharded.client
    collected, bookmark = [], None
    while True:
        result = client.query_records({"_prefix": "fan/"}, limit=5, bookmark=bookmark)
        page_keys = [row["key"] for row in result.payload]
        assert len(page_keys) <= 5
        collected.extend(page_keys)
        if result.bookmark is None:
            break
        bookmark = result.bookmark
    # Every key exactly once, globally key-ordered across both shards.
    assert collected == keys


def test_sharded_range_pagination(sharded):
    service = HyperProvService(sharded)
    session = service.session(pipeline=PipelineConfig(shards=2))
    keys = [f"srange/{i:02d}" for i in range(9)]
    for key in keys:
        session.submit(key, b"x")
    session.drain()
    collected, bookmark = [], None
    while True:
        result = sharded.client.get_by_range(
            "srange/", "srange/~", limit=4, bookmark=bookmark
        )
        collected.extend(row["key"] for row in result.payload)
        if result.bookmark is None:
            break
        bookmark = result.bookmark
    assert collected == keys


def test_sharded_explain_reports_fan_out(sharded):
    service = HyperProvService(sharded)
    session = service.session(pipeline=PipelineConfig(shards=2))
    for i in range(6):
        session.submit(f"xfan/{i}", b"x")
    session.drain()
    result = sharded.client.query_records({"_prefix": "xfan/"}, explain=True)
    assert result.plan["fan_out"] == 2
    assert len(result.plan["shards"]) == 2
    assert result.plan["access_path"] == "prefix"
