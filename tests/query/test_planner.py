"""Planner unit tests plus chaincode-level access-path pinning.

The ``explain()`` assertions here pin the planner's access-path choices:
a change that silently flips a selector from posting-list intersection to
a scan (or vice versa) fails these tests instead of only moving bench
numbers.
"""

import json

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import ChaincodeStub
from repro.common.hashing import checksum_of
from repro.ledger.history import HistoryDatabase
from repro.ledger.world_state import WorldState
from repro.query.indexes import FieldValueIndex
from repro.query.planner import (
    PATH_INDEX,
    PATH_PREFIX,
    PATH_SCAN,
    build_plan,
    intersect_keys,
)


def record(key, creator="client1", organization="org1", metadata=None):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(key.encode()),
        location=f"ssh://storage/{key}",
        creator=creator,
        organization=organization,
        certificate_fingerprint="fp",
        metadata=metadata or {},
    )


def state_with_records(*records, index=None):
    state = WorldState()
    for position, entry in enumerate(records):
        state.put(entry.key, entry.to_json(), (0, position))
    if index is not None:
        state.attach_secondary_index(index)
    return state


def stub_for(function, args, state):
    return ChaincodeStub(
        tx_id="tx-1",
        channel="ch",
        function=function,
        args=args,
        world_state=state,
        history=HistoryDatabase(),
        creator=None,
        timestamp=1.0,
    )


def run_query(state, selector):
    response = HyperProvChaincode().invoke(
        stub_for("query", [json.dumps(selector)], state)
    )
    assert response.is_ok, response.payload
    return json.loads(response.payload)


# ----------------------------------------------------------- plan choice
def test_no_index_means_scan():
    plan = build_plan({"creator": "x"}, index=None, total_keys=100)
    assert plan.access_path == PATH_SCAN
    assert plan.residual_fields == ("creator",)
    assert plan.estimated_candidates == 100
    assert plan.scan_candidates == 100


def test_prefix_scopes_the_fallback():
    plan = build_plan(
        {"creator": "x"},
        index=None,
        total_keys=100,
        prefix="tenant/a/",
        prefix_keys=7,
    )
    assert plan.access_path == PATH_PREFIX
    assert plan.estimated_candidates == 7
    assert plan.scan_candidates == 7


def test_small_posting_list_wins_and_orders_fields_smallest_first():
    index = FieldValueIndex(["creator", "organization"])
    for position in range(6):
        index.update(
            f"k{position}",
            record(f"k{position}", creator=f"c{position % 3}").to_json(),
        )
    plan = build_plan(
        {"creator": "c0", "organization": "org1"},
        index=index,
        total_keys=6,
    )
    assert plan.access_path == PATH_INDEX
    # creator posting (2 keys) is tighter than organization (6 keys).
    assert plan.indexed_fields == ("creator", "organization")
    assert plan.estimated_candidates == 2
    assert plan.cardinalities == {"creator": 2, "organization": 6}
    assert plan.residual_fields == ()


def test_posting_no_tighter_than_scope_falls_back_and_merges_residual():
    index = FieldValueIndex(["organization"])
    for position in range(4):
        index.update(f"k{position}", record(f"k{position}").to_json())
    plan = build_plan(
        {"organization": "org1", "metadata.run": 3},
        index=index,
        total_keys=4,
    )
    assert plan.access_path == PATH_SCAN
    # The indexed equality folds back into the residual predicate set —
    # correctness never depends on the access path.
    assert set(plan.residual_fields) == {"organization", "metadata.run"}


def test_uncovered_and_unservable_fields_stay_residual():
    index = FieldValueIndex(["creator"])
    index.update("a", record("a", metadata={"tags": ["x"]}).to_json())
    plan = build_plan(
        {"creator": "client1", "dependencies": "raw", "metadata.tags": ["x"]},
        index=index,
        total_keys=10,
    )
    assert plan.access_path == PATH_INDEX
    assert plan.indexed_fields == ("creator",)
    assert set(plan.residual_fields) == {"dependencies", "metadata.tags"}


def test_explain_output_is_pinned():
    index = FieldValueIndex(["creator"])
    index.update("a", record("a").to_json())
    index.update("b", record("b", creator="other").to_json())
    plan = build_plan(
        {"creator": "client1", "metadata.run": 1},
        index=index,
        total_keys=2,
        limit=5,
        bookmark="a",
    )
    assert plan.explain() == {
        "access_path": "index-intersection",
        "estimated_candidates": 1,
        "scan_candidates": 2,
        "residual_fields": ["metadata.run"],
        "indexed_fields": ["creator"],
        "cardinalities": {"creator": 1},
        "limit": 5,
        "bookmark": "a",
    }


# -------------------------------------------------------- intersect_keys
def test_intersect_keys_sorted_prefix_scoped_and_bookmark_cut():
    index = FieldValueIndex(["creator", "organization"])
    for key in ["p/3", "p/1", "q/2", "p/2"]:
        index.update(key, record(key).to_json())
    index.update("p/9", record("p/9", organization="org2").to_json())
    plan = build_plan(
        {"creator": "client1", "organization": "org1"},
        index=index,
        total_keys=50,
        prefix="p/",
        prefix_keys=40,
        bookmark="p/1",
    )
    assert plan.access_path == PATH_INDEX
    keys = intersect_keys(index, plan, {"creator": "client1", "organization": "org1"})
    assert keys == ["p/2", "p/3"]  # sorted, prefix-scoped, strictly after p/1


def test_intersect_keys_empty_posting_short_circuits():
    index = FieldValueIndex(["creator"])
    index.update("a", record("a").to_json())
    plan = build_plan({"creator": "nobody"}, index=index, total_keys=10)
    # An empty posting still "wins" the cost race (0 candidates).
    assert plan.access_path == PATH_INDEX
    assert intersect_keys(index, plan, {"creator": "nobody"}) == []


# ----------------------------------------- chaincode-level path pinning
STATION_RECORDS = (
    record("iot/a", creator="cam-1", metadata={"station": "tromso"}),
    record("iot/b", creator="cam-1", metadata={"station": "alta"}),
    record("iot/c", creator="cam-2", metadata={"station": "tromso"}),
    record("lab/d", creator="cam-1", metadata={"station": "tromso"}),
)


def test_chaincode_explain_pins_index_intersection():
    state = state_with_records(
        *STATION_RECORDS, index=FieldValueIndex(["creator", "metadata.*"])
    )
    envelope = run_query(
        state,
        {"creator": "cam-1", "metadata.station": "tromso", "_explain": True},
    )
    assert [row["key"] for row in envelope["records"]] == ["iot/a", "lab/d"]
    assert envelope["bookmark"] is None
    plan = envelope["plan"]
    assert plan["access_path"] == PATH_INDEX
    # Both postings hold 3 keys; the tie breaks on the field name.
    assert plan["indexed_fields"] == ["creator", "metadata.station"]
    assert plan["residual_fields"] == []


def test_chaincode_explain_pins_scan_without_index():
    state = state_with_records(*STATION_RECORDS)
    envelope = run_query(state, {"creator": "cam-1", "_explain": True})
    assert envelope["plan"]["access_path"] == PATH_SCAN
    assert envelope["plan"]["residual_fields"] == ["creator"]


def test_chaincode_explain_pins_prefix_path():
    state = state_with_records(*STATION_RECORDS)
    envelope = run_query(
        state, {"_prefix": "iot/", "creator": "cam-1", "_explain": True}
    )
    assert envelope["plan"]["access_path"] == PATH_PREFIX
    assert envelope["plan"]["prefix"] == "iot/"
    assert [row["key"] for row in envelope["records"]] == ["iot/a", "iot/b"]


# ------------------------------------------- byte-identical on/off paths
@pytest.mark.parametrize(
    "selector",
    [
        {"creator": "cam-1"},
        {"creator": "cam-1", "metadata.station": "tromso"},
        {"_prefix": "iot/", "metadata.station": "tromso"},
        {"organization": "org1"},
        {"creator": "nobody"},
    ],
)
def test_query_payload_is_byte_identical_with_and_without_index(selector):
    plain = state_with_records(*STATION_RECORDS)
    indexed = state_with_records(
        *STATION_RECORDS, index=FieldValueIndex(["creator", "metadata.*"])
    )
    chaincode = HyperProvChaincode()
    args = [json.dumps(selector)]
    without = chaincode.invoke(stub_for("query", args, plain))
    with_index = HyperProvChaincode().invoke(stub_for("query", args, indexed))
    assert without.payload == with_index.payload


def test_paginated_walk_is_byte_identical_with_and_without_index():
    plain = state_with_records(*STATION_RECORDS)
    indexed = state_with_records(
        *STATION_RECORDS, index=FieldValueIndex(["creator", "metadata.*"])
    )
    selector = {"creator": "cam-1", "_limit": 1}
    bookmark = ""
    pages = 0
    while True:
        request = dict(selector)
        if bookmark:
            request["_bookmark"] = bookmark
        args = [json.dumps(request)]
        without = HyperProvChaincode().invoke(stub_for("query", args, plain))
        with_index = HyperProvChaincode().invoke(stub_for("query", args, indexed))
        assert without.payload == with_index.payload
        envelope = json.loads(without.payload)
        pages += 1
        if not envelope["bookmark"]:
            break
        bookmark = envelope["bookmark"]
    # cam-1 matches three keys → three 1-row pages plus the empty last page.
    assert pages == 4
