"""Tests for the OPM model, the provenance graph and lineage queries."""

import pytest

from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import NotFoundError, ValidationError
from repro.common.hashing import checksum_of
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.model import Agent, Artifact, OpmRelation, ProvProcess, RelationType
from repro.provenance.queries import LineageQueryEngine


def record_for(key, payload, dependencies=(), creator="client1", organization="org1"):
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(payload),
        location=f"ssh://storage/{key}",
        creator=creator,
        organization=organization,
        certificate_fingerprint="fp",
        dependencies=list(dependencies),
        size_bytes=len(payload),
    )


@pytest.fixture
def pipeline_graph():
    """raw-a, raw-b -> merged -> report (a realistic derivation pipeline)."""
    graph = ProvenanceGraph()
    graph.ingest_record(record_for("raw-a", b"a"), tx_id="t1", block_number=0)
    graph.ingest_record(record_for("raw-b", b"b", creator="client2"), tx_id="t2", block_number=0)
    graph.ingest_record(
        record_for("merged", b"ab", dependencies=["raw-a", "raw-b"]), tx_id="t3", block_number=1
    )
    graph.ingest_record(
        record_for("report", b"summary", dependencies=["merged"]), tx_id="t4", block_number=2
    )
    return graph


# ----------------------------------------------------------------------- model
def test_artifact_version_id_is_stable():
    assert Artifact.version_id("k", "a" * 64) == Artifact.version_id("k", "a" * 64)
    assert Artifact.version_id("k", "a" * 64) != Artifact.version_id("k", "b" * 64)


def test_process_and_agent_factories():
    process = ProvProcess.for_transaction("tx-9", "set", timestamp=4.2)
    agent = Agent.for_identity("client1", "org1", "fp")
    assert process.process_id == "process:tx-9"
    assert agent.agent_id == "agent:org1/client1"


def test_relation_describe_mentions_both_ends():
    relation = OpmRelation("a", "b", RelationType.USED)
    assert "a" in relation.describe() and "b" in relation.describe()


# ----------------------------------------------------------------------- graph
def test_ingest_creates_nodes_and_edges(pipeline_graph):
    assert len(pipeline_graph.artifacts()) == 4
    assert len(pipeline_graph.processes()) == 4
    assert len(pipeline_graph.agents()) == 2
    assert pipeline_graph.edge_count > 0
    assert pipeline_graph.is_acyclic()


def test_ingest_rejects_missing_dependency():
    graph = ProvenanceGraph()
    with pytest.raises(ValidationError):
        graph.ingest_record(
            record_for("derived", b"x", dependencies=["never-recorded"]), tx_id="t1"
        )


def test_ingest_rejects_invalid_record():
    graph = ProvenanceGraph()
    bad = record_for("k", b"x")
    bad.checksum = "short"
    with pytest.raises(ValidationError):
        graph.ingest_record(bad, tx_id="t1")


def test_latest_artifact_tracks_newest_version():
    graph = ProvenanceGraph()
    graph.ingest_record(record_for("k", b"v1"), tx_id="t1")
    graph.ingest_record(record_for("k", b"v2"), tx_id="t2")
    assert graph.latest_artifact("k").checksum == checksum_of(b"v2")
    with pytest.raises(NotFoundError):
        graph.latest_artifact("ghost")


def test_relation_queries(pipeline_graph):
    merged = pipeline_graph.latest_artifact("merged")
    generated_by = pipeline_graph.successors(merged.artifact_id, RelationType.WAS_GENERATED_BY)
    assert len(generated_by) == 1
    derived_from = pipeline_graph.successors(merged.artifact_id, RelationType.WAS_DERIVED_FROM)
    assert len(derived_from) == 2


def test_unknown_node_raises(pipeline_graph):
    with pytest.raises(NotFoundError):
        pipeline_graph.node("ghost")
    with pytest.raises(NotFoundError):
        pipeline_graph.add_relation(OpmRelation("ghost", "ghost2", RelationType.USED))


# --------------------------------------------------------------------- queries
def test_ancestors_of_report_cover_whole_pipeline(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    ancestors = engine.ancestors_of("report")
    keys = {a.key for a in ancestors}
    assert keys == {"raw-a", "raw-b", "merged"}


def test_ancestors_respect_max_depth(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    shallow = engine.ancestors_of("report", max_depth=1)
    assert {a.key for a in shallow} == {"merged"}


def test_descendants_of_raw_input(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    descendants = engine.descendants_of("raw-a")
    assert {d.key for d in descendants} == {"merged", "report"}


def test_derivation_path_exists_and_missing(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    path = engine.derivation_path("report", "raw-a")
    assert [a.key for a in path] == ["report", "merged", "raw-a"]
    assert engine.derivation_path("raw-a", "report") == []


def test_lineage_report_contents(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    report = engine.lineage_report("report")
    assert report.ancestor_count == 3
    assert report.descendant_count == 0
    assert report.depth == 2
    assert "agent:org1/client1" in report.contributing_agents
    assert "agent:org1/client2" in report.contributing_agents


def test_version_chain_ordering():
    graph = ProvenanceGraph()
    graph.ingest_record(record_for("k", b"v1"), tx_id="t1")
    record2 = record_for("k", b"v2")
    record2.timestamp = 5.0
    graph.ingest_record(record2, tx_id="t2")
    engine = LineageQueryEngine(graph)
    chain = engine.version_chain("k")
    assert [a.checksum for a in chain] == [checksum_of(b"v1"), checksum_of(b"v2")]
    with pytest.raises(NotFoundError):
        engine.version_chain("ghost")


def test_impact_set_groups_by_key(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    impact = engine.impact_set("raw-a")
    assert set(impact) == {"merged", "report"}


def test_agents_for_key_only_includes_contributors(pipeline_graph):
    engine = LineageQueryEngine(pipeline_graph)
    assert engine.agents_for_key("raw-a") == ["agent:org1/client1"]
