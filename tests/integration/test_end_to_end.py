"""Integration tests across the full stack.

These exercise the same paths the paper's deployment exercises: multi-item
IoT pipelines, ledger agreement across peers, tamper evidence, MVCC under
contention, partition behaviour and recovery of lineage from chain state.
"""

import pytest

from repro.api.protocol import StoreRequest
from repro.common.errors import PartitionError
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment, build_rpi_deployment
from repro.ledger.transaction import TxValidationCode
from repro.provenance.queries import LineageQueryEngine
from repro.workloads.scenarios import IoTPipelineWorkload, PipelineStage


def test_multi_round_pipeline_lineage_and_agreement(desktop_deployment):
    """Three ingestion rounds and two derivation stages: every peer ends with
    the same ledger, and lineage queries see the whole derivation tree."""
    workload = IoTPipelineWorkload(
        desktop_deployment.client, sensor_count=2, camera_count=1,
        image_size_bytes=4 * 1024, seed=3,
    )
    for _ in range(3):
        workload.ingest_round()
        desktop_deployment.drain()
    summary = workload.derive(PipelineStage(name="summary"))
    desktop_deployment.drain()
    report = workload.derive(
        PipelineStage(name="report", reduction_factor=0.1), source_posts=[summary]
    )
    desktop_deployment.drain()

    heights = set(desktop_deployment.fabric.ledger_heights().values())
    assert len(heights) == 1

    lineage = desktop_deployment.client.get_lineage(report.record.key)
    assert lineage.ancestor_count == 10  # 9 raw items + the summary

    states = [peer.state_snapshot() for peer in desktop_deployment.peers]
    assert all(state == states[0] for state in states[1:])


def test_ledger_is_tamper_evident(desktop_deployment):
    """Rewriting a committed transaction on one peer breaks its chain
    verification while honest peers still verify — the core guarantee."""
    client = desktop_deployment.client
    client.as_store().submit(StoreRequest(key="evidence/1", data=b"original data"))
    desktop_deployment.drain()

    victim = desktop_deployment.peers[0]
    block = victim.block_store.block(0)
    position = next(
        i for i, tx in enumerate(block.transactions) if tx.function == "set"
    )
    # Peers share sealed envelopes (zero-copy commit); a malicious peer
    # rewrites via the copy-on-write tamper hook, which only swaps the
    # clone into *its* ledger copy.
    target_tx = victim.tamper(0, position)
    target_tx.args[1] = checksum_of(b"forged data")

    assert not victim.block_store.verify_chain()
    for honest in desktop_deployment.peers[1:]:
        assert honest.block_store.verify_chain()


def test_history_survives_world_state_deletion(desktop_deployment):
    store = desktop_deployment.client.as_store()
    store.submit(StoreRequest(key="ephemeral/1", data=b"short lived"))
    desktop_deployment.drain()
    handle = desktop_deployment.fabric.submit_transaction(
        "hyperprov-client", "hyperprov", "delete", ["ephemeral/1"]
    )
    desktop_deployment.drain()
    assert handle.is_valid
    history = store.history("ephemeral/1")
    assert len(history) == 2
    assert history.entries[-1].deleted is True


def test_partitioned_peer_misses_blocks_and_no_endorsement_majority_fails():
    deployment = build_desktop_deployment(
        batch_config=BatchConfig(max_message_count=1), seed=9
    )
    store = deployment.client.as_store()
    store.submit(StoreRequest(key="pre-partition", data=b"x"))
    deployment.drain()

    # Cut off two of the four peers: the majority (3-of-4) endorsement policy
    # can no longer be satisfied, so new transactions are invalidated.
    client_host = deployment.fabric.client_context("hyperprov-client").host_node
    reachable = {deployment.peers[2].name, deployment.peers[3].name,
                 "orderer", "storage", client_host}
    isolated = [deployment.peers[0].name, deployment.peers[1].name]
    deployment.network.partitions.partition([sorted(reachable), isolated])

    post = store.submit(StoreRequest(key="during-partition", data=b"y"))
    deployment.drain()
    assert post.done
    assert post.handle.validation_code is TxValidationCode.ENDORSEMENT_POLICY_FAILURE

    # Heal the partition: new transactions commit again on the reachable peers.
    deployment.network.partitions.heal()
    recovered = store.submit(StoreRequest(key="after-heal", data=b"z"))
    deployment.drain()
    assert recovered.ok


def test_direct_send_between_partitioned_nodes_raises(desktop_deployment):
    network = desktop_deployment.network
    a, b = desktop_deployment.peers[0].name, desktop_deployment.peers[1].name
    network.partitions.partition([[a], [b]])
    with pytest.raises(PartitionError):
        network.send(a, b, "ping", None, 10)
    network.partitions.heal()


def test_mvcc_contention_many_writers_single_key(desktop_deployment):
    """Ten updates of one key submitted concurrently: exactly one per block
    window wins; the rest are MVCC-invalidated, and history only contains the
    winners (Fabric semantics)."""
    store = desktop_deployment.client.as_store()
    posts = [
        store.submit(
            StoreRequest(key="hot-key", checksum=checksum_of(f"v{i}".encode()), location="loc")
        )
        for i in range(10)
    ]
    desktop_deployment.drain()
    valid = [p for p in posts if p.ok]
    invalid = [p for p in posts if not p.ok]
    assert len(valid) >= 1
    assert len(invalid) >= 1
    assert all(
        p.handle.validation_code is TxValidationCode.MVCC_READ_CONFLICT for p in invalid
    )
    history = store.history("hot-key")
    assert len(history) == len(valid)


def test_provenance_graph_rebuilt_from_chain_matches_submissions(rpi_deployment):
    client = rpi_deployment.client
    store = client.as_store()
    store.submit(StoreRequest(key="iot/raw-1", data=b"r1"))
    store.submit(StoreRequest(key="iot/raw-2", data=b"r2"))
    rpi_deployment.drain()
    store.submit(
        StoreRequest(key="iot/combined", data=b"c", dependencies=("iot/raw-1", "iot/raw-2"))
    )
    rpi_deployment.drain()

    graph = client.build_provenance_graph()
    assert {a.key for a in graph.artifacts()} == {"iot/raw-1", "iot/raw-2", "iot/combined"}
    assert graph.is_acyclic()
    engine = LineageQueryEngine(graph)
    assert {a.key for a in engine.ancestors_of("iot/combined")} == {"iot/raw-1", "iot/raw-2"}


def test_rpi_and_desktop_agree_on_semantics_but_not_speed():
    desktop = build_desktop_deployment(seed=21)
    rpi = build_rpi_deployment(seed=21)
    payload = b"cross-platform item"
    desktop_post = desktop.client.as_store().submit(StoreRequest(key="x", data=payload))
    rpi_post = rpi.client.as_store().submit(StoreRequest(key="x", data=payload))
    desktop.drain()
    rpi.drain()
    assert desktop_post.record.checksum == rpi_post.record.checksum
    assert (
        desktop.client.as_store().get("x").checksum
        == rpi.client.as_store().get("x").checksum
    )
    assert rpi_post.handle.latency_s > desktop_post.handle.latency_s
