"""Resilience-oriented integration tests: gossip dissemination, Raft leader
failover, peer catch-up, and resource accounting across the flow."""

import pytest

from repro.api.protocol import StoreRequest
from repro.bench.resource_usage import run_resource_usage
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.consensus.raft import RaftState
from repro.core.topology import (
    DeploymentSpec,
    build_deployment,
    build_desktop_deployment,
)
from repro.devices.profiles import XEON_E5_1603
from repro.fabric.network import FabricNetworkConfig


# ----------------------------------------------------------------- gossip mode
def test_gossip_dissemination_end_to_end():
    """With org-leader gossip enabled the flow still commits on every peer."""
    deployment = build_desktop_deployment(seed=13)
    deployment.fabric.config.use_gossip = True
    post = deployment.client.as_store().submit(StoreRequest(key="gossip/1", data=b"x"))
    deployment.drain()
    assert post.ok
    assert set(deployment.fabric.ledger_heights().values()) == {1}


def test_multiple_peers_per_org_share_a_gossip_leader():
    """Two peers in the same organization: the leader relays blocks to the
    member, and both end with the same ledger."""
    spec = DeploymentSpec(
        name="two-per-org",
        peer_profiles=[XEON_E5_1603] * 2,
        orderer_profile=XEON_E5_1603,
        storage_profile=XEON_E5_1603,
        client_profile=XEON_E5_1603,
        client_colocated_with=0,
        batch_config=BatchConfig(max_message_count=1),
    )
    deployment = build_deployment(spec)
    deployment.fabric.config.use_gossip = True
    post = deployment.client.as_store().submit(StoreRequest(key="g/1", data=b"x"))
    deployment.drain()
    assert post.ok
    assert set(deployment.fabric.ledger_heights().values()) == {1}


# ------------------------------------------------------------------- catch-up
def test_peer_catches_up_after_missing_multiple_blocks():
    deployment = build_desktop_deployment(
        batch_config=BatchConfig(max_message_count=1), seed=17
    )
    store = deployment.client.as_store()
    client_host = deployment.fabric.client_context("hyperprov-client").host_node
    lagging = deployment.peers[3].name
    connected = sorted(
        {p.name for p in deployment.peers[:3]} | {"orderer", "storage", client_host}
    )
    deployment.network.partitions.partition([connected, [lagging]])

    for index in range(3):
        store.submit(StoreRequest(key=f"catchup/{index}", data=f"v{index}".encode()))
        deployment.drain()

    heights = deployment.fabric.ledger_heights()
    assert heights[lagging] == 0
    assert max(heights.values()) == 3

    deployment.network.partitions.heal()
    store.submit(StoreRequest(key="catchup/after-heal", data=b"x"))
    deployment.drain()
    heights = deployment.fabric.ledger_heights()
    assert len(set(heights.values())) == 1
    # The lagging peer replayed the missed blocks in order and verifies.
    assert deployment.fabric.peer(lagging).block_store.verify_chain()


# -------------------------------------------------------------- raft failover
def test_raft_leader_failover_elects_new_leader():
    deployment = build_desktop_deployment(ordering="raft", seed=19)
    deployment.engine.run(until=1.0)
    orderer = deployment.fabric.orderer
    first_leader = orderer.leader
    assert first_leader is not None

    # Isolate the current leader from the other Raft nodes: its heartbeats
    # stop arriving and a new leader is elected among the remaining nodes.
    others = [node.node_id for node in orderer.nodes if node is not first_leader]
    everyone_else = [n for n in deployment.network.nodes if n != first_leader.node_id]
    deployment.network.partitions.partition([everyone_else, [first_leader.node_id]])
    deployment.engine.run(until=3.0)

    new_leaders = [
        node for node in orderer.nodes
        if node.is_leader and node.node_id in others
    ]
    assert len(new_leaders) == 1
    assert new_leaders[0].current_term > first_leader.current_term

    # Ordering keeps working through the new leader once the old one is cut off.
    deployment.network.partitions.heal()
    post = deployment.client.as_store().submit(StoreRequest(key="raft/failover", data=b"x"))
    deployment.drain()
    assert post.ok


def test_raft_minority_partition_cannot_commit():
    deployment = build_desktop_deployment(ordering="raft", seed=23)
    deployment.engine.run(until=1.0)
    orderer = deployment.fabric.orderer
    leader = orderer.leader
    assert leader is not None
    # Cut the leader off together with nothing else: it keeps believing it is
    # leader for a while but cannot commit new entries without a majority.
    everyone_else = [n for n in deployment.network.nodes if n != leader.node_id]
    deployment.network.partitions.partition([everyone_else, [leader.node_id]])
    log_before = len(leader.log)
    leader.propose({"tx_ids": ["orphan"]})
    deployment.engine.run(until=2.0)
    assert len(leader.log) == log_before + 1
    assert leader.commit_index < len(leader.log) - 1
    # The rest of the cluster moved on to a higher term.
    assert any(
        node.current_term > leader.current_term
        for node in orderer.nodes
        if node is not leader and node.state is not RaftState.CANDIDATE
    ) or any(node.is_leader for node in orderer.nodes if node is not leader)


# ------------------------------------------------------------------ accounting
def test_network_accounts_bytes_for_protocol_transfers(desktop_deployment):
    client_host = desktop_deployment.fabric.client_context("hyperprov-client").host_node
    desktop_deployment.client.as_store().submit(
        StoreRequest(key="acct/1", data=b"x" * 100_000)
    )
    desktop_deployment.drain()
    assert desktop_deployment.network.bytes_sent_by(client_host) > 100_000
    assert desktop_deployment.network.bytes_sent_by("orderer") > 0


def test_resource_usage_report_structure():
    reports = run_resource_usage(payload_bytes=32 * 1024, requests=10)
    assert set(reports) == {"desktop", "rpi"}
    for report in reports.values():
        roles = {usage.role for usage in report.nodes}
        assert {"peer", "peer+client", "orderer", "storage"} <= roles
        assert report.throughput_tps > 0
        rendered = report.to_table().render()
        assert "cpu util" in rendered
        with pytest.raises(KeyError):
            report.node_usage("ghost")


def test_checksum_mismatch_error_fields():
    from repro.common.errors import ChecksumMismatchError

    error = ChecksumMismatchError(checksum_of(b"a"), checksum_of(b"b"))
    assert error.expected != error.actual
    assert "checksum mismatch" in str(error)
