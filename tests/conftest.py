"""Shared fixtures for the HyperProv test suite."""

from __future__ import annotations

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment, build_rpi_deployment
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.fabric.channel import Channel
from repro.fabric.peer import Peer
from repro.membership.identity import Organization
from repro.membership.msp import MSP
from repro.membership.policies import majority_of
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh discrete-event engine."""
    return SimulationEngine()


@pytest.fixture
def rng() -> DeterministicRandom:
    """A deterministic random stream with a fixed seed."""
    return DeterministicRandom(42)


@pytest.fixture
def desktop_device() -> DeviceModel:
    """A Xeon-class device model."""
    return DeviceModel("xeon", XEON_E5_1603, rng=DeterministicRandom(1))


@pytest.fixture
def rpi_device() -> DeviceModel:
    """A Raspberry Pi 3B+ device model."""
    return DeviceModel("rpi", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(2))


@pytest.fixture
def organizations() -> list:
    """Four organizations, one per peer, like the paper's testbeds."""
    return [Organization(f"org{i + 1}") for i in range(4)]


@pytest.fixture
def msp(organizations) -> MSP:
    return MSP(organizations)


@pytest.fixture
def channel(msp) -> Channel:
    return Channel(name="test-channel", msp=msp, batch_config=BatchConfig())


@pytest.fixture
def single_peer(channel, organizations) -> Peer:
    """One peer joined to the test channel with HyperProv instantiated."""
    org = organizations[0]
    identity = org.enroll("peer0", role="peer")
    device = DeviceModel("peer0-device", XEON_E5_1603, rng=DeterministicRandom(3))
    peer = Peer(name="peer0.org1", identity=identity, device=device, channel=channel)
    channel.instantiate_chaincode(
        HyperProvChaincode(), endorsement_policy=majority_of(["org1"])
    )
    return peer


@pytest.fixture
def desktop_deployment():
    """The paper's desktop setup (4 x86-64 peers, Solo orderer, SSHFS storage)."""
    return build_desktop_deployment(seed=42)


@pytest.fixture
def rpi_deployment():
    """The paper's Raspberry Pi setup."""
    return build_rpi_deployment(seed=42)
