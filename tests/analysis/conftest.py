"""Fixtures for the static-analyzer test suite.

``badrepo`` is a miniature repo tree (``src/repro/...`` plus
``docs/architecture.md``) where every rule family has known-bad snippets
at known lines; the tests assert exact ``(rule, line)`` pairs so a
checker that drifts — firing on the wrong node, or going silent — fails
loudly.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Tuple

import pytest

from repro.analysis.core import AnalysisContext, Finding

FIXTURES = Path(__file__).resolve().parent / "fixtures"
BADREPO = FIXTURES / "badrepo"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def bad_context() -> AnalysisContext:
    return AnalysisContext.load(BADREPO)


def pairs(
    findings: List[Finding], path_suffix: Optional[str] = None
) -> List[Tuple[str, int]]:
    """Sorted ``(rule, line)`` pairs, optionally narrowed to one file."""
    return sorted(
        (f.rule, f.line)
        for f in findings
        if path_suffix is None or f.path.endswith(path_suffix)
    )
