"""CLI modes: report/check/update-baseline/rules/format, plus the
end-to-end fixture finding set."""

from __future__ import annotations

import json
import shutil

from repro.analysis.cli import main, run_analysis

from .conftest import BADREPO

#: Every finding the fixture corpus must produce, as (rule, path-suffix,
#: line).  This is the single source of truth the CLI tests check against.
EXPECTED = [
    ("A201", "common/reachup.py", 5),
    ("A202", "network/cyc_b.py", 1),
    ("A203", "ledger/benchhook.py", 3),
    ("C301", "middleware/config.py", 11),
    ("C302", "middleware/config.py", 10),
    ("C303", "middleware/stages.py", 23),
    ("D101", "simx/wallclock.py", 10),
    ("D101", "simx/wallclock.py", 11),
    ("D101", "simx/wallclock.py", 12),
    ("D102", "simx/randomness.py", 9),
    ("D102", "simx/randomness.py", 10),
    ("D102", "simx/randomness.py", 11),
    ("D102", "simx/randomness.py", 12),
    ("D103", "simx/ordering.py", 6),
    ("D103", "simx/ordering.py", 8),
    ("D103", "simx/ordering.py", 13),
    ("D103", "simx/ordering.py", 14),
    ("D103", "simx/ordering.py", 19),
    ("D103", "simx/ordering.py", 23),
    ("D104", "simx/wallclock.py", 21),
    ("D104", "simx/wallclock.py", 22),
    ("D104", "simx/wallclock.py", 23),
    ("T401", "common/shared.py", 6),
    ("T401", "common/shared.py", 24),
    ("T402", "common/busimpl.py", 13),
    ("T402", "devices/reaches.py", 5),
]


def test_full_fixture_finding_set():
    findings = run_analysis(BADREPO)
    got = sorted(
        (f.rule, "/".join(f.path.split("/")[-2:]), f.line) for f in findings
    )
    assert got == sorted(EXPECTED)


def test_default_mode_reports_and_exits_zero(tmp_path, capsys):
    code = main(
        ["--root", str(BADREPO), "--baseline", str(tmp_path / "b.json")]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert f"{len(EXPECTED)} finding(s)" in captured.err
    assert "D101" in captured.out


def test_check_without_baseline_fails(tmp_path, capsys):
    code = main(
        [
            "--root",
            str(BADREPO),
            "--baseline",
            str(tmp_path / "absent.json"),
            "--check",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "FAIL" in captured.err


def test_update_baseline_then_check_passes(tmp_path, capsys):
    baseline = tmp_path / "b.json"
    assert main(
        ["--root", str(BADREPO), "--baseline", str(baseline), "--update-baseline"]
    ) == 0
    assert baseline.exists()
    code = main(["--root", str(BADREPO), "--baseline", str(baseline), "--check"])
    captured = capsys.readouterr()
    assert code == 0
    assert "OK" in captured.err


def test_check_fails_on_new_finding_only(tmp_path, capsys):
    root = tmp_path / "badrepo"
    shutil.copytree(BADREPO, root)
    baseline = root / "analysis-baseline.json"
    main(["--root", str(root), "--baseline", str(baseline), "--update-baseline"])
    capsys.readouterr()

    # A brand-new violation in a previously-clean module must trip the gate.
    (root / "src" / "repro" / "simx" / "fresh.py").write_text(
        "import time\n\n\ndef oops():\n    return time.time()\n",
        encoding="utf-8",
    )
    code = main(["--root", str(root), "--baseline", str(baseline), "--check"])
    captured = capsys.readouterr()
    assert code == 1
    assert "fresh.py" in captured.out
    assert "FAIL: 1 new finding" in captured.err


def test_check_notes_stale_entries(tmp_path, capsys):
    root = tmp_path / "badrepo"
    shutil.copytree(BADREPO, root)
    baseline = root / "analysis-baseline.json"
    main(["--root", str(root), "--baseline", str(baseline), "--update-baseline"])
    capsys.readouterr()

    # Fixing a violation leaves its baseline entry stale, not failing.
    (root / "src" / "repro" / "simx" / "randomness.py").unlink()
    code = main(["--root", str(root), "--baseline", str(baseline), "--check"])
    captured = capsys.readouterr()
    assert code == 0
    assert "stale" in captured.err


def test_rules_prefix_filter():
    only_d = run_analysis(BADREPO, rules=["D"])
    assert only_d and all(f.rule.startswith("D") for f in only_d)
    exact = run_analysis(BADREPO, rules=["A201", "C303"])
    assert sorted({f.rule for f in exact}) == ["A201", "C303"]


def test_format_json(tmp_path, capsys):
    code = main(
        [
            "--root",
            str(BADREPO),
            "--baseline",
            str(tmp_path / "b.json"),
            "--format",
            "json",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    payload = json.loads(captured.out)
    assert len(payload) == len(EXPECTED)
    assert {"rule", "path", "line", "symbol", "message", "hint"} <= set(
        payload[0]
    )


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "D101",
        "D102",
        "D103",
        "D104",
        "A201",
        "A202",
        "A203",
        "C301",
        "C302",
        "C303",
        "T401",
        "T402",
    ):
        assert rule in out
