"""Baseline fingerprinting: load/dump round-trip, budgets, staleness."""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.core import Finding


def _finding(rule="D101", path="src/repro/x.py", line=10, symbol="f"):
    return Finding(rule=rule, path=path, line=line, message="m", symbol=symbol)


def test_round_trip(tmp_path):
    baseline = Baseline.from_findings([_finding(), _finding(line=20)])
    target = tmp_path / "analysis-baseline.json"
    baseline.dump(target)
    loaded = Baseline.load(target)
    # Two findings with the same (rule, path, symbol) collapse to count 2.
    assert loaded.suppressions == {("D101", "src/repro/x.py", "f"): 2}


def test_missing_file_loads_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").suppressions == {}


def test_new_findings_survive_line_drift():
    baseline = Baseline.from_findings([_finding(line=10)])
    # Same rule/path/symbol at a different line: still suppressed.
    assert baseline.new_findings([_finding(line=99)]) == []


def test_second_violation_in_same_symbol_is_new():
    baseline = Baseline.from_findings([_finding(line=10)])
    fresh = baseline.new_findings([_finding(line=10), _finding(line=11)])
    assert [f.line for f in fresh] == [11]


def test_different_symbol_is_new():
    baseline = Baseline.from_findings([_finding(symbol="f")])
    fresh = baseline.new_findings([_finding(symbol="g")])
    assert [f.symbol for f in fresh] == ["g"]


def test_new_findings_deterministic_order():
    baseline = Baseline()
    fresh = baseline.new_findings(
        [
            _finding(path="src/repro/b.py", line=5),
            _finding(path="src/repro/a.py", line=9),
            _finding(path="src/repro/a.py", line=2),
        ]
    )
    assert [(f.path, f.line) for f in fresh] == [
        ("src/repro/a.py", 2),
        ("src/repro/a.py", 9),
        ("src/repro/b.py", 5),
    ]


def test_stale_entries():
    baseline = Baseline.from_findings([_finding(), _finding(symbol="gone")])
    stale = baseline.stale_entries([_finding()])
    assert stale == [("D101", "src/repro/x.py", "gone")]


def test_partial_count_is_stale():
    baseline = Baseline.from_findings([_finding(line=10), _finding(line=11)])
    # Only one of the two baselined occurrences still fires.
    stale = baseline.stale_entries([_finding(line=10)])
    assert stale == [("D101", "src/repro/x.py", "f")]
