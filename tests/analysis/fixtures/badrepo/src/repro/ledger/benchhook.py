"""A203 fixture: simulation code importing the wall-clock bench harness."""

import repro.bench.runner  # line 3: A203 (bench is a leaf)


def measure():
    return repro.bench.runner


def deferred_ok():
    # Function-level imports are the sanctioned cycle-breaker and are
    # invisible to the layering checker.
    from repro.middleware.pipeline import Pipeline

    return Pipeline
