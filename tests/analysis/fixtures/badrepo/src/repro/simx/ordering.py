"""D103 fixture: hash-order leaks into order-sensitive output."""


def set_iteration(items):
    names = {item.name for item in items}
    for name in names:  # line 6: D103 (loop over a set)
        print(name)
    return [n for n in names]  # line 8: D103 (comprehension over a set)


def materialise(items):
    pending = set(items)
    ordered = list(pending)  # line 13: D103 (list() over a set)
    joined = ",".join(pending)  # line 14: D103 (join over a set)
    return ordered, joined


def address_order(rows):
    return sorted(rows, key=id)  # line 19: D103 (orders by address)


def salted(value):
    return hash(value)  # line 23: D103 (PYTHONHASHSEED-salted)


class Wrapper:
    def __init__(self, inner):
        self.inner = inner

    def __hash__(self):
        return hash(self.inner)  # fine: delegation inside __hash__


def sorted_is_fine(items):
    names = {item.name for item in items}
    return sorted(names)
