"""D101/D104 fixture: wall-clock and host-environment reads."""

import os
import platform
import time
from datetime import datetime


def stamp():
    started = time.time()  # line 10: D101
    mono = time.monotonic()  # line 11: D101
    now = datetime.now()  # line 12: D101
    return started, mono, now


def allowed_stamp():
    return time.perf_counter()  # repro: allow-wallclock


def host_facts():
    home = os.environ["HOME"]  # line 21: D104
    system = platform.system()  # line 22: D104
    cores = os.cpu_count()  # line 23: D104
    return home, system, cores
