"""D102 fixture: process-global randomness vs the seeded construction."""

import os
import random
import uuid


def unseeded_draws():
    jitter = random.random()  # line 9: D102
    rng = random.Random()  # line 10: D102 (zero-arg: OS entropy)
    token = uuid.uuid4()  # line 11: D102
    raw = os.urandom(8)  # line 12: D102
    return jitter, rng, token, raw


def seeded_ok(seed):
    # The sanctioned construction: a seeded stream is deterministic.
    return random.Random(seed).random()
