"""C303 fixture: middlewares that do and do not forward the chain."""

from repro.middleware.config import PipelineConfig


class Middleware:
    def handle(self, ctx, call_next):
        return call_next(ctx)


class BatchingMiddleware(Middleware):
    def __init__(self, config: PipelineConfig):
        self.limit = config.batch_size
        self.window = config.window_ms

    def handle(self, ctx, call_next):
        # Storing call_next for a deferred flush counts as forwarding.
        self.flush = call_next
        return None


class SwallowMiddleware(Middleware):
    def handle(self, ctx, call_next):  # line 23: C303
        return {"status": "dropped"}


class AuditSink(Middleware):  # repro: terminal-middleware
    def handle(self, ctx, call_next):
        return {"status": "recorded"}
