"""C301/C302 fixture: the ablation-surface dataclass."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass
class PipelineConfig:
    batch_size: int = 8  # consumed + documented: clean
    window_ms: float = 50.0  # line 10: consumed but undocumented -> C302
    dead_knob: bool = False  # line 11: documented but unconsumed -> C301
    SCHEMA_VERSION: ClassVar[int] = 1  # ClassVar: not a knob
