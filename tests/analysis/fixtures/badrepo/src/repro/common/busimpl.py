"""T402 fixture: EventBus handler-list discipline."""


class EventBus:
    def __init__(self):
        self._handlers = {}
        self._dirty = set()

    def subscribe(self, topic, fn):
        self._handlers.setdefault(topic, []).append(fn)

    def unsubscribe(self, topic, fn):
        self._handlers[topic].remove(fn)  # line 13: T402

    def publish(self, topic, payload):
        for fn in self._handlers.get(topic, []):
            fn(payload)

    def _compact_topic(self, topic):
        self._handlers[topic] = [f for f in self._handlers[topic] if f]
