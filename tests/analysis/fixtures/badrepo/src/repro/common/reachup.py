"""A201 fixture: `common` reaching up into `middleware`."""

from typing import TYPE_CHECKING

from repro.middleware.pipeline import Pipeline  # line 5: A201

if TYPE_CHECKING:
    from repro.middleware.config import PipelineConfig  # typing-only: no edge


def build(config: "PipelineConfig") -> "Pipeline":
    return Pipeline(config)
