"""T401 fixture: opt-in thread-shared classes."""

import threading


class Unlocked:  # repro: thread-shared    (line 6: T401 — no lock at all)
    def __init__(self):
        self.items = []

    def add_item(self, item):
        self.items.append(item)


class PartiallyLocked:  # repro: thread-shared
    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value

    def evict(self, key):
        self._entries.pop(key, None)  # line 24: T401 — outside the lock


class SingleThreaded:
    # No pragma: the checker leaves ordinary classes alone.
    def __init__(self):
        self.items = []

    def add_item(self, item):
        self.items.append(item)
