"""T402 fixture: reaching into a bus's private handler list."""


def detach_all(bus, topic):
    bus._handlers.pop(topic)  # line 5: T402 (external reach-in)


def harmless(registry, topic):
    registry._handlers.pop(topic)  # not bus-named: left alone
