"""A202 fixture, half one: top-level import of cyc_b."""

from repro.network.cyc_b import beta


def alpha():
    return beta
