"""A202 fixture, half two: top-level import back into cyc_a."""

import repro.network.cyc_a


def beta():
    return repro.network.cyc_a
