"""Rules C301–C303 against the fixture corpus."""

from __future__ import annotations

from repro.analysis.contracts import check_contracts

from .conftest import pairs


def test_config_knob_findings_exact(bad_context):
    findings = check_contracts(bad_context)
    assert pairs(findings, "middleware/config.py") == [
        ("C301", 11),  # dead_knob: documented, consumed nowhere
        ("C302", 10),  # window_ms: consumed, missing from the docs table
    ]


def test_consumed_documented_knob_is_clean(bad_context):
    findings = check_contracts(bad_context)
    # batch_size (line 9) is read by BatchingMiddleware and documented.
    assert all(
        f.line != 9 for f in findings if f.path.endswith("middleware/config.py")
    )


def test_classvar_is_not_a_knob(bad_context):
    findings = check_contracts(bad_context)
    assert all(
        "SCHEMA_VERSION" not in f.message
        for f in findings
        if f.path.endswith("middleware/config.py")
    )


def test_finding_messages_name_the_knob(bad_context):
    findings = check_contracts(bad_context)
    by_line = {
        f.line: f for f in findings if f.path.endswith("middleware/config.py")
    }
    assert "window_ms" in by_line[10].message
    assert "dead_knob" in by_line[11].message


def test_swallowing_middleware_fires_c303(bad_context):
    findings = check_contracts(bad_context)
    assert pairs(findings, "middleware/stages.py") == [("C303", 23)]
    finding = next(
        f for f in findings if f.path.endswith("middleware/stages.py")
    )
    assert "SwallowMiddleware" in finding.message
    assert finding.symbol == "SwallowMiddleware.handle"


def test_storing_call_next_counts_as_forwarding(bad_context):
    # BatchingMiddleware.handle (line 16) stores call_next for a deferred
    # flush and must not fire.
    findings = check_contracts(bad_context)
    assert all(
        "BatchingMiddleware" not in f.message
        for f in findings
        if f.rule == "C303"
    )


def test_terminal_pragma_suppresses_c303(bad_context):
    findings = check_contracts(bad_context)
    assert all(
        "AuditSink" not in f.message for f in findings if f.rule == "C303"
    )
