"""Rules A201–A203 against the fixture corpus, plus DAG sanity."""

from __future__ import annotations

from repro.analysis.layering import (
    ALLOWED_EDGES,
    RESTRICTED_IMPORTERS,
    check_layering,
)

from .conftest import pairs


def test_undeclared_edge_fires_a201(bad_context):
    findings = check_layering(bad_context)
    assert pairs(findings, "common/reachup.py") == [("A201", 5)]
    finding = next(f for f in findings if f.path.endswith("common/reachup.py"))
    assert "`common` -> `middleware`" in finding.message.replace("→", "->")


def test_type_checking_imports_carry_no_edge(bad_context):
    # reachup.py also imports middleware inside `if TYPE_CHECKING:` (line 8);
    # only the runtime import on line 5 may fire.
    findings = [
        f
        for f in check_layering(bad_context)
        if f.path.endswith("common/reachup.py")
    ]
    assert [f.line for f in findings] == [5]


def test_restricted_package_fires_a203_not_a201(bad_context):
    findings = check_layering(bad_context)
    assert pairs(findings, "ledger/benchhook.py") == [("A203", 3)]
    finding = next(f for f in findings if f.path.endswith("ledger/benchhook.py"))
    assert "`bench`" in finding.message


def test_function_level_imports_are_invisible(bad_context):
    # benchhook.deferred_ok imports middleware inside the function body —
    # the sanctioned cycle-breaker produces no finding beyond line 3.
    findings = [
        f
        for f in check_layering(bad_context)
        if f.path.endswith("ledger/benchhook.py")
    ]
    assert [f.line for f in findings] == [3]


def test_module_cycle_fires_a202_once(bad_context):
    findings = [
        f for f in check_layering(bad_context) if f.rule == "A202"
    ]
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "src/repro/network/cyc_b.py"
    assert "repro.network.cyc_a" in finding.message
    assert "repro.network.cyc_b" in finding.message


def test_declared_package_dag_is_acyclic():
    """The declared architecture itself must be a DAG (modulo the one
    deliberate middleware<->fabric band)."""
    band = {frozenset({"middleware", "fabric"})}
    color = {}

    def visit(pkg, stack):
        color[pkg] = 1
        for dep in sorted(ALLOWED_EDGES.get(pkg, ())):
            if frozenset({pkg, dep}) in band:
                continue
            state = color.get(dep, 0)
            if state == 1:
                raise AssertionError(
                    "cycle in ALLOWED_EDGES: " + " -> ".join(stack + [dep])
                )
            if state == 0:
                visit(dep, stack + [dep])
        color[pkg] = 2

    for pkg in sorted(ALLOWED_EDGES):
        if color.get(pkg, 0) == 0:
            visit(pkg, [pkg])


def test_restricted_importers_are_subsets_of_declared_edges():
    for target, importers in RESTRICTED_IMPORTERS.items():
        for importer in importers:
            assert target in ALLOWED_EDGES.get(importer, frozenset()), (
                f"{importer} is allowed to import {target} by "
                "RESTRICTED_IMPORTERS but lacks the DAG edge"
            )
