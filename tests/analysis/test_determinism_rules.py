"""Rules D101–D104 against the fixture corpus: exact ids and lines."""

from __future__ import annotations

from repro.analysis.core import AnalysisContext
from repro.analysis.determinism import check_determinism

from .conftest import pairs


def test_wallclock_and_env_exact_lines(bad_context):
    findings = check_determinism(bad_context)
    assert pairs(findings, "simx/wallclock.py") == [
        ("D101", 10),  # time.time()
        ("D101", 11),  # time.monotonic()
        ("D101", 12),  # datetime.now() via `from datetime import datetime`
        ("D104", 21),  # os.environ[...]
        ("D104", 22),  # platform.system()
        ("D104", 23),  # os.cpu_count()
    ]


def test_allow_wallclock_pragma_suppresses(bad_context):
    findings = check_determinism(bad_context)
    # Line 17 is time.perf_counter() under `# repro: allow-wallclock`.
    assert all(
        f.line != 17 for f in findings if f.path.endswith("simx/wallclock.py")
    )


def test_unseeded_randomness_exact_lines(bad_context):
    findings = check_determinism(bad_context)
    assert pairs(findings, "simx/randomness.py") == [
        ("D102", 9),  # random.random()
        ("D102", 10),  # zero-arg random.Random()
        ("D102", 11),  # uuid.uuid4()
        ("D102", 12),  # os.urandom()
    ]
    # random.Random(seed) on line 18 is the sanctioned construction.
    assert all(
        f.line != 18 for f in findings if f.path.endswith("simx/randomness.py")
    )


def test_ordering_exact_lines(bad_context):
    findings = check_determinism(bad_context)
    assert pairs(findings, "simx/ordering.py") == [
        ("D103", 6),  # for over a set (via one-level flow tracking)
        ("D103", 8),  # comprehension over a set
        ("D103", 13),  # list(a_set)
        ("D103", 14),  # ",".join(a_set)
        ("D103", 19),  # sorted(..., key=id)
        ("D103", 23),  # builtin hash() outside __hash__
    ]
    # hash() inside __hash__ (line 31) and sorted(a_set) (line 36) are fine.
    lines = {f.line for f in findings if f.path.endswith("simx/ordering.py")}
    assert 31 not in lines and 36 not in lines


def test_findings_carry_symbol_and_hint(bad_context):
    findings = check_determinism(bad_context)
    first = next(
        f
        for f in findings
        if f.path.endswith("simx/wallclock.py") and f.line == 10
    )
    assert first.symbol == "stamp"
    assert "allow-wallclock" in first.hint
    assert first.render().startswith(
        "src/repro/simx/wallclock.py:10: D101 [stamp]"
    )
    assert first.fingerprint == ("D101", "src/repro/simx/wallclock.py", "stamp")


def test_bench_paths_exempt_from_wallclock_but_not_randomness(tmp_path):
    bench = tmp_path / "src" / "repro" / "bench"
    bench.mkdir(parents=True)
    (bench / "timing.py").write_text(
        "import random\n"
        "import time\n"
        "\n"
        "\n"
        "def measure():\n"
        "    start = time.perf_counter()\n"  # D101-exempt path
        "    jitter = random.random()\n"  # D102 applies everywhere
        "    return start, jitter\n",
        encoding="utf-8",
    )
    context = AnalysisContext.load(tmp_path)
    assert pairs(check_determinism(context)) == [("D102", 7)]


def test_pragma_on_line_above_also_suppresses(tmp_path):
    module = tmp_path / "src" / "repro" / "simulation"
    module.mkdir(parents=True)
    (module / "probe.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def probe():\n"
        "    # repro: allow-wallclock\n"
        "    return time.monotonic()\n",
        encoding="utf-8",
    )
    context = AnalysisContext.load(tmp_path)
    assert check_determinism(context) == []
