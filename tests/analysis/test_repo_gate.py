"""The gate against the real tree: the repo must analyze clean, the
committed baseline must stay empty, and an injected wall-clock read into
a copy of a core module must trip the gate (the analyzer's smoke test
against silent no-op regression)."""

from __future__ import annotations

import ast
import importlib.util
import json
import shutil
import subprocess
import sys

import pytest

from repro.analysis.cli import main, run_analysis

from .conftest import REPO_ROOT


def test_repo_tree_analyzes_clean():
    assert run_analysis(REPO_ROOT) == []


def test_committed_baseline_is_empty():
    payload = json.loads(
        (REPO_ROOT / "analysis-baseline.json").read_text(encoding="utf-8")
    )
    assert payload["suppressions"] == []
    # In particular: determinism findings never become baseline debt.
    assert not [
        e
        for e in payload["suppressions"]
        if e["rule"].startswith("D")
    ]


def test_check_gate_passes_on_repo(capsys):
    assert main(["--root", str(REPO_ROOT), "--check"]) == 0
    assert "OK" in capsys.readouterr().err


def _copy_core_module(tmp_path):
    target = tmp_path / "src" / "repro" / "simulation"
    target.mkdir(parents=True)
    shutil.copy(
        REPO_ROOT / "src" / "repro" / "simulation" / "engine.py",
        target / "engine.py",
    )
    return target / "engine.py"


def test_clean_core_module_copy_passes(tmp_path):
    _copy_core_module(tmp_path)
    code = main(
        [
            "--root",
            str(tmp_path),
            "--baseline",
            str(tmp_path / "analysis-baseline.json"),
            "--check",
        ]
    )
    assert code == 0


def test_gate_trips_on_injected_wallclock(tmp_path, capsys):
    engine = _copy_core_module(tmp_path)
    with engine.open("a", encoding="utf-8") as handle:
        handle.write(
            "\n\ndef _injected_leak():\n"
            "    import time\n\n"
            "    return time.time()\n"
        )
    code = main(
        [
            "--root",
            str(tmp_path),
            "--baseline",
            str(tmp_path / "analysis-baseline.json"),
            "--check",
        ]
    )
    captured = capsys.readouterr()
    assert code == 1
    assert "D101" in captured.out
    assert "_injected_leak" in captured.out


def test_parallel_has_no_toplevel_workloads_import():
    """Regression: simulation/parallel.py defers its workloads imports
    (TYPE_CHECKING + function level) to respect simulation -> common."""
    source = (
        REPO_ROOT / "src" / "repro" / "simulation" / "parallel.py"
    ).read_text(encoding="utf-8")
    tree = ast.parse(source)
    for node in tree.body:
        if isinstance(node, ast.ImportFrom):
            assert not (node.module or "").startswith("repro.workloads")
        elif isinstance(node, ast.Import):
            for alias in node.names:
                assert not alias.name.startswith("repro.workloads")


def test_parallel_wallclock_goes_through_helper():
    """Regression: the only host-clock read is the single audited
    `_wall_clock()` helper carrying the allow-wallclock pragma."""
    source = (
        REPO_ROOT / "src" / "repro" / "simulation" / "parallel.py"
    ).read_text(encoding="utf-8")
    assert source.count("time.perf_counter()") == 1
    assert "# repro: allow-wallclock" in source


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_mypy_strict_scope_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
