"""Rules T401–T402 against the fixture corpus."""

from __future__ import annotations

from repro.analysis.concurrency import check_concurrency

from .conftest import pairs


def test_thread_shared_findings_exact(bad_context):
    findings = check_concurrency(bad_context)
    assert pairs(findings, "common/shared.py") == [
        ("T401", 6),  # Unlocked: thread-shared with no lock at all
        ("T401", 24),  # PartiallyLocked.evict mutates outside the lock
    ]


def test_locked_mutation_is_clean(bad_context):
    # PartiallyLocked.put mutates inside `with self._lock:` (line 21).
    findings = check_concurrency(bad_context)
    assert all(
        f.line != 21 for f in findings if f.path.endswith("common/shared.py")
    )


def test_unmarked_class_is_ignored(bad_context):
    findings = check_concurrency(bad_context)
    assert all(
        "SingleThreaded" not in f.message for f in findings
    )


def test_eventbus_mutation_outside_safe_api(bad_context):
    findings = check_concurrency(bad_context)
    assert pairs(findings, "common/busimpl.py") == [("T402", 13)]
    finding = next(f for f in findings if f.path.endswith("common/busimpl.py"))
    assert "unsubscribe" in finding.message


def test_external_bus_reach_in(bad_context):
    findings = check_concurrency(bad_context)
    assert pairs(findings, "devices/reaches.py") == [("T402", 5)]
    # `registry._handlers.pop(...)` (line 9) is not bus-named: ignored.
    assert all(
        f.line != 9 for f in findings if f.path.endswith("devices/reaches.py")
    )


def test_safe_eventbus_methods_are_clean(bad_context):
    # subscribe (line 10), publish iteration (line 16), and the compactor
    # (line 20) must not fire.
    findings = [
        f
        for f in check_concurrency(bad_context)
        if f.path.endswith("common/busimpl.py")
    ]
    assert [f.line for f in findings] == [13]
