"""Tests for the power model and the simulated power meter."""

import pytest

from repro.common.errors import ConfigurationError
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.energy.meter import PowerMeter
from repro.energy.power import PowerModel
from repro.simulation.randomness import DeterministicRandom


@pytest.fixture
def rpi_device():
    return DeviceModel("rpi", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(1))


def test_idle_power_equals_baseline(rpi_device):
    model = PowerModel(rpi_device)
    sample = model.power_over((0.0, 10.0))
    assert sample.watts == pytest.approx(model.baseline_watts())
    assert sample.cpu_utilization == 0.0


def test_hlf_baseline_adds_small_constant():
    with_hlf = DeviceModel("a", RASPBERRY_PI_3B_PLUS, hlf_running=True)
    without_hlf = DeviceModel("b", RASPBERRY_PI_3B_PLUS, hlf_running=False)
    delta = PowerModel(with_hlf).baseline_watts() - PowerModel(without_hlf).baseline_watts()
    assert delta == pytest.approx(RASPBERRY_PI_3B_PLUS.hlf_baseline_power_w)
    # The paper's observation: HLF idle draw is barely above OS idle.
    assert delta < 0.2


def test_power_increases_with_cpu_activity(rpi_device):
    model = PowerModel(rpi_device)
    idle = model.power_over((0.0, 10.0)).watts
    rpi_device.charge_cpu(0.0, 20.0)  # half the window on one core... spread over window
    busy = model.power_over((0.0, 10.0)).watts
    assert busy > idle


def test_power_never_exceeds_profile_maximum(rpi_device):
    model = PowerModel(rpi_device)
    # Saturate every component for the whole window.
    for _ in range(rpi_device.profile.cores):
        rpi_device.charge_cpu(0.0, 10.0)
    rpi_device.occupy("nic", 0.0, 10.0)
    rpi_device.occupy("disk", 0.0, 10.0)
    sample = model.power_over((0.0, 10.0))
    assert sample.watts <= rpi_device.profile.max_power_w + 1e-9
    assert sample.cpu_utilization == pytest.approx(1.0)


def test_energy_is_power_times_time(rpi_device):
    model = PowerModel(rpi_device)
    energy = model.energy_over((0.0, 100.0))
    assert energy == pytest.approx(model.baseline_watts() * 100.0)


# ---------------------------------------------------------------------- meter
def test_meter_interval_report_statistics(rpi_device):
    rpi_device.charge_cpu(5.0, 5.0)
    meter = PowerMeter(PowerModel(rpi_device), sample_interval_s=1.0)
    report = meter.measure_interval(0.0, 10.0, label="test")
    assert report.duration_s == 10.0
    assert report.max_watts > report.min_watts
    assert report.min_watts >= PowerModel(rpi_device).baseline_watts() - 1e-9
    assert report.energy_joules > 0
    assert report.energy_wh == pytest.approx(report.energy_joules / 3600.0)


def test_meter_sample_count_matches_interval(rpi_device):
    meter = PowerMeter(PowerModel(rpi_device), sample_interval_s=2.0)
    samples = meter.sample_window(0.0, 10.0)
    assert len(samples) == 5


def test_meter_rejects_bad_windows(rpi_device):
    meter = PowerMeter(PowerModel(rpi_device))
    with pytest.raises(ConfigurationError):
        meter.measure_interval(5.0, 5.0)
    with pytest.raises(ConfigurationError):
        PowerMeter(PowerModel(rpi_device), sample_interval_s=0.0)


def test_meter_multiple_intervals(rpi_device):
    meter = PowerMeter(PowerModel(rpi_device), sample_interval_s=5.0)
    reports = meter.measure_intervals([(0.0, 60.0), (60.0, 120.0)], labels=["a", "b"])
    assert [r.label for r in reports] == ["a", "b"]
    with pytest.raises(ConfigurationError):
        meter.measure_intervals([(0.0, 1.0)], labels=["a", "b"])


def test_desktop_idle_power_far_above_rpi():
    desktop = DeviceModel("xeon", XEON_E5_1603)
    rpi = DeviceModel("rpi", RASPBERRY_PI_3B_PLUS)
    assert PowerModel(desktop).baseline_watts() > 10 * PowerModel(rpi).baseline_watts()
