"""Unit tests for consistent-hash shard routing and fan-out merging."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.fabric.proposal import ProposalResponse
from repro.ledger.transaction import ReadWriteSet
from repro.middleware.base import TransactionPipeline
from repro.middleware.context import Context, OperationKind
from repro.middleware.sharding import (
    ConsistentHashRing,
    ShardRouterMiddleware,
    routing_key,
)


def ctx_for(function, args, kind=OperationKind.READ):
    return Context(
        operation=function, kind=kind, chaincode="hyperprov",
        function=function, args=list(args),
    )


def response_with(payload):
    # A present endorsement marks the response ok (is_ok semantics); a
    # shard missing the key answers with none, like a failed endorsement.
    endorsement = object() if payload is not None else None
    status = 200 if payload is not None else 500
    return ProposalResponse(
        tx_id="t", peer="p", status=status, payload=payload, message="",
        rw_set=ReadWriteSet(), endorsement=endorsement, produced_at=0.0,
    )


# ------------------------------------------------------------------- ring
def test_ring_is_deterministic_and_total():
    a, b = ConsistentHashRing(4), ConsistentHashRing(4)
    for i in range(100):
        key = f"k/{i}"
        shard = a.route(key)
        assert shard == b.route(key)
        assert 0 <= shard < 4


def test_ring_spreads_keys_over_every_shard():
    ring = ConsistentHashRing(4)
    owners = {ring.route(f"bench/{i:05d}") for i in range(200)}
    assert owners == {0, 1, 2, 3}


def test_ring_growth_remaps_only_part_of_the_keyspace():
    small, large = ConsistentHashRing(2), ConsistentHashRing(4)
    keys = [f"k/{i}" for i in range(400)]
    moved = sum(1 for key in keys if small.route(key) != large.route(key))
    # Consistent hashing: roughly half the keys move 2 → 4, never all.
    assert 0 < moved < len(keys)


def test_ring_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(0)
    with pytest.raises(ConfigurationError):
        ConsistentHashRing(2, virtual_nodes=0)


# ----------------------------------------------------------- tenant routing
def test_routing_key_collapses_tenant_namespace():
    assert routing_key("tenant/acme/a/b") == "tenant/acme"
    assert routing_key("tenant/acme/zzz") == "tenant/acme"
    assert routing_key("plain/key") == "plain/key"


def test_tenant_keys_co_locate_on_one_shard():
    ring = ConsistentHashRing(4)
    shards = {ring.route(f"tenant/acme/item-{i}") for i in range(50)}
    assert len(shards) == 1


# ----------------------------------------------------------- single routing
def test_router_tags_writes_with_owning_shard():
    router = ShardRouterMiddleware(shards=4)
    seen = []
    pipeline = TransactionPipeline(
        [router], terminal=lambda ctx: seen.append(ctx.tags["shard"]) or "handle"
    )
    pipeline.execute(ctx_for("set", ["k/1", "cs", "loc"], kind=OperationKind.WRITE))
    pipeline.execute(ctx_for("get", ["k/1"]))
    assert seen[0] == seen[1]  # reads follow their key's writes


# ----------------------------------------------------------------- fan-out
def fan_out_pipeline(router, payload_by_shard):
    def terminal(ctx):
        shard = ctx.tags["shard"]
        payload = payload_by_shard.get(shard)
        if payload is None:
            return (response_with(None), 0.0)
        return (response_with(payload), 0.1 * (shard + 1))

    return TransactionPipeline([router], terminal)


def test_range_fan_out_merges_rows_in_key_order():
    router = ShardRouterMiddleware(shards=2)
    rows0 = [{"key": "b", "record": json.dumps({"timestamp": 1.0})}]
    rows1 = [{"key": "a", "record": json.dumps({"timestamp": 2.0})}]
    pipeline = fan_out_pipeline(
        router, {0: json.dumps(rows0), 1: json.dumps(rows1)}
    )
    response, latency = pipeline.execute(ctx_for("getbyrange", ["", "~"]))
    merged = json.loads(response.payload)
    assert [row["key"] for row in merged] == ["a", "b"]
    # Fan-out latency is the slowest shard's, not the sum.
    assert latency == pytest.approx(0.2)


def test_fan_out_dedupes_duplicate_keys_keeping_newest():
    router = ShardRouterMiddleware(shards=2)
    old = [{"key": "k", "record": json.dumps({"timestamp": 1.0, "v": "old"})}]
    new = [{"key": "k", "record": json.dumps({"timestamp": 9.0, "v": "new"})}]
    pipeline = fan_out_pipeline(router, {0: json.dumps(old), 1: json.dumps(new)})
    response, _ = pipeline.execute(ctx_for("getbyrange", ["", "~"]))
    merged = json.loads(response.payload)
    assert len(merged) == 1
    assert json.loads(merged[0]["record"])["v"] == "new"


def test_history_fan_out_orders_by_commit_timestamp():
    router = ShardRouterMiddleware(shards=2)
    shard0 = [
        {"tx_id": "t2", "block": 0, "timestamp": 5.0, "is_delete": False, "value": "v2"}
    ]
    shard1 = [
        {"tx_id": "t1", "block": 7, "timestamp": 1.0, "is_delete": False, "value": "v1"}
    ]
    pipeline = fan_out_pipeline(
        router, {0: json.dumps(shard0), 1: json.dumps(shard1)}
    )
    response, _ = pipeline.execute(ctx_for("getkeyhistory", ["k"]))
    merged = json.loads(response.payload)
    # Ordered by timestamp, not by per-shard block numbers.
    assert [entry["tx_id"] for entry in merged] == ["t1", "t2"]


def test_fan_out_tolerates_missing_shards():
    router = ShardRouterMiddleware(shards=2)
    rows = [{"key": "a", "record": json.dumps({"timestamp": 1.0})}]
    pipeline = fan_out_pipeline(router, {1: json.dumps(rows)})  # shard 0 misses
    response, _ = pipeline.execute(ctx_for("getbyrange", ["", "~"]))
    assert [row["key"] for row in json.loads(response.payload)] == ["a"]


def test_fan_out_with_no_hits_returns_first_error():
    router = ShardRouterMiddleware(shards=2)
    pipeline = fan_out_pipeline(router, {})
    response, _ = pipeline.execute(ctx_for("getkeyhistory", ["ghost"]))
    assert response.payload is None


def test_single_shard_router_never_fans_out():
    router = ShardRouterMiddleware(shards=1)
    calls = []
    pipeline = TransactionPipeline(
        [router],
        terminal=lambda ctx: calls.append(ctx.tags["shard"]) or (response_with("[]"), 0.1),
    )
    pipeline.execute(ctx_for("getbyrange", ["", "~"]))
    assert calls == [0]
