"""Unit tests for the transaction pipeline core and stock middlewares."""

import pytest

from repro.common.errors import ConfigurationError, NetworkError, NotFoundError
from repro.common.events import EventBus
from repro.common.metrics import MetricsRegistry
from repro.middleware.base import Middleware, TransactionPipeline
from repro.middleware.config import PipelineConfig, build_client_pipeline
from repro.middleware.context import Context, OperationKind
from repro.middleware.retry import RetryMiddleware, RetryPolicy
from repro.middleware.tracing import RequestIdMiddleware


def make_ctx(function="get", kind=OperationKind.READ, args=None, operation=None):
    return Context(
        operation=operation or function,
        kind=kind,
        chaincode="hyperprov",
        function=function,
        args=args if args is not None else ["k"],
    )


class Recorder(Middleware):
    """Records enter/exit order so chain composition is observable."""

    def __init__(self, label, log):
        self.name = label
        self.label = label
        self.log = log

    def handle(self, ctx, call_next):
        self.log.append(f"enter:{self.label}")
        result = call_next(ctx)
        self.log.append(f"exit:{self.label}")
        return result


class ShortCircuit(Middleware):
    name = "short-circuit"

    def handle(self, ctx, call_next):
        return "short-circuited"


class Failing(Middleware):
    name = "failing"

    def __init__(self, error):
        self.error = error

    def handle(self, ctx, call_next):
        raise self.error


class TestPipelineOrdering:
    def test_middlewares_run_in_declared_order(self):
        log = []
        pipeline = TransactionPipeline(
            [Recorder("a", log), Recorder("b", log), Recorder("c", log)],
            terminal=lambda ctx: log.append("terminal") or "done",
        )
        result = pipeline.execute(make_ctx())
        assert result == "done"
        assert log == [
            "enter:a", "enter:b", "enter:c", "terminal",
            "exit:c", "exit:b", "exit:a",
        ]

    def test_result_is_recorded_on_context(self):
        pipeline = TransactionPipeline([], terminal=lambda ctx: 41 + 1)
        ctx = make_ctx()
        pipeline.execute(ctx)
        assert ctx.result == 42

    def test_short_circuit_skips_downstream(self):
        log = []
        pipeline = TransactionPipeline(
            [Recorder("outer", log), ShortCircuit(), Recorder("inner", log)],
            terminal=lambda ctx: log.append("terminal"),
        )
        result = pipeline.execute(make_ctx())
        assert result == "short-circuited"
        assert "enter:inner" not in log
        assert "terminal" not in log

    def test_error_short_circuits_and_propagates(self):
        log = []
        pipeline = TransactionPipeline(
            [Recorder("outer", log), Failing(NotFoundError("nope"))],
            terminal=lambda ctx: log.append("terminal"),
        )
        with pytest.raises(NotFoundError):
            pipeline.execute(make_ctx())
        assert "terminal" not in log
        # The outer middleware saw the enter but never the exit.
        assert log == ["enter:outer"]

    def test_rejects_non_middleware(self):
        with pytest.raises(ConfigurationError):
            TransactionPipeline([object()], terminal=lambda ctx: None)

    def test_find_and_names(self):
        log = []
        recorder = Recorder("a", log)
        pipeline = TransactionPipeline([recorder], terminal=lambda ctx: None)
        assert pipeline.middleware_names() == ["a"]
        assert pipeline.find(Recorder) is recorder
        assert pipeline.find(ShortCircuit) is None


class TestRequestId:
    def test_assigns_stable_deterministic_ids(self):
        pipeline = TransactionPipeline([RequestIdMiddleware()], terminal=lambda c: None)
        first, second = make_ctx(), make_ctx()
        pipeline.execute(first)
        pipeline.execute(second)
        assert first.request_id.startswith("req-")
        assert first.request_id != second.request_id

    def test_publishes_request_and_response_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe("pipeline.request", lambda t, p: seen.append((t, p)))
        bus.subscribe("pipeline.response", lambda t, p: seen.append((t, p)))
        bus.subscribe("pipeline.error", lambda t, p: seen.append((t, p)))
        pipeline = TransactionPipeline(
            [RequestIdMiddleware(events=bus)], terminal=lambda c: ("ok", 0.1)
        )
        pipeline.execute(make_ctx())
        assert [topic for topic, _ in seen] == ["pipeline.request", "pipeline.response"]

        failing = TransactionPipeline(
            [RequestIdMiddleware(events=bus), Failing(NotFoundError("x"))],
            terminal=lambda c: None,
        )
        with pytest.raises(NotFoundError):
            failing.execute(make_ctx())
        assert [topic for topic, _ in seen][-1] == "pipeline.error"


class TestRetry:
    def test_retries_until_success(self):
        attempts = []

        def flaky(ctx):
            attempts.append(ctx.attempt)
            if len(attempts) < 3:
                raise NetworkError("transient")
            return "ok"

        pipeline = TransactionPipeline(
            [RetryMiddleware(RetryPolicy(max_attempts=3, backoff_s=0.1))],
            terminal=flaky,
        )
        ctx = make_ctx()
        assert pipeline.execute(ctx) == "ok"
        assert attempts == [1, 2, 3]
        # Backoff advanced the virtual start time of later attempts.
        assert ctx.at_time is not None and ctx.at_time > 0

    def test_gives_up_and_propagates_last_error(self):
        metrics = MetricsRegistry()
        calls = []

        def always_down(ctx):
            calls.append(ctx.attempt)
            raise NetworkError(f"down ({ctx.attempt})")

        pipeline = TransactionPipeline(
            [RetryMiddleware(RetryPolicy(max_attempts=3), metrics=metrics)],
            terminal=always_down,
        )
        with pytest.raises(NetworkError, match=r"down \(3\)"):
            pipeline.execute(make_ctx())
        assert calls == [1, 2, 3]
        assert metrics.get_counter("retry.exhausted").value == 1

    def test_non_retryable_errors_pass_straight_through(self):
        calls = []

        def not_found(ctx):
            calls.append(1)
            raise NotFoundError("no such key")

        pipeline = TransactionPipeline(
            [RetryMiddleware(RetryPolicy(max_attempts=5))], terminal=not_found
        )
        with pytest.raises(NotFoundError):
            pipeline.execute(make_ctx())
        assert calls == [1]

    def test_exponential_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, multiplier=2.0)
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.4)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)


class TestPipelineConfig:
    def test_default_config_enables_observation_only(self):
        config = PipelineConfig()
        assert config.middleware_names() == ["request-id", "metrics"]

    def test_full_config_ordering(self):
        config = PipelineConfig(retry_attempts=3, cache=True)
        assert config.middleware_names() == [
            "request-id", "metrics", "retry", "read-cache",
        ]

    def test_round_trips_through_dict(self):
        config = PipelineConfig(cache=True, retry_attempts=2, order_batch_size=4)
        assert PipelineConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"cache": True, "warp_speed": 9})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(retry_attempts=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(order_batch_size=0)

    def test_build_client_pipeline_matches_config(self):
        metrics = MetricsRegistry()
        pipeline = build_client_pipeline(
            PipelineConfig(cache=True, retry_attempts=2),
            lambda ctx: None,
            metrics=metrics,
        )
        assert pipeline.middleware_names() == [
            "request-id", "metrics", "retry", "read-cache",
        ]


# ------------------------------------------------------------ tenant prefix
def test_tenant_prefix_scopes_rich_query_prefix_selector():
    import json

    from repro.middleware.tenancy import TenantPrefixMiddleware

    middleware = TenantPrefixMiddleware("acme")

    scoped = make_ctx(
        "query", args=[json.dumps({"_prefix": "sensor/", "creator": "x"})],
        operation="query_records",
    )
    middleware._rewrite_args(scoped)
    assert json.loads(scoped.args[0])["_prefix"] == "tenant/acme/sensor/"

    # Without an explicit _prefix the scan is scoped to the whole tenant
    # namespace, so candidate selection skips other tenants' keys.
    unscoped = make_ctx(
        "query", args=[json.dumps({"creator": "x"})], operation="query_records"
    )
    middleware._rewrite_args(unscoped)
    assert json.loads(unscoped.args[0])["_prefix"] == "tenant/acme/"

    # Malformed selectors pass through so the chaincode still rejects them.
    for bad in ["{not json", "{}", json.dumps({"_prefix": 7})]:
        ctx = make_ctx("query", args=[bad], operation="query_records")
        middleware._rewrite_args(ctx)
        assert ctx.args[0] == bad
