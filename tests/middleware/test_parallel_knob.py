"""``PipelineConfig.parallel``: cache invalidation under batched delivery."""

from types import SimpleNamespace

from repro.common.events import EventBus
from repro.middleware.base import TransactionPipeline
from repro.middleware.cache import ReadCacheMiddleware
from repro.middleware.config import (
    PipelineConfig,
    build_client_middlewares,
)
from repro.middleware.context import Context, OperationKind


def read_ctx(key: str) -> Context:
    return Context(
        operation="get",
        kind=OperationKind.READ,
        chaincode="hyperprov",
        function="get",
        args=[key],
    )


def fake_block(*keys: str) -> SimpleNamespace:
    writes = [SimpleNamespace(key=key) for key in keys]
    transaction = SimpleNamespace(rw_set=SimpleNamespace(writes=writes))
    return SimpleNamespace(transactions=[transaction], number=1)


def prime(cache_pipeline: TransactionPipeline, key: str) -> None:
    cache_pipeline.execute(read_ctx(key))


class TestParallelKnob:
    def test_round_trips_through_dict(self):
        config = PipelineConfig(parallel=True)
        assert PipelineConfig.from_dict(config.to_dict()).parallel is True
        assert PipelineConfig().parallel is False

    def test_batched_chaincode_events_invalidate_cache(self):
        bus = EventBus()
        middlewares = build_client_middlewares(
            PipelineConfig(cache=True, parallel=True, tracing=False, metrics=False),
            events=bus,
        )
        cache = next(m for m in middlewares if isinstance(m, ReadCacheMiddleware))
        pipeline = TransactionPipeline(middlewares, terminal=lambda ctx: ("v", 0.1))
        prime(pipeline, "k1")
        assert len(cache) == 1
        bus.publish_batch(
            "chaincode_event_batch:provenance_recorded", [{"key": "k1"}]
        )
        assert len(cache) == 0

    def test_commit_batch_entries_invalidate_cache(self):
        bus = EventBus()
        middlewares = build_client_middlewares(
            PipelineConfig(cache=True, parallel=True, tracing=False, metrics=False),
            events=bus,
        )
        cache = next(m for m in middlewares if isinstance(m, ReadCacheMiddleware))
        pipeline = TransactionPipeline(middlewares, terminal=lambda ctx: ("v", 0.1))
        prime(pipeline, "k2")
        assert len(cache) == 1
        bus.publish_batch("commit_batch", [{"block": fake_block("k2"), "shard": 0}])
        assert len(cache) == 0

    def test_default_pipeline_ignores_batched_topics(self):
        bus = EventBus()
        middlewares = build_client_middlewares(
            PipelineConfig(cache=True, tracing=False, metrics=False), events=bus
        )
        cache = next(m for m in middlewares if isinstance(m, ReadCacheMiddleware))
        pipeline = TransactionPipeline(middlewares, terminal=lambda ctx: ("v", 0.1))
        prime(pipeline, "k3")
        bus.publish_batch("commit_batch", [{"block": fake_block("k3"), "shard": 0}])
        # Not attached to the batched topic: the entry survives (and the
        # per-block topics still invalidate as before).
        assert len(cache) == 1
        bus.publish("block_delivered", {"block": fake_block("k3")})
        assert len(cache) == 0

    def test_publish_batch_empty_is_noop(self):
        bus = EventBus()
        seen = []
        bus.subscribe("commit_batch", lambda _t, payload: seen.append(payload))
        assert bus.publish_batch("commit_batch", []) == 0
        assert seen == []
        assert bus.publish_batch("commit_batch", [1, 2]) == 1
        assert seen == [[1, 2]]
