"""Cache hit/miss + invalidation and endorsement-batcher flush semantics.

These run against full deployments so the invalidation path exercises the
real commit events (chaincode event + block delivery) rather than mocks.
"""

import pytest

from repro.api.protocol import StoreRequest
from repro.common.events import EventBus
from repro.common.metrics import MetricsRegistry
from repro.core.topology import build_desktop_deployment
from repro.middleware.base import TransactionPipeline
from repro.middleware.cache import ReadCacheMiddleware
from repro.middleware.config import PipelineConfig
from repro.middleware.context import Context, OperationKind


def read_ctx(function="get", args=("k",)):
    return Context(
        operation=function,
        kind=OperationKind.READ,
        chaincode="hyperprov",
        function=function,
        args=list(args),
    )


class TestReadCacheUnit:
    def test_hit_returns_cached_payload_with_hit_latency(self):
        calls = []
        cache = ReadCacheMiddleware(hit_latency_s=0.001)
        pipeline = TransactionPipeline(
            [cache], terminal=lambda ctx: calls.append(1) or ("payload", 0.5)
        )
        miss = pipeline.execute(read_ctx())
        hit_ctx = read_ctx()
        hit = pipeline.execute(hit_ctx)
        assert len(calls) == 1
        assert miss == ("payload", 0.5)
        assert hit == ("payload", 0.001)
        assert hit_ctx.cache_hit is True

    def test_writes_are_never_cached(self):
        calls = []
        cache = ReadCacheMiddleware()
        pipeline = TransactionPipeline(
            [cache], terminal=lambda ctx: calls.append(1) or "handle"
        )
        ctx = Context(
            operation="post", kind=OperationKind.WRITE,
            chaincode="hyperprov", function="set", args=["k"],
        )
        pipeline.execute(ctx)
        pipeline.execute(ctx)
        assert len(calls) == 2
        assert len(cache) == 0

    def test_invalidate_key_drops_key_scoped_and_broad_entries(self):
        cache = ReadCacheMiddleware()
        pipeline = TransactionPipeline([cache], terminal=lambda ctx: ("x", 0.1))
        pipeline.execute(read_ctx("get", args=("a",)))
        pipeline.execute(read_ctx("get", args=("b",)))
        pipeline.execute(read_ctx("getbyrange", args=("", "~")))  # broad
        assert len(cache) == 3
        dropped = cache.invalidate_key("a")
        assert dropped == 2  # the exact-key entry for "a" plus the range scan
        assert len(cache) == 1  # "b" survives

    def test_lru_eviction_respects_capacity(self):
        metrics = MetricsRegistry()
        cache = ReadCacheMiddleware(capacity=2, metrics=metrics)
        pipeline = TransactionPipeline([cache], terminal=lambda ctx: ("x", 0.1))
        for key in ("a", "b", "c"):
            pipeline.execute(read_ctx("get", args=(key,)))
        assert len(cache) == 2
        assert metrics.get_counter("cache.evictions").value == 1
        # "a" was evicted; "b" and "c" remain.
        remaining = {args[0] for (_, _, args) in cache.cached_keys()}
        assert remaining == {"b", "c"}

    def test_provenance_recorded_event_invalidates(self):
        bus = EventBus()
        cache = ReadCacheMiddleware(events=bus)
        pipeline = TransactionPipeline([cache], terminal=lambda ctx: ("x", 0.1))
        pipeline.execute(read_ctx("get", args=("sensor/1",)))
        assert len(cache) == 1
        bus.publish(
            "chaincode_event:provenance_recorded",
            {"payload": '{"key": "sensor/1"}', "tx_id": "tx-0"},
        )
        assert len(cache) == 0

    def test_close_cancels_subscriptions(self):
        bus = EventBus()
        cache = ReadCacheMiddleware(events=bus)
        assert bus.topics()
        cache.close()
        assert not bus.topics()


class TestReadCacheEndToEnd:
    def test_hit_miss_and_commit_invalidation(self):
        deployment = build_desktop_deployment(seed=42)
        client = deployment.client
        client.configure_pipeline(PipelineConfig(cache=True))

        store = client.as_store()
        store.submit(StoreRequest(key="hot/key", data=b"v1"))
        deployment.drain()

        first = store.get("hot/key")
        second = store.get("hot/key")
        assert client.metrics.get_counter("cache.misses").value == 1
        assert client.metrics.get_counter("cache.hits").value == 1
        # The cached read is answered locally, not via a peer round trip.
        assert second.latency_s < first.latency_s
        assert second.checksum == first.checksum

        # A new committed version must invalidate the entry...
        store.submit(StoreRequest(key="hot/key", data=b"v2"))
        deployment.drain()
        refreshed = store.get("hot/key")
        # ... so the read goes back to the peer and sees the new checksum.
        assert client.metrics.get_counter("cache.misses").value == 2
        assert refreshed.checksum != first.checksum

    def test_cache_disabled_config_reproduces_uncached_latency(self):
        deployment = build_desktop_deployment(seed=42)
        store = deployment.client.as_store()  # default config: cache off
        store.submit(StoreRequest(key="cold/key", data=b"v1"))
        deployment.drain()
        first = store.get("cold/key")
        second = store.get("cold/key")
        # Without the cache both reads pay a real peer round trip.
        assert second.latency_s > first.latency_s * 0.1
        assert deployment.client.metrics.get_counter("cache.hits") is None


def post_inline(client, key):
    """Submit a metadata-only post at the current virtual time (no storage).

    A submit with the default ``at_time`` runs the invoke synchronously, so
    the endorsement batcher's queue growth is deterministic in the test.
    """
    return client.as_store().submit(
        StoreRequest(key=key, checksum="ab" * 32, location=f"file://{key}")
    ).handle


class TestEndorsementBatcher:
    def test_count_triggered_flush(self):
        deployment = build_desktop_deployment(seed=42)
        client = deployment.client
        client.configure_pipeline(PipelineConfig(order_batch_size=3))
        batcher = deployment.fabric.order_batcher

        handles = [post_inline(client, f"batch/{i}") for i in range(2)]
        assert batcher.queued == 2
        handles.append(post_inline(client, "batch/2"))
        # The third submission filled the batch: nothing left queued.
        assert batcher.queued == 0
        assert deployment.fabric.metrics.get_counter("batcher.flushes").value == 1
        deployment.drain()
        assert all(h.is_valid for h in handles)

    def test_drain_flushes_partial_batch(self):
        deployment = build_desktop_deployment(seed=42)
        client = deployment.client
        client.configure_pipeline(PipelineConfig(order_batch_size=10))

        handles = [post_inline(client, f"partial/{i}") for i in range(4)]
        assert deployment.fabric.order_batcher.queued == 4
        deployment.drain()
        assert deployment.fabric.order_batcher.queued == 0
        assert all(h.is_valid for h in handles)

    def test_batched_run_commits_same_records_as_unbatched(self):
        batched = build_desktop_deployment(seed=42)
        batched.client.configure_pipeline(PipelineConfig(order_batch_size=4))
        plain = build_desktop_deployment(seed=42)
        for deployment in (batched, plain):
            for i in range(8):
                deployment.client.as_store().submit(
                    StoreRequest(key=f"eq/{i}", data=f"x{i}".encode())
                )
            deployment.drain()
        for i in range(8):
            key = f"eq/{i}"
            assert (
                batched.peers[0].world_state.get(key).value
                == plain.peers[0].world_state.get(key).value
            )

    def test_batch_size_one_is_passthrough(self):
        deployment = build_desktop_deployment(seed=42)
        deployment.client.as_store().submit(StoreRequest(key="solo/0", data=b"x"))
        assert deployment.fabric.order_batcher.queued == 0
        deployment.drain()
        flushes = deployment.fabric.metrics.get_counter("batcher.flushes")
        assert flushes is None or flushes.value == 0

    def test_invalid_batch_size_rejected_without_side_effects(self):
        deployment = build_desktop_deployment(seed=42)
        deployment.client.configure_pipeline(PipelineConfig(order_batch_size=10))
        post_inline(deployment.client, "reject/0")
        queued_before = deployment.fabric.order_batcher.queued
        with pytest.raises(Exception):
            deployment.fabric.set_order_batch_size(0)
        # The rejected reconfiguration must not have force-flushed the queue.
        assert deployment.fabric.order_batcher.queued == queued_before

    def test_closed_loop_drain_with_batch_larger_than_inflight(self):
        """Commit callbacks that submit new work must not starve the batcher.

        Regression test: with order_batch_size above the number of
        in-flight submissions, drain() must keep alternating batcher and
        orderer flush rounds until every chained submission commits.
        """
        from repro.bench.runner import RunConfig, StoreDataRunner

        deployment = build_desktop_deployment(seed=42)
        result = StoreDataRunner(deployment).run(
            RunConfig(
                data_size_bytes=1024,
                request_count=40,
                concurrency=8,
                seed=42,
                pipeline=PipelineConfig(order_batch_size=32),
            )
        )
        assert result.submitted == 40
        assert result.committed == 40
        assert deployment.fabric.order_batcher.queued == 0
