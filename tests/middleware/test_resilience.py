"""Deadline, circuit-breaker, store-and-forward and retry-jitter policies."""

import pytest

from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    NetworkError,
)
from repro.ledger.transaction import TxValidationCode
from repro.middleware.config import PipelineConfig
from repro.middleware.context import Context, OperationKind
from repro.middleware.resilience import (
    CircuitBreakerMiddleware,
    DeadlineMiddleware,
    StoreAndForwardMiddleware,
)
from repro.middleware.retry import RetryPolicy
from repro.fabric.proposal import TransactionHandle
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom


def read_ctx(at_time=0.0, **kwargs):
    return Context(
        operation="get",
        kind=OperationKind.READ,
        chaincode="cc",
        function="get",
        args=["k"],
        at_time=at_time,
        **kwargs,
    )


def write_ctx(at_time=0.0):
    return Context(
        operation="post",
        kind=OperationKind.WRITE,
        chaincode="cc",
        function="post",
        args=["k", "v"],
        at_time=at_time,
    )


# --------------------------------------------------------------- deadline
class TestDeadlineMiddleware:
    def test_stamps_the_absolute_deadline(self):
        middleware = DeadlineMiddleware(deadline_s=2.0)
        ctx = read_ctx(at_time=10.0)
        middleware.handle(ctx, lambda c: ("payload", 0.5))
        assert ctx.tags["deadline_at"] == 12.0

    def test_late_read_raises_instead_of_returning_quietly(self):
        middleware = DeadlineMiddleware(deadline_s=1.0)
        with pytest.raises(DeadlineExceededError, match="past its deadline"):
            middleware.handle(read_ctx(at_time=0.0), lambda c: ("payload", 1.5))

    def test_on_time_read_passes_through(self):
        middleware = DeadlineMiddleware(deadline_s=1.0)
        assert middleware.handle(read_ctx(), lambda c: ("payload", 0.2)) == (
            "payload",
            0.2,
        )

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigurationError):
            DeadlineMiddleware(deadline_s=0.0)


# ---------------------------------------------------------------- breaker
class TestCircuitBreaker:
    def failing(self, ctx):
        raise NetworkError("unreachable")

    def test_opens_after_threshold_and_rejects_fast(self):
        breaker = CircuitBreakerMiddleware(failure_threshold=3, cooldown_s=5.0)
        for _ in range(3):
            with pytest.raises(NetworkError):
                breaker.handle(write_ctx(at_time=1.0), self.failing)
        assert breaker.breaker().state == "open"
        # While open, calls are rejected without touching the backend.
        with pytest.raises(CircuitOpenError):
            breaker.handle(write_ctx(at_time=2.0), lambda c: "never-called")

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreakerMiddleware(failure_threshold=1, cooldown_s=1.0)
        with pytest.raises(NetworkError):
            breaker.handle(write_ctx(at_time=0.0), self.failing)
        # Past the cooldown one probe goes through; success closes.
        assert breaker.handle(write_ctx(at_time=1.5), lambda c: "ok") == "ok"
        assert breaker.breaker().state == "closed"

    def test_half_open_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreakerMiddleware(failure_threshold=1, cooldown_s=1.0)
        with pytest.raises(NetworkError):
            breaker.handle(write_ctx(at_time=0.0), self.failing)
        with pytest.raises(NetworkError):
            breaker.handle(write_ctx(at_time=1.5), self.failing)
        state = breaker.breaker()
        assert state.state == "open"
        assert state.opened_until == 2.5

    def test_breakers_are_per_shard(self):
        breaker = CircuitBreakerMiddleware(failure_threshold=1, cooldown_s=9.0)
        ctx = write_ctx(at_time=0.0)
        ctx.tags["shard"] = 1
        with pytest.raises(NetworkError):
            breaker.handle(ctx, self.failing)
        # Shard 1 is open; shard 0 still serves.
        other = write_ctx(at_time=0.1)
        assert breaker.handle(other, lambda c: "ok") == "ok"
        blocked = write_ctx(at_time=0.2)
        blocked.tags["shard"] = 1
        with pytest.raises(CircuitOpenError):
            breaker.handle(blocked, lambda c: "ok")

    def test_success_resets_the_consecutive_failure_count(self):
        breaker = CircuitBreakerMiddleware(failure_threshold=2, cooldown_s=1.0)
        with pytest.raises(NetworkError):
            breaker.handle(write_ctx(), self.failing)
        breaker.handle(write_ctx(), lambda c: "ok")
        with pytest.raises(NetworkError):
            breaker.handle(write_ctx(), self.failing)
        assert breaker.breaker().state == "closed"


# -------------------------------------------------------- store-and-forward
class TestStoreAndForward:
    def test_parks_unreachable_write_and_replays_on_heal(self):
        engine = SimulationEngine()
        saf = StoreAndForwardMiddleware(engine, replay_interval_s=0.5)
        healed = []

        def downstream(ctx):
            if engine.now < 2.0:
                raise NetworkError("partitioned")
            real = TransactionHandle(tx_id="tx-real", submitted_at=engine.now, function="post")
            healed.append(real)
            return real

        placeholder = saf.handle(write_ctx(at_time=0.0), downstream)
        assert isinstance(placeholder, TransactionHandle)
        assert placeholder.tx_id.startswith("saf-")
        assert saf.queued == 1
        engine.run(until=3.0)
        assert saf.queued == 0
        # The replayed handle completing completes the placeholder too.
        healed[0].complete(2.5, TxValidationCode.VALID, block_number=4)
        assert placeholder.is_valid
        assert placeholder.tx_id == "tx-real"
        assert placeholder.commit_block == 4
        assert placeholder.timings["saf_replays"] >= 1.0

    def test_abandons_after_max_replays(self):
        engine = SimulationEngine()
        saf = StoreAndForwardMiddleware(engine, replay_interval_s=0.5, max_replays=3)

        def always_down(ctx):
            raise NetworkError("partitioned")

        placeholder = saf.handle(write_ctx(at_time=0.0), always_down)
        engine.run_until_idle()
        # Bounded: the replay loop gave up instead of spinning forever.
        assert saf.queued == 0
        assert placeholder.validation_code is TxValidationCode.INVALID_OTHER_REASON
        assert placeholder.timings["saf_replays"] == 3.0

    def test_reads_and_healthy_writes_bypass_the_queue(self):
        engine = SimulationEngine()
        saf = StoreAndForwardMiddleware(engine)
        assert saf.handle(read_ctx(), lambda c: "fresh") == "fresh"
        handle = TransactionHandle(tx_id="tx-1", submitted_at=0.0, function="post")
        assert saf.handle(write_ctx(), lambda c: handle) is handle
        assert saf.queued == 0

    def test_queueing_drops_the_deadline_budget(self):
        engine = SimulationEngine()
        saf = StoreAndForwardMiddleware(engine)
        ctx = write_ctx(at_time=0.0)
        ctx.tags["deadline_at"] = 1.0

        def down(inner):
            raise NetworkError("partitioned")

        saf.handle(ctx, down)
        assert "deadline_at" not in ctx.tags


# ------------------------------------------------------------ retry jitter
class TestRetryJitter:
    def test_no_jitter_keeps_the_historical_schedule(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, jitter_fraction=0.0)
        rng = DeterministicRandom(3)
        plain = [policy.delay_before(a, rng=rng) for a in (2, 3, 4)]
        assert plain == [policy.delay_before(a) for a in (2, 3, 4)]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.1, jitter_fraction=0.2)
        base = RetryPolicy(max_attempts=4, backoff_s=0.1)

        def draws():
            rng = DeterministicRandom(9)
            return [policy.delay_before(a, rng=rng) for a in (2, 3, 4)]

        first, second = draws(), draws()
        assert first == second
        for jittered, attempt in zip(first, (2, 3, 4)):
            clean = base.delay_before(attempt)
            assert clean * 0.8 <= jittered <= clean * 1.2
            assert jittered != clean

    def test_jitter_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)


# ------------------------------------------------------------- config knobs
class TestConfigWiring:
    def test_resilience_knobs_change_the_middleware_names(self):
        config = PipelineConfig(
            deadline_s=2.0,
            circuit_breaker=True,
            store_and_forward=True,
            cache=True,
            stale_reads=True,
        )
        names = config.middleware_names()
        assert "deadline" in names
        assert "circuit-breaker" in names
        assert "store-and-forward" in names
        # Ordering: deadline and SAF wrap retry/cache; breaker is innermost.
        assert names.index("deadline") < names.index("store-and-forward")
        assert names[-1] == "circuit-breaker"

    def test_defaults_add_nothing(self):
        names = PipelineConfig().middleware_names()
        for name in ("deadline", "circuit-breaker", "store-and-forward"):
            assert name not in names

    def test_invalid_knobs_raise(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(deadline_s=-1.0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(retry_jitter=1.0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(saf_max_replays=0)
        with pytest.raises(ConfigurationError):
            PipelineConfig(circuit_cooldown_s=0.0)

    def test_stale_reads_require_the_cache(self):
        with pytest.raises(ConfigurationError, match="stale_reads needs cache"):
            PipelineConfig(stale_reads=True)
