"""Client + baseline integration with the transaction pipeline."""

import pytest

from repro.api.protocol import StoreRequest
from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.chaincode.records import ProvenanceRecord
from repro.devices.model import DeviceModel
from repro.devices.profiles import XEON_E5_1603
from repro.middleware.config import PipelineConfig
from repro.middleware.metrics import STAGE_COMMIT, STAGE_ENDORSE, STAGE_ORDER
from repro.simulation.randomness import DeterministicRandom


def make_record(key="k", checksum="0" * 64):
    return ProvenanceRecord(
        key=key,
        checksum=checksum,
        location=f"db://x/{key}",
        creator="tester",
        organization="org1",
        certificate_fingerprint="",
    )


class TestClientPipeline:
    def test_every_operator_flows_through_the_pipeline(self, desktop_deployment):
        client = desktop_deployment.client
        store = client.as_store()
        store.submit(StoreRequest(key="ops/a", data=b"a"))
        desktop_deployment.drain()
        store.get("ops/a")
        store.history("ops/a")
        store.verify("ops/a", b"a")
        client.get_dependencies("ops/a")
        client.query_records({"creator": "hyperprov-client"})
        client.get_by_range("ops/", "ops/~")
        counters = {
            name.split("ops.")[-1]
            for name in client.metrics.snapshot()
            if ".ops." in name
        }
        assert {
            "store_data", "get", "get_key_history", "check_hash",
            "get_dependencies", "query_records", "get_by_range",
        } <= counters

    def test_stage_breakdown_recorded_for_writes(self, desktop_deployment):
        client = desktop_deployment.client
        client.as_store().submit(StoreRequest(key="stage/a", data=b"a"))
        desktop_deployment.drain()
        endorse = client.metrics.get_histogram(STAGE_ENDORSE)
        order = client.metrics.get_histogram(STAGE_ORDER)
        commit = client.metrics.get_histogram(STAGE_COMMIT)
        assert endorse is not None and endorse.count == 1
        assert order is not None and order.count == 1
        assert commit is not None and commit.count == 1
        # Stage sum reconstructs the end-to-end commit latency.
        total = endorse.total + order.total + commit.total
        op = client.metrics.get_histogram("op.store_data.latency_s")
        assert op.total == pytest.approx(total, rel=1e-6)

    def test_request_ids_are_traced_per_operation(self, desktop_deployment):
        client = desktop_deployment.client
        seen = []
        desktop_deployment.fabric.events.subscribe(
            "pipeline.request", lambda t, p: seen.append(p["request_id"])
        )
        store = client.as_store()
        store.submit(StoreRequest(key="trace/a", data=b"a"))
        desktop_deployment.drain()
        store.get("trace/a")
        assert len(seen) == 2
        assert len(set(seen)) == 2

    def test_configure_pipeline_swaps_chain_and_closes_old_cache(self, desktop_deployment):
        client = desktop_deployment.client
        client.configure_pipeline(PipelineConfig(cache=True))
        cache = client.read_cache
        assert cache is not None
        client.configure_pipeline(PipelineConfig(cache=False))
        assert client.read_cache is None
        # The old cache unsubscribed from the network bus on close: no
        # handler remains on the chaincode-event topic it invalidated on.
        from repro.middleware.cache import PROVENANCE_RECORDED_TOPIC

        assert PROVENANCE_RECORDED_TOPIC not in desktop_deployment.fabric.events.topics()


class TestBaselinePipelines:
    def test_centraldb_operations_flow_through_pipeline(self):
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        db = CentralProvenanceDatabase(device, pipeline_config=PipelineConfig(cache=True))
        store = db.as_store()
        record = make_record("a")
        store.submit(StoreRequest(key=record.key, checksum=record.checksum,
                                  location=record.location, creator=record.creator))
        assert store.get("a").key == "a"
        assert store.get("a").key == "a"  # served from cache
        assert db.metrics.get_counter("cache.hits").value == 1
        assert db.metrics.get_counter("ops.store_record").value == 1
        assert db.metrics.get_counter("ops.get").value == 2

    def test_centraldb_store_invalidates_cache(self):
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        db = CentralProvenanceDatabase(device, pipeline_config=PipelineConfig(cache=True))
        store = db.as_store()
        store.submit(StoreRequest(key="a", checksum="1" * 64, location="db://x/a"))
        assert store.get("a").checksum == "1" * 64
        store.submit(StoreRequest(key="a", checksum="2" * 64, location="db://x/a"))
        assert store.get("a").checksum == "2" * 64  # not the stale cached version

    def test_provchain_operations_flow_through_pipeline(self):
        device = DeviceModel("miner", XEON_E5_1603, rng=DeterministicRandom(9))
        chain = PowProvenanceChain(
            device, difficulty_bits=8, pipeline_config=PipelineConfig(cache=True)
        )
        store = chain.as_store()
        store.submit(StoreRequest(key="a", checksum="1" * 64, location="pow://a"))
        view = store.get("a")
        assert view.key == "a"
        # The cache hit below the adapter returns the same backend record.
        assert store.get("a").record is view.record
        store.submit(StoreRequest(key="a", checksum="2" * 64, location="pow://a"))
        assert store.get("a").checksum == "2" * 64
        assert chain.metrics.get_counter("ops.store_record").value == 2
        assert chain.verify_chain()

    def test_default_pipeline_preserves_legacy_behaviour(self):
        """The deprecated blocking surface still works (and warns)."""
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        db = CentralProvenanceDatabase(device)
        with pytest.warns(DeprecationWarning):
            result = db.store_record(make_record("a"))
        assert result.latency_s > 0
        assert db.record_count == 1
        tampered = db.tamper("a", "f" * 64)
        with pytest.warns(DeprecationWarning):
            assert db.get("a").checksum == tampered.checksum
        assert db.detect_tampering() == []
