"""Client + baseline integration with the transaction pipeline."""

import pytest

from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.chaincode.records import ProvenanceRecord
from repro.devices.model import DeviceModel
from repro.devices.profiles import XEON_E5_1603
from repro.middleware.config import PipelineConfig
from repro.middleware.metrics import STAGE_COMMIT, STAGE_ENDORSE, STAGE_ORDER
from repro.simulation.randomness import DeterministicRandom


def make_record(key="k", checksum="0" * 64):
    return ProvenanceRecord(
        key=key,
        checksum=checksum,
        location=f"db://x/{key}",
        creator="tester",
        organization="org1",
        certificate_fingerprint="",
    )


class TestClientPipeline:
    def test_every_operator_flows_through_the_pipeline(self, desktop_deployment):
        client = desktop_deployment.client
        client.store_data("ops/a", b"a")
        desktop_deployment.drain()
        client.get("ops/a")
        client.get_key_history("ops/a")
        client.check_hash("ops/a", b"a")
        client.get_dependencies("ops/a")
        client.query_records({"creator": "hyperprov-client"})
        client.get_by_range("ops/", "ops/~")
        counters = {
            name.split("ops.")[-1]
            for name in client.metrics.snapshot()
            if ".ops." in name
        }
        assert {
            "store_data", "get", "get_key_history", "check_hash",
            "get_dependencies", "query_records", "get_by_range",
        } <= counters

    def test_stage_breakdown_recorded_for_writes(self, desktop_deployment):
        client = desktop_deployment.client
        client.store_data("stage/a", b"a")
        desktop_deployment.drain()
        endorse = client.metrics.get_histogram(STAGE_ENDORSE)
        order = client.metrics.get_histogram(STAGE_ORDER)
        commit = client.metrics.get_histogram(STAGE_COMMIT)
        assert endorse is not None and endorse.count == 1
        assert order is not None and order.count == 1
        assert commit is not None and commit.count == 1
        # Stage sum reconstructs the end-to-end commit latency.
        total = endorse.total + order.total + commit.total
        op = client.metrics.get_histogram("op.store_data.latency_s")
        assert op.total == pytest.approx(total, rel=1e-6)

    def test_request_ids_are_traced_per_operation(self, desktop_deployment):
        client = desktop_deployment.client
        seen = []
        desktop_deployment.fabric.events.subscribe(
            "pipeline.request", lambda t, p: seen.append(p["request_id"])
        )
        client.store_data("trace/a", b"a")
        desktop_deployment.drain()
        client.get("trace/a")
        assert len(seen) == 2
        assert len(set(seen)) == 2

    def test_configure_pipeline_swaps_chain_and_closes_old_cache(self, desktop_deployment):
        client = desktop_deployment.client
        client.configure_pipeline(PipelineConfig(cache=True))
        cache = client.read_cache
        assert cache is not None
        client.configure_pipeline(PipelineConfig(cache=False))
        assert client.read_cache is None
        # The old cache unsubscribed from the network bus on close.
        assert not cache._subscriptions


class TestBaselinePipelines:
    def test_centraldb_operations_flow_through_pipeline(self):
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        db = CentralProvenanceDatabase(device, pipeline_config=PipelineConfig(cache=True))
        db.store_record(make_record("a"))
        assert db.get("a").key == "a"
        assert db.get("a").key == "a"  # served from cache
        assert db.metrics.get_counter("cache.hits").value == 1
        assert db.metrics.get_counter("ops.store_record").value == 1
        assert db.metrics.get_counter("ops.get").value == 2

    def test_centraldb_store_invalidates_cache(self):
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        db = CentralProvenanceDatabase(device, pipeline_config=PipelineConfig(cache=True))
        db.store_record(make_record("a", checksum="1" * 64))
        assert db.get("a").checksum == "1" * 64
        db.store_record(make_record("a", checksum="2" * 64))
        assert db.get("a").checksum == "2" * 64  # not the stale cached version

    def test_provchain_operations_flow_through_pipeline(self):
        device = DeviceModel("miner", XEON_E5_1603, rng=DeterministicRandom(9))
        chain = PowProvenanceChain(
            device, difficulty_bits=8, pipeline_config=PipelineConfig(cache=True)
        )
        chain.store_record(make_record("a", checksum="1" * 64))
        entry = chain.get("a")
        assert entry.record.key == "a"
        assert chain.get("a") is entry  # cache hit returns the same entry
        chain.store_record(make_record("a", checksum="2" * 64))
        assert chain.get("a").record.checksum == "2" * 64
        assert chain.metrics.get_counter("ops.store_record").value == 2
        assert chain.verify_chain()

    def test_default_pipeline_preserves_legacy_behaviour(self):
        device = DeviceModel("srv", XEON_E5_1603, rng=DeterministicRandom(7))
        db = CentralProvenanceDatabase(device)
        result = db.store_record(make_record("a"))
        assert result.latency_s > 0
        assert db.record_count == 1
        tampered = db.tamper("a", "f" * 64)
        assert db.get("a").checksum == tampered.checksum
        assert db.detect_tampering() == []
