"""The shared read-cache tier: cross-session hits, isolation, thread safety."""

import threading

from repro.api.service import HyperProvService
from repro.middleware.cache import CacheEntry, ReadCacheMiddleware, SharedReadCache
from repro.middleware.config import PipelineConfig


# ----------------------------------------------------------------- the store
def entry(value):
    return CacheEntry(result=value, keys=frozenset({value}), broad=False)


def test_shared_store_lru_eviction():
    store = SharedReadCache(capacity=2)
    store.put(("c", "get", ("a",)), entry("a"))
    store.put(("c", "get", ("b",)), entry("b"))
    store.get(("c", "get", ("a",)))  # refresh "a"
    evicted = store.put(("c", "get", ("c",)), entry("c"))
    assert evicted == 1
    assert {key[2][0] for key in store.keys()} == {"a", "c"}


def test_shared_store_survives_concurrent_use():
    store = SharedReadCache(capacity=64)
    errors = []

    def worker(name):
        try:
            for i in range(500):
                key = ("c", "get", (f"{name}/{i % 80}",))
                store.put(key, entry(f"{name}/{i}"))
                store.get(key)
                if i % 7 == 0:
                    store.invalidate_key(f"{name}/{i % 80}")
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(f"t{n}",)) for n in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(store) <= 64


def test_middleware_with_shared_store_does_not_clear_it_on_close():
    store = SharedReadCache()
    middleware = ReadCacheMiddleware(store=store)
    store.put(("c", "get", ("k",)), entry("k"))
    middleware.close()
    assert len(store) == 1  # the tier outlives any one pipeline
    private = ReadCacheMiddleware()
    private.store.put(("c", "get", ("k",)), entry("k"))
    private.close()
    assert len(private.store) == 0  # private stores are torn down


# ------------------------------------------------------------- service knob
def test_sessions_share_one_cache_tier(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    config = PipelineConfig(cache=True, shared_cache=True)

    with service.session(tenant="a", pipeline=config) as writer:
        writer.submit("hot", b"v1")
        writer.drain()
        writer.get("hot")  # populates the shared tier

    with service.session(tenant="a", pipeline=config) as reader:
        reader.get("hot")
    metrics = desktop_deployment.client.metrics
    # Both sessions used their own pipelines but one backing store: the
    # second session's read is a hit without ever having missed.
    tier = service.shared_cache()
    assert len(tier) >= 1
    assert metrics is not None  # deployment untouched by tenant sessions


def test_shared_cache_keeps_tenants_isolated(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    config = PipelineConfig(cache=True, shared_cache=True)

    with service.session(tenant="a", pipeline=config) as tenant_a:
        tenant_a.submit("secret", b"a-data")
        tenant_a.drain()
        tenant_a.get("secret")

    with service.session(tenant="b", pipeline=config) as tenant_b:
        tenant_b.submit("secret", b"b-data")
        tenant_b.drain()
        view = tenant_b.get("secret")
    from repro.common.hashing import checksum_of
    # Tenant b never observes tenant a's cached row for the same relative
    # key: entries are keyed on the namespaced arguments.
    assert view.checksum == checksum_of(b"b-data")
    cached_args = {key[2][0] for key in service.shared_cache().keys()}
    assert "tenant/a/secret" in cached_args
    assert "tenant/b/secret" in cached_args


def test_shared_cache_commit_invalidation_spans_sessions(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    config = PipelineConfig(cache=True, shared_cache=True)

    with service.session(tenant="a", pipeline=config) as first:
        first.submit("inv", b"v1")
        first.drain()
        first.get("inv")

        with service.session(tenant="a", pipeline=config) as second:
            # Second session overwrites; the commit event must purge the
            # shared entry the first session created.
            second.submit("inv", b"v2")
            second.drain()
            refreshed = second.get("inv")
    from repro.common.hashing import checksum_of
    assert refreshed.checksum == checksum_of(b"v2")


def test_shared_tier_invalidates_even_with_no_session_open(desktop_deployment):
    """Regression: the service keeps its own invalidation subscription, so
    a commit while no shared-cache session is open still purges entries."""
    from repro.common.hashing import checksum_of

    service = HyperProvService(desktop_deployment)
    config = PipelineConfig(cache=True, shared_cache=True)

    with service.session(tenant="a", pipeline=config) as first:
        first.submit("phantom", b"v1")
        first.drain()
        first.get("phantom")  # cached in the shared tier
    # Overwrite through a plain (non-shared-cache) session while nothing
    # holding the shared tier is open.
    with service.session(tenant="a") as writer:
        writer.submit("phantom", b"v2")
        writer.drain()
    with service.session(tenant="a", pipeline=config) as reader:
        assert reader.get("phantom").checksum == checksum_of(b"v2")


def test_shared_tier_capacity_grows_to_largest_request(desktop_deployment):
    service = HyperProvService(desktop_deployment)
    assert service.shared_cache(capacity=8).capacity == 8
    assert service.shared_cache(capacity=64).capacity == 64
    assert service.shared_cache(capacity=4).capacity == 64  # never shrinks
