"""Property-based tests (hypothesis) on core data-structure invariants."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.common.hashing import HashChain, checksum_of
from repro.common.serialization import canonical_json, from_canonical_json
from repro.crypto.merkle import MerkleTree
from repro.ledger.block import Block
from repro.ledger.blockchain import BlockStore
from repro.ledger.transaction import ReadWriteSet, Transaction
from repro.ledger.world_state import WorldState
from repro.membership.policies import OutOfPolicy, SignaturePolicy
from repro.simulation.resources import SimResource

payloads = st.binary(min_size=0, max_size=256)
keys = st.text(alphabet="abcdefghij/", min_size=1, max_size=12)


def make_tx(tx_id: str, key: str, value: str) -> Transaction:
    rw_set = ReadWriteSet()
    rw_set.add_write(key, value)
    return Transaction(
        tx_id=tx_id, channel="ch", chaincode="cc", function="set",
        args=[key, value], rw_set=rw_set,
    )


# ----------------------------------------------------------------------- hashes
@given(st.lists(payloads, max_size=20))
def test_hash_chain_verify_roundtrip(items):
    chain = HashChain()
    for item in items:
        chain.extend(item)
    assert chain.verify(items)


@given(st.lists(payloads, min_size=1, max_size=20), st.integers(min_value=0, max_value=19))
def test_hash_chain_detects_any_single_mutation(items, index):
    index = index % len(items)
    chain = HashChain()
    for item in items:
        chain.extend(item)
    mutated = list(items)
    mutated[index] = mutated[index] + b"\x01"
    assert not chain.verify(mutated)


@given(st.lists(payloads, min_size=1, max_size=32))
def test_merkle_proofs_verify_for_all_leaves(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)


@given(st.lists(payloads, min_size=2, max_size=16), st.integers(min_value=0, max_value=15))
def test_merkle_proof_rejects_substituted_leaf(leaves, index):
    index = index % len(leaves)
    tree = MerkleTree(leaves)
    substitute = leaves[index] + b"\xff"
    assert not MerkleTree.verify_proof(substitute, tree.proof(index), tree.root)


# ----------------------------------------------------------------- serialization
@given(
    st.recursive(
        st.one_of(st.integers(), st.booleans(), st.text(max_size=20), st.none(),
                  st.binary(max_size=32)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(max_size=8), children, max_size=4),
        ),
        max_leaves=16,
    )
)
def test_canonical_json_roundtrip(value):
    assert from_canonical_json(canonical_json(value)) == value


@given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=8))
def test_canonical_json_is_key_order_independent(mapping):
    reordered = dict(reversed(list(mapping.items())))
    assert canonical_json(mapping) == canonical_json(reordered)


# ------------------------------------------------------------------- world state
@given(st.lists(st.tuples(keys, st.text(max_size=8)), max_size=40))
def test_world_state_last_write_wins(writes):
    state = WorldState()
    expected = {}
    for position, (key, value) in enumerate(writes):
        state.put(key, value, (0, position))
        expected[key] = value
    assert state.snapshot() == expected
    for key, value in expected.items():
        assert state.get_value(key) == value


@given(st.lists(keys, min_size=1, max_size=30))
def test_world_state_range_query_is_sorted_and_complete(key_list):
    state = WorldState()
    for position, key in enumerate(key_list):
        state.put(key, "v", (0, position))
    results = state.range_query("", "")
    assert [key for key, _ in results] == sorted(set(key_list))


# -------------------------------------------------------------------- block store
@settings(max_examples=25)
@given(st.lists(st.lists(st.tuples(keys, st.text(max_size=4)), min_size=1, max_size=4),
                min_size=1, max_size=8))
def test_block_store_chain_always_verifies(batches):
    store = BlockStore()
    counter = 0
    for number, batch in enumerate(batches):
        txs = []
        for key, value in batch:
            txs.append(make_tx(f"t{counter}", key, value))
            counter += 1
        store.append(Block.build(number, store.latest_hash, txs, timestamp=float(number)))
    assert store.verify_chain()
    assert store.height == len(batches)
    assert store.total_transactions == counter


# --------------------------------------------------------------------- resources
@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100),
                          st.floats(min_value=0, max_value=5)), max_size=40),
       st.integers(min_value=1, max_value=4))
def test_resource_reservations_never_overlap_per_slot(requests, concurrency):
    resource = SimResource("cpu", concurrency=concurrency)
    total = 0.0
    last_starts = []
    for requested_at, duration in requests:
        reservation = resource.reserve(requested_at, duration)
        assert reservation.start >= requested_at
        assert reservation.end - reservation.start == pytest.approx(duration, abs=1e-9)
        total += duration
        last_starts.append(reservation.start)
    assert resource.busy_time == pytest.approx(total, abs=1e-9)


# ----------------------------------------------------------------------- policies
@given(st.sets(st.sampled_from(["org1", "org2", "org3", "org4", "org5"]), max_size=5),
       st.integers(min_value=1, max_value=5))
def test_out_of_policy_threshold_semantics(signers, threshold):
    orgs = ["org1", "org2", "org3", "org4", "org5"]
    policy = OutOfPolicy(threshold, [SignaturePolicy(org) for org in orgs])
    satisfied = policy.evaluate(signers)
    assert satisfied == (len(signers & set(orgs)) >= threshold)


# ---------------------------------------------------------------------- checksums
@given(payloads, payloads)
def test_checksum_equality_iff_payload_equality(a, b):
    if a == b:
        assert checksum_of(a) == checksum_of(b)
    else:
        assert checksum_of(a) != checksum_of(b)
