"""Randomized oracle tests: planner access paths vs a naive full scan.

The rich-query planner picks between posting-list intersection, a prefix
run and a full scan per selector.  These tests drive an indexed and an
unindexed world state with the same interleaved put/delete churn (re-puts
of deleted keys included, so index tombstone handling is exercised) and
assert, for randomized selectors:

* the chaincode's response is **byte-identical** with and without the
  secondary index — access-path choice never changes results;
* both agree with a trivially correct oracle that re-scans every document
  per query with independently re-implemented match semantics;
* paginated walks concatenate to exactly the unpaginated answer;
* over a run, the planner genuinely exercises more than one access path
  (otherwise the equivalence claim is vacuous).
"""

import json
import random

import pytest

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.chaincode.records import ProvenanceRecord
from repro.chaincode.shim import ChaincodeStub
from repro.common.hashing import checksum_of
from repro.ledger.history import HistoryDatabase
from repro.ledger.world_state import WorldState
from repro.query.indexes import FieldValueIndex

INDEX_FIELDS = ("creator", "organization", "metadata.*")

CREATORS = ["cam-1", "cam-2", "gw-1", ""]
ORGANIZATIONS = ["org1", "org2", "org3"]
STATIONS = ["tromso", "alta", "vardo"]


def _random_key(rng: random.Random) -> str:
    segment = rng.choice(["tenant", "perf", "iot", "x", "audit"])
    # Small key space on purpose: collisions exercise re-puts of deleted
    # and overwritten keys (and their index tombstones).
    return f"{segment}/{rng.randrange(60):03d}"


def _random_value(rng: random.Random, key: str, step: int) -> str:
    metadata = {}
    if rng.random() < 0.8:
        metadata["station"] = rng.choice(STATIONS)
    if rng.random() < 0.5:
        metadata["hot"] = rng.random() < 0.5
    return ProvenanceRecord(
        key=key,
        checksum=checksum_of(f"{key}@{step}".encode()),
        location=f"ssh://storage/{key}",
        creator=rng.choice(CREATORS),
        organization=rng.choice(ORGANIZATIONS),
        certificate_fingerprint="fp",
        metadata=metadata,
    ).to_json()


def _random_selector(rng: random.Random) -> dict:
    selector = {}
    if rng.random() < 0.6:
        selector["creator"] = rng.choice(CREATORS)
    if rng.random() < 0.4:
        selector["organization"] = rng.choice(ORGANIZATIONS)
    if rng.random() < 0.4:
        selector["metadata.station"] = rng.choice(STATIONS)
    if rng.random() < 0.15:
        selector["metadata.hot"] = rng.random() < 0.5
    if rng.random() < 0.35 or not selector:
        selector["_prefix"] = rng.choice(["tenant/", "iot/", "perf/0", ""])
        if not selector.get("_prefix") and len(selector) == 1:
            selector["creator"] = rng.choice(CREATORS)
    return selector


def _oracle_matches(document: dict, field: str, expected) -> bool:
    """Independent re-implementation of one selector equality."""
    if field.startswith("metadata."):
        return (document.get("metadata") or {}).get(field[len("metadata."):]) == expected
    defaults = {"creator": "", "organization": "", "checksum": ""}
    return document.get(field, defaults.get(field)) == expected


def _oracle_query(documents: dict, selector: dict) -> list:
    """The naive full scan: every live document, checked field by field."""
    prefix = selector.get("_prefix", "")
    rows = []
    for key in sorted(documents):
        if prefix and not key.startswith(prefix):
            continue
        document = json.loads(documents[key])
        if all(
            _oracle_matches(document, field, expected)
            for field, expected in selector.items()
            if not field.startswith("_")
        ):
            rows.append(key)
    return rows


def _query(state: WorldState, selector: dict):
    response = HyperProvChaincode().invoke(
        ChaincodeStub(
            tx_id="tx-q",
            channel="ch",
            function="query",
            args=[json.dumps(selector, sort_keys=True)],
            world_state=state,
            history=HistoryDatabase(),
            creator=None,
            timestamp=1.0,
        )
    )
    assert response.is_ok, response.payload
    return response.payload


@pytest.mark.parametrize("seed", [1, 7, 42, 1337])
def test_planner_paths_match_the_naive_full_scan_oracle(seed):
    rng = random.Random(seed)
    indexed = WorldState()
    indexed.attach_secondary_index(FieldValueIndex(INDEX_FIELDS))
    plain = WorldState()
    documents = {}
    paths_seen = set()

    def check_equivalence():
        for _ in range(4):
            selector = _random_selector(rng)
            with_index = _query(indexed, selector)
            without = _query(plain, selector)
            # Access path must never change the response bytes.
            assert with_index == without
            keys = [row["key"] for row in json.loads(without)]
            assert keys == _oracle_query(documents, selector)
            # Record which path the planner actually chose.
            explained = json.loads(
                _query(indexed, {**selector, "_explain": True})
            )
            paths_seen.add(explained["plan"]["access_path"])

    def check_paginated_walk():
        selector = _random_selector(rng)
        collected, bookmark = [], ""
        for _page in range(100):
            request = {**selector, "_limit": 3}
            if bookmark:
                request["_bookmark"] = bookmark
            with_index = _query(indexed, request)
            assert with_index == _query(plain, request)
            envelope = json.loads(with_index)
            collected.extend(row["key"] for row in envelope["records"])
            if not envelope["bookmark"]:
                break
            bookmark = envelope["bookmark"]
        assert collected == _oracle_query(documents, selector)

    for step in range(600):
        key = _random_key(rng)
        version = (step // 10, step % 10)
        # Delete-heavy mix so index tombstone cleanup triggers repeatedly.
        if rng.random() < 0.45:
            indexed.delete(key, version)
            plain.delete(key, version)
            documents.pop(key, None)
        else:
            value = _random_value(rng, key, step)
            indexed.put(key, value, version)
            plain.put(key, value, version)
            documents[key] = value
        if step % 37 == 0:
            check_equivalence()
        if step % 149 == 0:
            check_paginated_walk()
    check_equivalence()
    check_paginated_walk()

    # The equivalence is only meaningful if several paths actually ran.
    assert "index-intersection" in paths_seen
    assert paths_seen & {"prefix", "scan"}
