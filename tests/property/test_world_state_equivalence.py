"""Randomized oracle tests: the indexed WorldState vs a naive sorted scan.

The production :class:`WorldState` keeps a bisect-maintained sorted key
index with lazily compacted tombstones plus a secondary prefix index.
These tests drive it with interleaved put/delete sequences and assert
that every query surface (range, prefix, delete, version lookups,
iteration order) matches a trivially correct reference implementation
that re-sorts the whole key space per call — the seed implementation.
"""

import random

import pytest

from repro.ledger.world_state import WorldState


class NaiveWorldState:
    """Reference oracle: a dict re-sorted on every query (seed behaviour)."""

    def __init__(self):
        self._data = {}

    def put(self, key, value, version):
        self._data[key] = (value, version)

    def delete(self, key, version):
        self._data.pop(key, None)

    def keys(self):
        return sorted(self._data)

    def items(self):
        return [(key, self._data[key]) for key in sorted(self._data)]

    def get_value(self, key):
        entry = self._data.get(key)
        return entry[0] if entry else None

    def get_version(self, key):
        entry = self._data.get(key)
        return entry[1] if entry else None

    def range_query(self, start_key, end_key):
        results = []
        for key in sorted(self._data):
            if key < start_key:
                continue
            if end_key and key >= end_key:
                break
            results.append((key, self._data[key][0]))
        return results

    def query_by_prefix(self, prefix):
        return [
            (key, self._data[key][0])
            for key in sorted(self._data)
            if key.startswith(prefix)
        ]


def _random_key(rng: random.Random) -> str:
    segment = rng.choice(["tenant", "perf", "iot", "x", "audit"])
    # Small key space on purpose: collisions exercise re-puts of deleted
    # and overwritten keys.
    return f"{segment}/{rng.randrange(60):03d}"


def _assert_equivalent(state: WorldState, oracle: NaiveWorldState, rng: random.Random):
    assert state.keys() == oracle.keys()
    assert [key for key, _ in state.items()] == oracle.keys()
    assert len(state) == len(oracle.keys())
    # Point lookups (hits and misses) agree, including versions.
    for key in oracle.keys()[:5] + [_random_key(rng) for _ in range(5)]:
        assert state.get_value(key) == oracle.get_value(key)
        assert state.get_version(key) == oracle.get_version(key)
        assert (key in state) == (oracle.get_value(key) is not None)
    # Range queries, including open-ended and empty ranges.
    bounds = sorted([_random_key(rng), _random_key(rng)])
    assert state.range_query(bounds[0], bounds[1]) == oracle.range_query(*bounds)
    assert state.range_query("", "") == oracle.range_query("", "")
    assert state.range_query(bounds[1], bounds[0]) == \
        oracle.range_query(bounds[1], bounds[0])
    # Prefix queries: bucket-resolved, cross-bucket, and missing prefixes.
    for prefix in ("tenant/", "perf/0", "", "nosuch/", "x", _random_key(rng)):
        assert state.query_by_prefix(prefix) == oracle.query_by_prefix(prefix)


@pytest.mark.parametrize("seed", [1, 7, 42, 1337])
@pytest.mark.parametrize("prefix_index", [True, False])
def test_indexed_world_state_matches_naive_oracle(seed, prefix_index):
    rng = random.Random(seed)
    state = WorldState(prefix_index=prefix_index)
    oracle = NaiveWorldState()
    for step in range(600):
        key = _random_key(rng)
        version = (step // 10, step % 10)
        # Delete-heavy mix so tombstone compaction triggers repeatedly.
        if rng.random() < 0.45:
            state.delete(key, version)
            oracle.delete(key, version)
        else:
            value = f"value-{step}"
            state.put(key, value, version)
            oracle.put(key, value, version)
        if step % 37 == 0:
            _assert_equivalent(state, oracle, rng)
    _assert_equivalent(state, oracle, rng)


def test_delete_then_reput_does_not_duplicate_index_entries():
    state = WorldState()
    for round_number in range(40):
        state.put("a/1", f"v{round_number}", (round_number, 0))
        state.delete("a/1", (round_number, 1))
    state.put("a/1", "final", (99, 0))
    assert state.keys() == ["a/1"]
    assert state.range_query("", "") == [("a/1", "final")]
    assert state.query_by_prefix("a/") == [("a/1", "final")]


def test_mass_delete_triggers_compaction_and_queries_stay_correct():
    state = WorldState()
    for index in range(500):
        state.put(f"k/{index:04d}", str(index), (0, index))
    for index in range(0, 500, 2):
        state.delete(f"k/{index:04d}", (1, index))
    survivors = [f"k/{index:04d}" for index in range(1, 500, 2)]
    assert state.keys() == survivors
    assert [key for key, _ in state.range_query("k/0100", "k/0110")] == [
        "k/0101", "k/0103", "k/0105", "k/0107", "k/0109"
    ]
    assert len(state.query_by_prefix("k/")) == len(survivors)


def test_bulk_delete_while_iterating_items_is_safe():
    """Regression: a compaction triggered mid-iteration must not shift the
    scan's positions (the pre-index code iterated a sorted() snapshot)."""
    state = WorldState()
    for index in range(100):
        state.put(f"k{index:03d}", "v", (0, index))
    seen = []
    for key, _entry in state.items():
        seen.append(key)
        state.delete(key, (1, 0))
    assert seen == [f"k{index:03d}" for index in range(100)]
    assert len(state) == 0
    assert state.keys() == []


def test_snapshot_matches_live_state_after_interleaving():
    rng = random.Random(3)
    state = WorldState()
    oracle = NaiveWorldState()
    for step in range(200):
        key = _random_key(rng)
        if rng.random() < 0.3:
            state.delete(key, (0, step))
            oracle.delete(key, (0, step))
        else:
            state.put(key, str(step), (0, step))
            oracle.put(key, str(step), (0, step))
    assert state.snapshot() == {key: oracle.get_value(key) for key in oracle.keys()}
