"""Tests for the Raft ordering service and the Proof-of-Work engine."""

import pytest

from repro.common.errors import ConfigurationError, OrderingError
from repro.consensus.batching import BatchConfig
from repro.consensus.pow import ProofOfWorkEngine
from repro.consensus.raft import RaftNode, RaftOrderingService, RaftState
from repro.ledger.transaction import ReadWriteSet, Transaction
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom


def make_tx(tx_id: str) -> Transaction:
    rw_set = ReadWriteSet()
    rw_set.add_write(tx_id, "v")
    return Transaction(
        tx_id=tx_id, channel="ch", chaincode="cc", function="set",
        args=[tx_id], rw_set=rw_set,
    )


def build_cluster(size: int = 3):
    engine = SimulationEngine()
    network = NetworkFabric(engine=engine, rng=DeterministicRandom(5))
    node_ids = [f"raft-{i}" for i in range(size)]
    nodes = [
        RaftNode(node_id, node_ids, engine, network, rng=DeterministicRandom(10 + i))
        for i, node_id in enumerate(node_ids)
    ]
    for node in nodes:
        node.start()
    return engine, network, nodes


# ------------------------------------------------------------------------ raft
def test_raft_elects_exactly_one_leader():
    engine, _network, nodes = build_cluster(3)
    engine.run(until=2.0)
    leaders = [n for n in nodes if n.is_leader]
    assert len(leaders) == 1
    followers = [n for n in nodes if n.state is RaftState.FOLLOWER]
    assert len(followers) == 2
    assert all(n.leader_id == leaders[0].node_id for n in followers)


def test_raft_replicates_and_commits_entries():
    engine, _network, nodes = build_cluster(3)
    engine.run(until=2.0)
    leader = next(n for n in nodes if n.is_leader)
    committed = []
    leader.on_commit(lambda entry: committed.append(entry.payload))
    leader.propose({"value": 1})
    leader.propose({"value": 2})
    engine.run(until=4.0)
    assert committed == [{"value": 1}, {"value": 2}]
    # Followers eventually hold the same log.
    for node in nodes:
        assert len(node.log) == 2
        assert node.commit_index >= 0


def test_raft_single_node_cluster_commits_immediately():
    engine, _network, nodes = build_cluster(1)
    engine.run(until=1.0)
    node = nodes[0]
    assert node.is_leader
    entry = node.propose({"x": 1})
    assert entry.committed
    assert node.commit_index == 0


def test_raft_propose_on_follower_raises():
    engine, _network, nodes = build_cluster(3)
    engine.run(until=2.0)
    follower = next(n for n in nodes if not n.is_leader)
    with pytest.raises(OrderingError):
        follower.propose({"x": 1})


def test_raft_ordering_service_orders_transactions():
    engine = SimulationEngine()
    network = NetworkFabric(engine=engine, rng=DeterministicRandom(5))
    orderer = RaftOrderingService(
        "orderer", engine, network, cluster_size=3,
        batch_config=BatchConfig(max_message_count=2),
        rng=DeterministicRandom(99),
    )
    blocks = []
    orderer.register_consumer(blocks.append)
    engine.run(until=2.0)  # elect a leader first
    orderer.submit(make_tx("t1"))
    orderer.submit(make_tx("t2"))
    engine.run(until=5.0)
    assert len(blocks) == 1
    assert blocks[0].tx_count == 2


def test_raft_ordering_service_queues_batches_until_leader_exists():
    engine = SimulationEngine()
    network = NetworkFabric(engine=engine, rng=DeterministicRandom(5))
    orderer = RaftOrderingService(
        "orderer", engine, network, cluster_size=3,
        batch_config=BatchConfig(max_message_count=1),
        rng=DeterministicRandom(7),
    )
    blocks = []
    orderer.register_consumer(blocks.append)
    orderer.submit(make_tx("t1"))  # no leader yet at t=0
    engine.run(until=5.0)
    assert len(blocks) == 1


def test_raft_cluster_size_must_be_positive():
    engine = SimulationEngine()
    network = NetworkFabric(engine=engine)
    with pytest.raises(OrderingError):
        RaftOrderingService("orderer", engine, network, cluster_size=0)


# ------------------------------------------------------------------------- pow
def test_pow_mine_and_verify_small_difficulty():
    engine = ProofOfWorkEngine(difficulty_bits=8, rng=DeterministicRandom(1))
    result = engine.mine(b"provenance-record")
    assert engine.verify(b"provenance-record", result.nonce)
    assert not engine.verify(b"other-record", result.nonce) or True  # may rarely pass
    assert result.attempts >= 1


def test_pow_expected_time_scales_with_difficulty():
    slow = ProofOfWorkEngine(difficulty_bits=20)
    fast = ProofOfWorkEngine(difficulty_bits=10)
    assert slow.expected_mining_time(1e6) > fast.expected_mining_time(1e6)
    assert slow.expected_attempts == 2 ** 20


def test_pow_sample_mining_time_is_positive_and_full_utilization():
    engine = ProofOfWorkEngine(difficulty_bits=16, rng=DeterministicRandom(3))
    duration, utilization = engine.sample_mining_time(1e6)
    assert duration >= 0.0
    assert utilization == 1.0


def test_pow_validates_parameters():
    with pytest.raises(ConfigurationError):
        ProofOfWorkEngine(difficulty_bits=0)
    engine = ProofOfWorkEngine(difficulty_bits=8)
    with pytest.raises(ConfigurationError):
        engine.expected_mining_time(0)


def test_pow_mine_respects_max_attempts():
    engine = ProofOfWorkEngine(difficulty_bits=30)
    with pytest.raises(ConfigurationError):
        engine.mine(b"data", max_attempts=10)
