"""Property-style fairness tests: a heavy tenant must not starve light ones.

The scenario matches the sharding ablation's tenant-isolation experiment:
the orderer has an explicit per-envelope intake cost, the heavy tenant
bursts ``skew``× the light tenant's load into the queue, and the intake
scheduler decides who waits.  Deterministic seeds make the latency
assertions exact rather than flaky.
"""

import pytest

from repro.api.service import HyperProvService
from repro.consensus.batching import BatchConfig
from repro.core.topology import build_desktop_deployment
from repro.workloads.scenarios import SkewedTenantWorkload

LIGHT_REQUESTS = 10
SKEW = 10


def run_workload(scheduler, only_light=False, seed=42):
    deployment = build_desktop_deployment(
        seed=seed,
        scheduler=scheduler,
        orderer_intake_interval_s=0.01,
        batch_config=BatchConfig(batch_timeout_s=0.25),
    )
    workload = SkewedTenantWorkload(
        HyperProvService(deployment),
        light_requests=LIGHT_REQUESTS,
        skew=SKEW,
        light_interval_s=0.05,
        heavy_interval_s=0.001,
    )
    return workload.run(only_light=only_light)


@pytest.fixture(scope="module")
def measurements():
    return {
        "solo": run_workload("fifo", only_light=True)["light"],
        "fifo": run_workload("fifo"),
        "fair": run_workload("fair-share"),
    }


def test_every_run_commits_all_submissions(measurements):
    assert measurements["solo"].committed == LIGHT_REQUESTS
    for run in ("fifo", "fair"):
        assert measurements[run]["light"].committed == LIGHT_REQUESTS
        assert measurements[run]["heavy"].committed == LIGHT_REQUESTS * SKEW


def test_fifo_baseline_shows_the_starvation_gap(measurements):
    """Under FIFO the light tenant queues behind the heavy burst."""
    solo = measurements["solo"].p95_response_s
    fifo_light = measurements["fifo"]["light"].p95_response_s
    assert fifo_light / solo >= 2.0


def test_fair_share_bounds_light_tenant_latency(measurements):
    """With fair-share intake the light tenant's p95 stays within a
    bounded factor of its solo run despite the 10x heavier neighbour."""
    solo = measurements["solo"].p95_response_s
    fair_light = measurements["fair"]["light"].p95_response_s
    assert fair_light / solo <= 2.5


def test_fair_share_beats_fifo_for_the_light_tenant(measurements):
    fifo_light = measurements["fifo"]["light"].p95_response_s
    fair_light = measurements["fair"]["light"].p95_response_s
    assert fair_light < fifo_light * 0.75


def test_fair_share_does_not_collapse_heavy_throughput(measurements):
    """Fairness reorders, it does not throttle: the heavy tenant still
    commits everything, at a p95 within 2x of its FIFO run."""
    fifo_heavy = measurements["fifo"]["heavy"].p95_response_s
    fair_heavy = measurements["fair"]["heavy"].p95_response_s
    assert fair_heavy <= fifo_heavy * 2.0
