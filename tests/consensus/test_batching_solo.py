"""Tests for block cutting and the Solo ordering service."""

import pytest

from repro.common.errors import ConfigurationError, OrderingError
from repro.consensus.batching import BatchConfig, BlockCutter
from repro.consensus.solo import SoloOrderingService
from repro.ledger.transaction import ReadWriteSet, Transaction
from repro.simulation.engine import SimulationEngine


def make_tx(tx_id: str, payload: str = "v") -> Transaction:
    rw_set = ReadWriteSet()
    rw_set.add_write(tx_id, payload)
    return Transaction(
        tx_id=tx_id, channel="ch", chaincode="cc", function="set",
        args=[tx_id, payload], rw_set=rw_set,
    )


# -------------------------------------------------------------------- batching
def test_batch_config_validation():
    with pytest.raises(ConfigurationError):
        BatchConfig(max_message_count=0).validate()
    with pytest.raises(ConfigurationError):
        BatchConfig(preferred_max_bytes=10).validate()
    with pytest.raises(ConfigurationError):
        BatchConfig(batch_timeout_s=0).validate()


def test_cutter_cuts_on_message_count():
    cutter = BlockCutter(BatchConfig(max_message_count=3))
    assert cutter.add(make_tx("t1"), now=0.0) is None
    assert cutter.add(make_tx("t2"), now=0.1) is None
    batch = cutter.add(make_tx("t3"), now=0.2)
    assert batch is not None and len(batch) == 3
    assert cutter.pending_count == 0


def test_cutter_cuts_on_byte_limit():
    cutter = BlockCutter(BatchConfig(max_message_count=100, preferred_max_bytes=2048))
    batch = None
    for i in range(10):
        batch = cutter.add(make_tx(f"t{i}", payload="x" * 600), now=0.0)
        if batch:
            break
    assert batch is not None
    assert len(batch) < 10


def test_cutter_oversized_transaction_goes_alone():
    cutter = BlockCutter(BatchConfig(max_message_count=10, preferred_max_bytes=2048))
    batch = cutter.add(make_tx("big", payload="x" * 10_000), now=0.0)
    assert batch is not None
    assert [tx.tx_id for tx in batch] == ["big"]


def test_cutter_timeout_cut():
    cutter = BlockCutter(BatchConfig(max_message_count=10, batch_timeout_s=2.0))
    cutter.add(make_tx("t1"), now=0.0)
    assert cutter.check_timeout(now=1.0) is None
    batch = cutter.check_timeout(now=2.5)
    assert batch is not None and len(batch) == 1


def test_cutter_timeout_deadline_and_flush():
    cutter = BlockCutter(BatchConfig(batch_timeout_s=1.5))
    assert cutter.next_timeout_deadline() is None
    cutter.add(make_tx("t1"), now=3.0)
    assert cutter.next_timeout_deadline() == pytest.approx(4.5)
    batch = cutter.flush()
    assert batch is not None
    assert cutter.flush() is None


# ------------------------------------------------------------------------ solo
def test_solo_orderer_cuts_block_on_count():
    engine = SimulationEngine()
    orderer = SoloOrderingService("orderer", engine, BatchConfig(max_message_count=2))
    blocks = []
    orderer.register_consumer(blocks.append)
    orderer.submit(make_tx("t1"))
    orderer.submit(make_tx("t2"))
    assert len(blocks) == 1
    assert blocks[0].tx_count == 2
    assert blocks[0].number == 0


def test_solo_orderer_requires_consumer():
    engine = SimulationEngine()
    orderer = SoloOrderingService("orderer", engine, BatchConfig(max_message_count=1))
    with pytest.raises(OrderingError):
        orderer.submit(make_tx("t1"))


def test_solo_orderer_timeout_cuts_partial_batch():
    engine = SimulationEngine()
    orderer = SoloOrderingService(
        "orderer", engine, BatchConfig(max_message_count=10, batch_timeout_s=1.0)
    )
    blocks = []
    orderer.register_consumer(blocks.append)
    orderer.submit(make_tx("t1"))
    assert blocks == []
    engine.run_until_idle()
    assert len(blocks) == 1
    assert engine.now >= 1.0


def test_solo_orderer_blocks_are_hash_linked():
    engine = SimulationEngine()
    orderer = SoloOrderingService("orderer", engine, BatchConfig(max_message_count=1))
    blocks = []
    orderer.register_consumer(blocks.append)
    for i in range(3):
        orderer.submit(make_tx(f"t{i}"))
    assert [b.number for b in blocks] == [0, 1, 2]
    assert blocks[1].header.previous_hash == blocks[0].hash
    assert blocks[2].header.previous_hash == blocks[1].hash


def test_solo_orderer_flush_delivers_pending():
    engine = SimulationEngine()
    orderer = SoloOrderingService("orderer", engine, BatchConfig(max_message_count=100))
    blocks = []
    orderer.register_consumer(blocks.append)
    orderer.submit(make_tx("t1"))
    orderer.flush()
    assert len(blocks) == 1


def test_solo_orderer_with_delay_defers_delivery():
    engine = SimulationEngine()
    orderer = SoloOrderingService(
        "orderer", engine, BatchConfig(max_message_count=1), ordering_delay_s=0.5
    )
    blocks = []
    orderer.register_consumer(blocks.append)
    orderer.submit(make_tx("t1"))
    assert blocks == []
    engine.run_until_idle()
    assert len(blocks) == 1
    assert engine.now == pytest.approx(0.5)


def test_solo_orderer_metrics_and_counters():
    engine = SimulationEngine()
    orderer = SoloOrderingService("orderer", engine, BatchConfig(max_message_count=2))
    orderer.register_consumer(lambda block: None)
    for i in range(4):
        orderer.submit(make_tx(f"t{i}"))
    assert orderer.blocks_delivered == 2
    assert orderer.transactions_ordered == 4
