"""Unit tests for the pluggable orderer intake schedulers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.consensus.batching import BatchConfig
from repro.consensus.scheduler import (
    FairShareScheduler,
    FifoScheduler,
    interleave_positions,
    make_scheduler,
    tenant_of_key,
    tenant_of_transaction,
)
from repro.consensus.solo import SoloOrderingService
from repro.ledger.transaction import ReadWriteSet, Transaction
from repro.simulation.engine import SimulationEngine


def make_tx(tx_id, key):
    rw_set = ReadWriteSet()
    rw_set.add_write(key, "v")
    return Transaction(
        tx_id=tx_id, channel="ch", chaincode="cc", function="set",
        args=[key], rw_set=rw_set,
    )


# ------------------------------------------------------------ tenant parsing
def test_tenant_of_key_parses_namespaced_keys():
    assert tenant_of_key("tenant/acme/item/1") == "acme"
    assert tenant_of_key("item/1") == ""
    assert tenant_of_key("tenant/loner") == ""  # no key below the prefix


def test_tenant_of_transaction_prefers_write_set():
    tx = make_tx("t1", "tenant/a/k")
    assert tenant_of_transaction(tx) == "a"
    bare = make_tx("t2", "plain/k")
    assert tenant_of_transaction(bare) == ""


# --------------------------------------------------------------------- fifo
def test_fifo_scheduler_preserves_arrival_order():
    scheduler = FifoScheduler()
    for i in range(5):
        scheduler.enqueue(make_tx(f"t{i}", f"tenant/a/k{i}"))
    order = [scheduler.next_transaction().tx_id for _ in range(5)]
    assert order == [f"t{i}" for i in range(5)]
    assert scheduler.next_transaction() is None
    assert scheduler.pending == 0


# --------------------------------------------------------------- fair share
def test_fair_share_interleaves_tenants_one_to_one():
    scheduler = FairShareScheduler()
    # Heavy tenant enqueues a 10x backlog before light's first arrival.
    for i in range(10):
        scheduler.enqueue(make_tx(f"h{i}", f"tenant/heavy/k{i}"))
    scheduler.enqueue(make_tx("l0", "tenant/light/k0"))
    scheduler.enqueue(make_tx("l1", "tenant/light/k1"))
    served = [scheduler.next_transaction() for _ in range(scheduler.pending)]
    positions = interleave_positions(served)
    # The light tenant is served within the first rounds, not after the
    # heavy backlog drains (FIFO would put it at positions 10 and 11).
    assert positions["light"] == [1, 3]
    assert scheduler.served["heavy"] == 10


def test_fair_share_weights_buy_extra_slots():
    scheduler = FairShareScheduler(weights={"gold": 2.0})
    for i in range(6):
        scheduler.enqueue(make_tx(f"g{i}", f"tenant/gold/k{i}"))
        scheduler.enqueue(make_tx(f"s{i}", f"tenant/silver/k{i}"))
    served = [scheduler.next_transaction() for _ in range(12)]
    first_six = [tenant_of_transaction(tx) for tx in served[:6]]
    # Per round: gold serves two for silver's one.
    assert first_six.count("gold") == 4
    assert first_six.count("silver") == 2


def test_fair_share_rejects_non_positive_weights():
    with pytest.raises(ConfigurationError):
        FairShareScheduler(weights={"a": 0})
    with pytest.raises(ConfigurationError):
        FairShareScheduler(default_weight=-1)


def test_fair_share_pending_by_tenant():
    scheduler = FairShareScheduler()
    scheduler.enqueue(make_tx("a0", "tenant/a/k"))
    scheduler.enqueue(make_tx("b0", "tenant/b/k"))
    scheduler.enqueue(make_tx("b1", "tenant/b/k2"))
    assert scheduler.pending_by_tenant() == {"a": 1, "b": 2}


# ------------------------------------------------------------------ factory
def test_make_scheduler_names():
    assert isinstance(make_scheduler("fifo"), FifoScheduler)
    assert isinstance(make_scheduler("fair-share"), FairShareScheduler)
    with pytest.raises(ConfigurationError):
        make_scheduler("priority")


# ------------------------------------------------------------ orderer intake
def _consume(orderer, blocks):
    orderer.register_consumer(blocks.append)


def test_orderer_with_default_scheduler_matches_arrival_order():
    engine = SimulationEngine()
    orderer = SoloOrderingService(
        "o", engine, batch_config=BatchConfig(max_message_count=3)
    )
    blocks = []
    _consume(orderer, blocks)
    for i in range(3):
        orderer.submit(make_tx(f"t{i}", f"k{i}"))
    assert len(blocks) == 1
    assert [tx.tx_id for tx in blocks[0].transactions] == ["t0", "t1", "t2"]


def test_intake_interval_forms_backlog_and_drains_on_engine_run():
    engine = SimulationEngine()
    orderer = SoloOrderingService(
        "o", engine,
        batch_config=BatchConfig(max_message_count=4),
        intake_interval_s=0.1,
    )
    blocks = []
    _consume(orderer, blocks)
    for i in range(4):
        orderer.submit(make_tx(f"t{i}", f"k{i}"))
    # Nothing reached the cutter synchronously: all four queue at intake.
    assert orderer.intake_backlog == 4
    assert blocks == []
    engine.run_until_idle()
    assert blocks and [tx.tx_id for tx in blocks[0].transactions] == [
        "t0", "t1", "t2", "t3"
    ]
    # One envelope per interval: the batch completed at ~4 intervals.
    assert engine.now == pytest.approx(0.4)


def test_flush_drains_scheduler_backlog_immediately():
    engine = SimulationEngine()
    orderer = SoloOrderingService(
        "o", engine,
        batch_config=BatchConfig(max_message_count=100),
        intake_interval_s=0.5,
    )
    blocks = []
    _consume(orderer, blocks)
    for i in range(3):
        orderer.submit(make_tx(f"t{i}", f"k{i}"))
    orderer.flush()
    assert orderer.intake_backlog == 0
    assert len(blocks) == 1 and blocks[0].tx_count == 3


def test_set_scheduler_carries_backlog_over():
    engine = SimulationEngine()
    orderer = SoloOrderingService(
        "o", engine,
        batch_config=BatchConfig(max_message_count=100),
        intake_interval_s=1.0,
    )
    blocks = []
    _consume(orderer, blocks)
    orderer.submit(make_tx("t0", "tenant/a/k"))
    orderer.submit(make_tx("t1", "tenant/b/k"))
    assert orderer.intake_backlog == 2
    orderer.set_scheduler(FairShareScheduler())
    assert orderer.intake_backlog == 2
    orderer.flush()
    assert len(blocks) == 1 and blocks[0].tx_count == 2


def test_fair_share_fractional_weights_make_progress():
    """Regression: a sub-1 weight must accumulate credit, not spin forever."""
    scheduler = FairShareScheduler(weights={"slow": 0.5})
    for i in range(4):
        scheduler.enqueue(make_tx(f"s{i}", "tenant/slow/k"))
        scheduler.enqueue(make_tx(f"f{i}", "tenant/fast/k"))
    served = [scheduler.next_transaction() for _ in range(8)]
    assert all(tx is not None for tx in served)
    tenants = [tenant_of_transaction(tx) for tx in served]
    # The slow tenant gets roughly one slot per two of the fast tenant's.
    assert tenants.count("slow") == 4 and tenants.count("fast") == 4
    assert tenants[:3].count("fast") >= 2
