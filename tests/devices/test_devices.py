"""Tests for hardware profiles and the device model."""

import pytest

from repro.common.errors import ConfigurationError, NotFoundError
from repro.devices.model import DeviceModel
from repro.devices.profiles import (
    CORE_I3_2310M,
    CORE_I7_4700MQ,
    DESKTOP_PROFILES,
    RASPBERRY_PI_3B_PLUS,
    RPI_PROFILES,
    XEON_E5_1603,
    HardwareProfile,
    profile_by_name,
)
from repro.simulation.randomness import DeterministicRandom


# -------------------------------------------------------------------- profiles
def test_builtin_profiles_are_valid():
    for profile in (XEON_E5_1603, CORE_I7_4700MQ, CORE_I3_2310M, RASPBERRY_PI_3B_PLUS):
        profile.validate()


def test_paper_testbed_composition():
    assert len(DESKTOP_PROFILES) == 4
    assert DESKTOP_PROFILES.count(XEON_E5_1603) == 2
    assert len(RPI_PROFILES) == 4
    assert all(p is RASPBERRY_PI_3B_PLUS for p in RPI_PROFILES)


def test_rpi_is_slower_and_lower_power_than_desktop():
    assert RASPBERRY_PI_3B_PLUS.hash_rate_bytes_per_s < XEON_E5_1603.hash_rate_bytes_per_s
    assert RASPBERRY_PI_3B_PLUS.cpu_speed_factor < XEON_E5_1603.cpu_speed_factor
    assert RASPBERRY_PI_3B_PLUS.idle_power_w < XEON_E5_1603.idle_power_w
    assert RASPBERRY_PI_3B_PLUS.variance_fraction > XEON_E5_1603.variance_fraction


def test_rpi_idle_power_matches_paper_calibration():
    """The paper reports 2.71 W for an idle RPi with HLF running."""
    idle_with_hlf = RASPBERRY_PI_3B_PLUS.idle_power_w + RASPBERRY_PI_3B_PLUS.hlf_baseline_power_w
    assert idle_with_hlf == pytest.approx(2.71, abs=0.05)


def test_profile_lookup_by_name():
    assert profile_by_name("raspberry-pi-3b-plus") is RASPBERRY_PI_3B_PLUS
    with pytest.raises(NotFoundError):
        profile_by_name("cray-1")


def test_profile_validation_catches_bad_values():
    bad = HardwareProfile(
        name="bad", architecture="x", cpu_model="x", clock_ghz=1, cores=1,
        cpu_speed_factor=0.0, hash_rate_bytes_per_s=1.0, sign_time_s=0.1,
        verify_time_s=0.1, chaincode_invoke_overhead_s=0.1, state_op_time_s=0.1,
        disk_write_bytes_per_s=1.0, disk_read_bytes_per_s=1.0,
        nic=XEON_E5_1603.nic, idle_power_w=10.0, hlf_baseline_power_w=1.0,
        max_power_w=20.0,
    )
    with pytest.raises(ConfigurationError):
        bad.validate()


# ---------------------------------------------------------------- device model
@pytest.fixture
def device():
    return DeviceModel("dev", XEON_E5_1603, rng=DeterministicRandom(1))


@pytest.fixture
def rpi():
    return DeviceModel("rpi", RASPBERRY_PI_3B_PLUS, rng=DeterministicRandom(2))


def test_hash_time_scales_with_size(device):
    assert device.hash_time(10 * 1024 * 1024) > device.hash_time(1024)


def test_rpi_slower_than_desktop_for_same_work(device, rpi):
    payload = 1024 * 1024
    assert rpi.hash_time(payload) > device.hash_time(payload)
    assert rpi.sign_time() > device.sign_time()
    assert rpi.chaincode_time(3) > device.chaincode_time(3)


def test_chaincode_time_scales_with_state_operations(device):
    assert device.chaincode_time(10) > device.chaincode_time(1)


def test_occupy_records_busy_intervals(device):
    start, end = device.charge_cpu(1.0, 0.5, label="work")
    assert (start, end) == (1.0, 1.5)
    assert device.busy_time(component="cpu") == pytest.approx(0.5)
    assert device.busy_intervals[0].label == "work"


def test_occupy_queues_when_all_cores_busy(device):
    # Saturate all four Xeon cores then add one more task.
    for _ in range(device.profile.cores):
        device.charge_cpu(0.0, 1.0)
    _, end = device.charge_cpu(0.0, 1.0)
    assert end == pytest.approx(2.0)


def test_occupy_zero_duration_is_noop(device):
    start, end = device.charge_cpu(3.0, 0.0)
    assert start == end == 3.0
    assert device.busy_time() == 0.0


def test_occupy_unknown_component_rejected(device):
    with pytest.raises(ValueError):
        device.occupy("gpu", 0.0, 1.0)


def test_utilization_over_window(device):
    device.charge_cpu(0.0, 4.0)  # one of four cores busy for the window
    assert device.utilization((0.0, 4.0), "cpu") == pytest.approx(0.25)
    assert device.utilization((10.0, 20.0), "cpu") == 0.0


def test_busy_time_window_restriction(device):
    device.charge_cpu(0.0, 2.0)
    device.charge_cpu(10.0, 2.0)
    assert device.busy_time(window=(0.0, 5.0)) == pytest.approx(2.0)
    assert device.busy_time() == pytest.approx(4.0)


def test_reset_accounting_clears_state(device):
    device.charge_cpu(0.0, 1.0)
    device.reset_accounting()
    assert device.busy_time() == 0.0
    assert device.busy_intervals == []


def test_disk_and_serialization_costs_positive(device):
    assert device.disk_write_time(1024) > 0
    assert device.disk_read_time(1024) > 0
    assert device.serialization_time(1024) > 0
