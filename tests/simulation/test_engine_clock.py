"""Tests for the virtual clock and the discrete-event engine."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.clock import VirtualClock
from repro.simulation.engine import Process, SimulationEngine


# ----------------------------------------------------------------------- clock
def test_clock_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_clock_rejects_negative_start():
    with pytest.raises(SimulationError):
        VirtualClock(-1.0)


def test_clock_advance_by_and_to():
    clock = VirtualClock()
    clock.advance_by(1.5)
    clock.advance_to(3.0)
    assert clock.now == 3.0


def test_clock_cannot_rewind():
    clock = VirtualClock(5.0)
    with pytest.raises(SimulationError):
        clock.advance_to(1.0)
    with pytest.raises(SimulationError):
        clock.advance_by(-1.0)


# ---------------------------------------------------------------------- engine
def test_events_run_in_timestamp_order():
    engine = SimulationEngine()
    order = []
    engine.schedule_at(2.0, lambda: order.append("late"))
    engine.schedule_at(1.0, lambda: order.append("early"))
    engine.run_until_idle()
    assert order == ["early", "late"]


def test_ties_broken_by_insertion_order():
    engine = SimulationEngine()
    order = []
    engine.schedule_at(1.0, lambda: order.append("first"))
    engine.schedule_at(1.0, lambda: order.append("second"))
    engine.run_until_idle()
    assert order == ["first", "second"]


def test_clock_advances_to_event_time():
    engine = SimulationEngine()
    seen = []
    engine.schedule_at(4.5, lambda: seen.append(engine.now))
    engine.run_until_idle()
    assert seen == [4.5]
    assert engine.now == 4.5


def test_schedule_in_is_relative():
    engine = SimulationEngine()
    engine.schedule_at(2.0, lambda: engine.schedule_in(3.0, lambda: None))
    engine.run_until_idle()
    assert engine.now == 5.0


def test_cannot_schedule_in_the_past():
    engine = SimulationEngine()
    engine.schedule_at(1.0, lambda: None)
    engine.run_until_idle()
    with pytest.raises(SimulationError):
        engine.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_in(-1.0, lambda: None)


def test_cancelled_events_are_skipped():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule_at(1.0, lambda: fired.append(1))
    event.cancel()
    engine.run_until_idle()
    assert fired == []


def test_mass_cancellation_compacts_the_heap():
    """Cancelled retry timers must not linger in the heap until their
    (possibly far-future) timestamps are popped."""
    engine = SimulationEngine()
    fired = []
    keepers = [
        engine.schedule_at(10_000.0 + index, lambda i=index: fired.append(i))
        for index in range(10)
    ]
    timers = [
        engine.schedule_at(1_000_000.0 + index, lambda: fired.append("timer"))
        for index in range(1000)
    ]
    assert engine.pending_events == 1010
    for timer in timers:
        timer.cancel()
    # Compaction kicked in repeatedly: the heap holds the 10 live events
    # plus at most a sub-threshold tail of dead ones (never the 1000).
    assert engine.pending_events < SimulationEngine.COMPACT_MIN_QUEUE
    assert engine.cancelled_pending == engine.pending_events - 10
    engine.run_until_idle()
    assert fired == list(range(10))
    assert all(not keeper.cancelled for keeper in keepers)


def test_double_cancel_and_late_cancel_keep_accounting_consistent():
    engine = SimulationEngine()
    fired = []
    event = engine.schedule_at(1.0, lambda: fired.append(1))
    other = engine.schedule_at(2.0, lambda: fired.append(2))
    event.cancel()
    event.cancel()  # idempotent
    assert engine.cancelled_pending == 1
    engine.run_until_idle()
    assert fired == [2]
    # Cancelling an event that already ran must not corrupt the counter.
    other.cancel()
    assert engine.cancelled_pending == 0
    assert engine.pending_events == 0


def test_compaction_preserves_daemon_idle_semantics():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(5.0, lambda: fired.append("work"))
    daemons = [
        engine.schedule_at(100.0 + index, lambda: fired.append("daemon"), daemon=True)
        for index in range(100)
    ]
    for daemon in daemons:
        daemon.cancel()
    engine.run_until_idle()
    # The sole non-daemon event ran; the engine went idle without waiting
    # on the cancelled daemons.
    assert fired == ["work"]


def test_run_until_horizon_advances_clock_to_horizon():
    engine = SimulationEngine()
    engine.schedule_at(1.0, lambda: None)
    engine.run(until=10.0)
    assert engine.now == 10.0


def test_run_until_leaves_later_events_queued():
    engine = SimulationEngine()
    fired = []
    engine.schedule_at(1.0, lambda: fired.append("a"))
    engine.schedule_at(20.0, lambda: fired.append("b"))
    engine.run(until=10.0)
    assert fired == ["a"]
    assert engine.pending_events == 1


def test_run_until_idle_guards_against_runaway_rescheduling():
    engine = SimulationEngine()

    def reschedule():
        engine.schedule_in(0.001, reschedule)

    engine.schedule_in(0.0, reschedule)
    with pytest.raises(SimulationError):
        engine.run_until_idle(max_events=100)


def test_processed_event_count():
    engine = SimulationEngine()
    for i in range(5):
        engine.schedule_at(float(i), lambda: None)
    engine.run_until_idle()
    assert engine.processed_events == 5


# --------------------------------------------------------------------- process
def test_process_reschedules_until_body_returns_none():
    engine = SimulationEngine()
    ticks = []

    def body(process):
        ticks.append(engine.now)
        return 1.0 if len(ticks) < 3 else None

    Process(engine, body=body, label="ticker").start(delay=0.5)
    engine.run_until_idle()
    assert ticks == [0.5, 1.5, 2.5]


def test_process_stop_prevents_future_activations():
    engine = SimulationEngine()
    ticks = []
    process = Process(engine, body=lambda p: ticks.append(1) or 1.0)
    process.start()
    engine.run(until=2.5)
    process.stop()
    engine.run_until_idle()
    assert len(ticks) <= 4


def test_process_requires_body_or_override():
    engine = SimulationEngine()
    process = Process(engine)
    with pytest.raises(NotImplementedError):
        process.tick()
