"""Tests for simulated resources and deterministic randomness."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.randomness import DeterministicRandom
from repro.simulation.resources import ResourceBusyError, SimResource, interval_overlap


# ------------------------------------------------------------------- resources
def test_reservation_starts_at_requested_time_when_free():
    resource = SimResource("cpu")
    reservation = resource.reserve(5.0, 2.0)
    assert reservation.start == 5.0
    assert reservation.end == 7.0


def test_back_to_back_reservations_queue_fifo():
    resource = SimResource("cpu")
    first = resource.reserve(0.0, 2.0)
    second = resource.reserve(1.0, 2.0)
    assert first.end == 2.0
    assert second.start == 2.0
    assert second.end == 4.0
    assert second.wait == pytest.approx(1.0)


def test_multi_slot_resource_runs_in_parallel():
    resource = SimResource("cpu", concurrency=2)
    first = resource.reserve(0.0, 2.0)
    second = resource.reserve(0.0, 2.0)
    third = resource.reserve(0.0, 2.0)
    assert first.start == 0.0 and second.start == 0.0
    assert third.start == 2.0


def test_busy_time_accumulates():
    resource = SimResource("disk")
    resource.reserve(0.0, 1.0)
    resource.reserve(5.0, 0.5)
    assert resource.busy_time == pytest.approx(1.5)
    assert resource.reservations == 2


def test_utilization_is_bounded_by_one():
    resource = SimResource("cpu")
    resource.reserve(0.0, 10.0)
    assert resource.utilization(horizon=5.0) == 1.0
    assert resource.utilization(horizon=20.0) == pytest.approx(0.5)
    assert resource.utilization(horizon=0.0) == 0.0


def test_try_reserve_raises_when_busy():
    resource = SimResource("cpu")
    resource.reserve(0.0, 5.0)
    with pytest.raises(ResourceBusyError):
        resource.try_reserve(1.0, 1.0)


def test_negative_duration_rejected():
    with pytest.raises(SimulationError):
        SimResource("cpu").reserve(0.0, -1.0)


def test_zero_concurrency_rejected():
    with pytest.raises(SimulationError):
        SimResource("cpu", concurrency=0)


def test_reset_clears_state():
    resource = SimResource("cpu")
    resource.reserve(0.0, 3.0)
    resource.reset()
    assert resource.busy_time == 0.0
    assert resource.next_free() == 0.0


def test_interval_overlap():
    assert interval_overlap((0, 2), (1, 3)) == 1
    assert interval_overlap((0, 1), (2, 3)) == 0
    assert interval_overlap((0, 10), (2, 4)) == 2


# ------------------------------------------------------------------ randomness
def test_same_seed_same_sequence():
    a = DeterministicRandom(7)
    b = DeterministicRandom(7)
    assert [a.uniform(0, 1) for _ in range(5)] == [b.uniform(0, 1) for _ in range(5)]


def test_fork_is_deterministic_across_instances():
    a = DeterministicRandom(7).fork("network")
    b = DeterministicRandom(7).fork("network")
    assert a.random() == b.random()


def test_fork_differs_by_label():
    base = DeterministicRandom(7)
    assert base.fork("a").seed != base.fork("b").seed


def test_gaussian_jitter_never_negative():
    rng = DeterministicRandom(1)
    values = [rng.gaussian_jitter(0.001, stddev_fraction=2.0) for _ in range(200)]
    assert all(v >= 0.0 for v in values)


def test_gaussian_jitter_zero_mean_returns_zero():
    assert DeterministicRandom(1).gaussian_jitter(0.0) == 0.0


def test_exponential_mean_roughly_matches():
    rng = DeterministicRandom(3)
    samples = [rng.exponential(2.0) for _ in range(2000)]
    assert sum(samples) / len(samples) == pytest.approx(2.0, rel=0.15)


def test_bytes_returns_requested_length():
    assert len(DeterministicRandom(1).bytes(1000)) == 1000


def test_shuffle_returns_copy():
    rng = DeterministicRandom(5)
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(original)
    assert sorted(shuffled) == original
    assert original == [1, 2, 3, 4, 5]
