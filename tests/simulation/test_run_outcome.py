"""``SimulationEngine.run`` reports *why* it stopped (cap vs idle vs horizon)."""

import pytest

from repro.common.errors import SimulationError
from repro.simulation.engine import RunOutcome, SimulationEngine


def schedule_chain(engine: SimulationEngine, count: int, spacing: float = 1.0):
    for index in range(count):
        engine.schedule_at(index * spacing, lambda: None, label=f"e{index}")


class TestRunOutcome:
    def test_idle_when_queue_drains(self):
        engine = SimulationEngine()
        schedule_chain(engine, 3)
        outcome = engine.run()
        assert outcome == 3
        assert outcome.stop_reason == "idle"
        assert not outcome.truncated

    def test_cap_when_max_events_reached(self):
        engine = SimulationEngine()
        schedule_chain(engine, 5)
        outcome = engine.run(max_events=2)
        assert outcome == 2
        assert outcome.stop_reason == "cap"
        assert outcome.truncated

    def test_horizon_when_later_events_remain(self):
        engine = SimulationEngine()
        schedule_chain(engine, 5, spacing=10.0)
        outcome = engine.run(until=15.0)
        assert outcome == 2
        assert outcome.stop_reason == "horizon"
        assert not outcome.truncated
        assert engine.now == 15.0

    def test_horizon_past_last_event_reports_idle(self):
        engine = SimulationEngine()
        schedule_chain(engine, 2, spacing=1.0)
        outcome = engine.run(until=100.0)
        assert outcome.stop_reason == "idle"
        assert engine.now == 100.0

    def test_behaves_like_the_historical_int(self):
        outcome = RunOutcome(7, "idle")
        assert outcome == 7
        assert outcome + 1 == 8
        assert int(outcome) == 7
        assert "stop_reason='idle'" in repr(outcome)

    def test_run_until_idle_returns_outcome(self):
        engine = SimulationEngine()
        schedule_chain(engine, 4)
        outcome = engine.run_until_idle()
        assert isinstance(outcome, RunOutcome)
        assert outcome.stop_reason == "idle"

    def test_run_until_idle_still_raises_on_runaway(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule_in(1.0, reschedule)

        engine.schedule_in(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run_until_idle(max_events=10)
