"""Determinism and protocol tests for the parallel fleet executor.

The load-bearing property (ISSUE satellite): sequential and parallel
executors produce **identical virtual-time commit logs** — same tx ids,
same submit/commit timestamps, same validation codes and block numbers —
for the same spec, with churn and a partition window enabled.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.consensus.batching import BatchConfig
from repro.core.topology import DeploymentSpec, build_deployment
from repro.devices.profiles import DESKTOP_PROFILES, XEON_E5_1603
from repro.simulation.parallel import (
    DEFAULT_WINDOW_S,
    MIN_LOOKAHEAD_S,
    ShardRunStats,
    _assign_sites,
    conservative_lookahead,
    run_fleet_parallel,
    run_fleet_sequential,
    window_count,
)
from repro.workloads.fleet import FleetSpec


def property_spec(**overrides) -> FleetSpec:
    """A small fleet with churn and a partition window — fast but adversarial."""
    base = dict(
        devices=60,
        shards=2,
        rate_per_device_s=0.05,
        duration_s=60.0,
        seed=7,
        churn_fraction=0.2,
        partition_windows=((20.0, 35.0),),
    )
    base.update(overrides)
    return FleetSpec(**base)


class TestDeterminism:
    @pytest.mark.parametrize("max_message_count", [1, 10])
    def test_sequential_vs_parallel_commit_logs_identical(self, max_message_count):
        spec = property_spec(
            batch_config=BatchConfig(max_message_count=max_message_count)
        )
        sequential = run_fleet_sequential(spec)
        parallel = run_fleet_parallel(spec, workers=2)
        assert sequential.committed > 0
        assert parallel.mode == "parallel"
        # Full logs, not just digests: a mismatch then shows *which* line.
        assert parallel.lines_by_site == sequential.lines_by_site
        assert parallel.anchor == sequential.anchor
        assert parallel.counts_by_site == sequential.counts_by_site
        assert parallel.submitted == sequential.submitted

    def test_inline_windowed_executor_matches_sequential(self):
        spec = property_spec()
        sequential = run_fleet_sequential(spec)
        inline = run_fleet_parallel(spec, workers=1)
        assert inline.mode == "parallel-inline"
        assert inline.lines_by_site == sequential.lines_by_site
        assert inline.anchor == sequential.anchor

    def test_churn_and_partition_visible_in_run(self):
        spec = property_spec()
        plan = spec.arrival_plan()
        churned = [s for s in plan.schedules if s.offline_window is not None]
        assert churned, "property spec must exercise churn"
        result = run_fleet_sequential(spec)
        assert result.committed > 0


class TestBarrierProtocol:
    def test_window_count_covers_horizon_plus_tail(self):
        assert window_count(0.0, 5.0) == 1
        assert window_count(4.9, 5.0) == 1
        assert window_count(5.0, 5.0) == 2
        assert window_count(60.0, 5.0) == 13

    def test_conservative_lookahead_floors(self):
        spec = property_spec()
        assert conservative_lookahead(spec) == DEFAULT_WINDOW_S
        assert conservative_lookahead(spec, 0.5) == 0.5
        # Never below the orderer intake pacing interval.
        paced = property_spec(orderer_intake_interval_s=2.0)
        assert conservative_lookahead(paced, 0.5) == 2.0
        # Never below the LAN propagation floor.
        assert conservative_lookahead(spec, 1e-9) == MIN_LOOKAHEAD_S

    def test_lookahead_rejects_nonpositive_window(self):
        with pytest.raises(ConfigurationError):
            conservative_lookahead(property_spec(), 0.0)

    def test_workers_validated(self):
        with pytest.raises(ConfigurationError):
            run_fleet_parallel(property_spec(), workers=0)

    def test_assign_sites_round_robin(self):
        spec = property_spec(devices=60, shards=4)
        assert _assign_sites(spec, 2) == [[0, 2], [1, 3]]
        assert _assign_sites(spec, 4) == [[0], [1], [2], [3]]
        # More workers than shards clamps to one site per worker.
        assert _assign_sites(spec, 9) == [[0], [1], [2], [3]]

    def test_shard_stats_accounting(self):
        spec = property_spec()
        result = run_fleet_parallel(spec, workers=2)
        assert len(result.shard_stats) == 2
        horizon = spec.arrival_plan().horizon_s()
        expected_windows = window_count(horizon, result.window_s)
        for stats in result.shard_stats:
            assert stats.windows == expected_windows
            assert stats.busy_wall_s > 0
            assert 0.0 <= stats.utilization <= 1.0
        assert sum(s.events for s in result.shard_stats) > 0

    def test_utilization_math(self):
        stats = ShardRunStats(worker=0, sites=[0], busy_wall_s=3.0, barrier_stall_s=1.0)
        assert stats.utilization == pytest.approx(0.75)
        assert ShardRunStats(worker=0, sites=[0]).utilization == 0.0


class TestDeploymentWorkersKnob:
    def test_workers_default_and_validation(self):
        spec = DeploymentSpec(
            peer_profiles=DESKTOP_PROFILES[:1],
            orderer_profile=XEON_E5_1603,
            storage_profile=XEON_E5_1603,
            client_profile=DESKTOP_PROFILES[0],
        )
        assert spec.workers == 1
        spec.workers = 0
        with pytest.raises(ConfigurationError):
            build_deployment(spec)
