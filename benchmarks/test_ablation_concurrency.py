"""Benchmark: ablation over the closed loop's in-flight submission depth.

Sweeps how many futures-based ``submit()`` calls the unified API keeps
outstanding with 64 KiB payloads on the desktop deployment.  Expected
shape: depth 1 (a strictly blocking client) commits one transaction per
orderer batch timeout; deeper pipelines fill blocks by message count, so
throughput rises monotonically with depth and jumps once the depth
exceeds the orderer's ``MaxMessageCount``.
"""

from __future__ import annotations

from repro.bench.ablation_concurrency import run_concurrency_ablation

DEPTHS = (1, 2, 4, 8, 16)


def test_concurrency_ablation(benchmark, record_rows):
    ablation = benchmark.pedantic(
        lambda: run_concurrency_ablation(depths=DEPTHS, requests=40),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "in_flight_depth": depth,
            "throughput_tps": round(result.throughput_tps, 2),
            "mean_response_s": round(result.mean_response_s, 4),
            "p95_response_s": round(result.p95_response_s, 4),
        }
        for depth, result in zip(ablation.depths, ablation.results)
    ]
    record_rows(benchmark, "Ablation — in-flight submission depth (64 KiB payloads)", rows)

    by_depth = dict(zip(ablation.depths, ablation.results))
    # Keeping more than one submission in flight beats the blocking client.
    assert by_depth[2].throughput_tps > by_depth[1].throughput_tps
    assert by_depth[16].throughput_tps > by_depth[1].throughput_tps * 2
    # Every configuration committed the full workload.
    assert all(result.failed == 0 for result in ablation.results)
