"""Benchmark: per-operator latency table (technical-report style).

Measures each client operator (post, get, get_key_history, check_hash,
store_data, get_data, get_dependencies) on both setups with 1 KiB
payloads, mirroring the operator breakdown in the companion technical
report.  Asserts the expected ordering: reads are cheaper than writes, and
every operator is slower on the RPi than on the desktop machines.
"""

from __future__ import annotations

from repro.bench.ops_table import run_ops_table


def test_operator_latency_table(benchmark, record_rows):
    desktop, rpi = benchmark.pedantic(
        lambda: run_ops_table(payload_bytes=1024, repeats=5),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "operator": operator,
            "desktop_s": round(desktop.latencies_s[operator], 5),
            "rpi_s": round(rpi.latencies_s[operator], 5),
        }
        for operator in sorted(desktop.latencies_s)
    ]
    record_rows(benchmark, "Client operator latencies (1 KiB payloads)", rows)

    for operator, desktop_latency in desktop.latencies_s.items():
        assert desktop_latency > 0
        assert rpi.latencies_s[operator] > desktop_latency, operator

    # Reads (served by one peer, no ordering) are much cheaper than writes
    # (endorsement + ordering + commit) on both setups.
    for setup in (desktop, rpi):
        assert setup.latencies_s["get"] < setup.latencies_s["post"]
        assert setup.latencies_s["check_hash"] < setup.latencies_s["store_data"]
