"""Benchmark: ablation of FastFabric-style parallel block validation.

Toggles the parallel-validation optimization (after Gorenflo et al.,
FastFabric, cited in the paper's related work) on the Raspberry Pi
deployment and checks that spreading endorsement-signature verification
over the Cortex-A53's four cores does not reduce — and typically improves —
the sustainable StoreData throughput.
"""

from __future__ import annotations

from repro.bench.ablation_fastfabric import run_fastfabric_ablation


def test_parallel_validation_ablation(benchmark, record_rows):
    ablation = benchmark.pedantic(
        lambda: run_fastfabric_ablation(payload_bytes=1024, requests=40),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "validation": mode,
            "throughput_tps": round(result.throughput_tps, 2),
            "mean_response_s": round(result.mean_response_s, 4),
        }
        for mode, result in ablation.results.items()
    ]
    rows.append({"validation": "speedup", "throughput_tps": round(ablation.speedup, 3),
                 "mean_response_s": None})
    record_rows(benchmark, "Ablation — FastFabric-style parallel validation (RPi)", rows)

    assert ablation.results["sequential"].failed == 0
    assert ablation.results["parallel"].failed == 0
    assert ablation.speedup >= 0.98
