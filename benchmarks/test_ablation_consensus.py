"""Benchmark: ablation over the ordering service (Solo vs Raft).

The paper's testbeds run the Solo orderer; HLF v1.4.1 added Raft-based
crash-fault-tolerant ordering.  This ablation quantifies what switching to
a 3-node Raft ordering service costs on the same desktop deployment.
"""

from __future__ import annotations

from repro.bench.ablation_consensus import run_consensus_ablation


def test_solo_vs_raft_ordering(benchmark, record_rows):
    ablation = benchmark.pedantic(
        lambda: run_consensus_ablation(payload_bytes=64 * 1024, requests=30),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "ordering": mode,
            "throughput_tps": round(result.throughput_tps, 2),
            "mean_response_s": round(result.mean_response_s, 4),
            "committed": result.committed,
        }
        for mode, result in ablation.results.items()
    ]
    record_rows(benchmark, "Ablation — Solo vs Raft ordering", rows)

    solo = ablation.results["solo"]
    raft = ablation.results["raft"]
    # Both ordering services commit the full workload.
    assert solo.committed == 30
    assert raft.committed == 30
    # Raft adds replication latency but stays within an order of magnitude.
    assert raft.throughput_tps > solo.throughput_tps * 0.1
