"""Benchmark: Fig. 2 — throughput and response time vs data size (Raspberry Pi).

Same sweep as Fig. 1 on the RPi 3B+ deployment.  Asserts the paper's two
observations: the trend matches the desktop figure, and absolute
performance is substantially lower on the constrained ARM hardware.
"""

from __future__ import annotations

from repro.bench.fig1_throughput import run_fig1
from repro.bench.fig2_rpi import run_fig2

SIZES = (1024, 64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024)


def test_fig2_rpi_throughput_response(benchmark, record_rows):
    series = benchmark.pedantic(
        lambda: run_fig2(sizes=SIZES, requests_per_size=25),
        iterations=1,
        rounds=1,
    )
    rows = [result.summary() for result in series.results]
    record_rows(benchmark, "Fig. 2 — RPi StoreData sweep", rows)

    throughputs = series.throughputs()
    responses = series.response_times()
    assert throughputs[-1] < throughputs[0]
    assert responses[-1] > responses[0]
    assert all(result.failed == 0 for result in series.results)


def test_fig2_rpi_is_slower_than_desktop(benchmark, record_rows):
    """Cross-setup comparison: RPi throughput is a fraction of desktop's."""
    sizes = (1024, 1024 * 1024)

    def run_both():
        return run_fig1(sizes=sizes, requests_per_size=20), run_fig2(
            sizes=sizes, requests_per_size=20
        )

    desktop, rpi = benchmark.pedantic(run_both, iterations=1, rounds=1)
    rows = [
        {
            "size_bytes": d.config.data_size_bytes,
            "desktop_tps": d.throughput_tps,
            "rpi_tps": r.throughput_tps,
            "slowdown": d.throughput_tps / max(r.throughput_tps, 1e-9),
        }
        for d, r in zip(desktop.results, rpi.results)
    ]
    record_rows(benchmark, "Fig. 1 vs Fig. 2 — desktop/RPi slowdown", rows)
    for row in rows:
        assert row["slowdown"] > 3.0
