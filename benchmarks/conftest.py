"""Shared configuration for the pytest-benchmark suites.

Each benchmark module regenerates one figure or table from the paper's
evaluation (see DESIGN.md's experiment index).  The measured quantity is
the wall-clock time of regenerating the experiment — the experiment's own
*virtual-time* results (throughput, response time, watts) are attached to
``benchmark.extra_info`` and printed so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import pytest


def attach_rows(benchmark, title: str, rows) -> None:
    """Record experiment rows in the benchmark's extra_info and print them."""
    benchmark.extra_info["experiment"] = title
    benchmark.extra_info["rows"] = rows
    print(f"\n=== {title} ===")
    for row in rows:
        print(row)


@pytest.fixture
def record_rows():
    """Fixture exposing :func:`attach_rows` to benchmark tests."""
    return attach_rows
