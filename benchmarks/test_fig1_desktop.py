"""Benchmark: Fig. 1 — throughput and response time vs data size (desktop).

Regenerates the desktop-setup sweep and asserts the figure's shape:
throughput decreases monotonically (within tolerance) and response time
increases as the data item size grows, because off-chain transfer and
checksum computation dominate at large sizes.
"""

from __future__ import annotations

from repro.bench.fig1_throughput import run_fig1

SIZES = (1024, 64 * 1024, 256 * 1024, 1024 * 1024, 4 * 1024 * 1024)


def test_fig1_desktop_throughput_response(benchmark, record_rows):
    series = benchmark.pedantic(
        lambda: run_fig1(sizes=SIZES, requests_per_size=40),
        iterations=1,
        rounds=1,
    )
    rows = [result.summary() for result in series.results]
    record_rows(benchmark, "Fig. 1 — desktop StoreData sweep", rows)

    throughputs = series.throughputs()
    responses = series.response_times()

    # Shape: the largest items are clearly slower than the smallest.
    assert throughputs[-1] < throughputs[0] * 0.8
    assert responses[-1] > responses[0] * 1.2
    # Monotone within a small tolerance for simulation jitter.
    for previous, current in zip(throughputs, throughputs[1:]):
        assert current <= previous * 1.05
    for previous, current in zip(responses, responses[1:]):
        assert current >= previous * 0.95
    # Every request committed.
    assert all(result.failed == 0 for result in series.results)
