"""Benchmark: ablation over the orderer's block-cutting batch size.

Sweeps ``MaxMessageCount`` at saturation with 64 KiB payloads on the
desktop deployment.  Expected shape: very small blocks (one transaction
per block) pay per-block validation/commit overhead, so moderate batch
sizes sustain at least comparable throughput; response time grows with
very large blocks because transactions wait longer for their block to
fill.
"""

from __future__ import annotations

from repro.bench.ablation_batch import run_batch_ablation

BATCH_SIZES = (1, 10, 50, 100)


def test_batch_size_ablation(benchmark, record_rows):
    ablation = benchmark.pedantic(
        lambda: run_batch_ablation(batch_sizes=BATCH_SIZES, requests=60),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "max_message_count": size,
            "throughput_tps": round(result.throughput_tps, 2),
            "mean_response_s": round(result.mean_response_s, 4),
        }
        for size, result in zip(ablation.batch_sizes, ablation.results)
    ]
    record_rows(benchmark, "Ablation — orderer batch size (64 KiB payloads)", rows)

    by_size = dict(zip(ablation.batch_sizes, ablation.results))
    # Batching does not collapse throughput relative to single-tx blocks.
    assert by_size[10].throughput_tps > 0.6 * by_size[1].throughput_tps
    # Every configuration committed the full workload.
    assert all(result.failed == 0 for result in ablation.results)
