"""Benchmark: Fig. 3 — RPi energy consumption over 10-minute intervals.

Regenerates the load-level series and asserts the paper's calibration
points: an idle RPi with HLF running draws about 2.71 W (barely above the
idle OS), the peak-load mean stays within a modest fraction of idle
(paper: +10.7 %), and the maximum observed draw stays near 3.64 W.
"""

from __future__ import annotations

import pytest

from repro.bench.fig3_energy import run_fig3

LOAD_LEVELS = {
    "idle (no HLF)": 0.0,
    "idle (HLF running)": 0.0,
    "low load": 0.5,
    "medium load": 2.0,
    "peak load": 5.0,
}


def test_fig3_rpi_energy_intervals(benchmark, record_rows):
    figure = benchmark.pedantic(
        lambda: run_fig3(load_levels=LOAD_LEVELS, interval_s=600.0),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "interval": report.label,
            "mean_w": round(report.mean_watts, 3),
            "max_w": round(report.max_watts, 3),
            "energy_wh": round(report.energy_wh, 4),
        }
        for report in figure.intervals
    ]
    record_rows(benchmark, "Fig. 3 — RPi power per 10-minute interval", rows)

    idle_no_hlf = figure.report_for("idle (no HLF)")
    idle_hlf = figure.report_for("idle (HLF running)")
    peak = figure.report_for("peak load")

    # Paper: idle-with-HLF is 2.71 W, barely above the idle OS.
    assert idle_hlf.mean_watts == pytest.approx(2.71, abs=0.1)
    assert idle_hlf.mean_watts - idle_no_hlf.mean_watts < 0.2

    # Paper: peak load is only ~10.7 % above idle on average; max 3.64 W.
    increase = (peak.mean_watts - idle_no_hlf.mean_watts) / idle_no_hlf.mean_watts
    assert 0.02 < increase < 0.35
    assert peak.max_watts < 3.9

    # Power rises monotonically with load level.
    means = [report.mean_watts for report in figure.intervals]
    assert means == sorted(means)
