"""Benchmark: HyperProv vs ProvChain-style PoW vs centralized database.

Backs the paper's positioning claim: a permissioned blockchain records
provenance at a fraction of the resource cost of public-blockchain
approaches, while still providing the tamper evidence a centralized
database cannot.
"""

from __future__ import annotations

from repro.bench.baseline_compare import run_baseline_comparison


def test_baseline_comparison(benchmark, record_rows):
    report = benchmark.pedantic(
        lambda: run_baseline_comparison(requests=25, payload_bytes=1024,
                                        pow_difficulty_bits=22),
        iterations=1,
        rounds=1,
    )
    rows = [
        {
            "system": entry.system,
            "throughput_tps": round(entry.throughput_tps, 3),
            "mean_latency_s": round(entry.mean_latency_s, 4),
            "mean_power_w": round(entry.mean_power_w, 3),
            "tamper_evident": entry.tamper_evident,
        }
        for entry in report.entries
    ]
    record_rows(benchmark, "Baseline comparison (1 KiB records, RPi-class hardware)", rows)

    hyperprov = report.entry("hyperprov")
    pow_chain = report.entry("provchain-pow")
    central = report.entry("central-db")

    # Permissioned beats proof-of-work on throughput and power by a wide margin.
    assert hyperprov.throughput_tps > 3 * pow_chain.throughput_tps
    assert hyperprov.mean_power_w < pow_chain.mean_power_w
    # The centralized database is the fastest but offers no tamper evidence.
    assert central.throughput_tps > hyperprov.throughput_tps
    assert not central.tamper_evident
    assert hyperprov.tamper_evident
