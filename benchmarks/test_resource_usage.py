"""Benchmark: per-node resource consumption under the StoreData workload.

Covers the "resource consumption" axis of the paper's evaluation: the RPi
devices run at a much higher relative CPU utilization than the desktops to
sustain their (lower) throughput, and the node co-hosting the peer and the
client is the busiest machine in both setups.
"""

from __future__ import annotations

from repro.bench.resource_usage import run_resource_usage


def test_resource_usage_per_node(benchmark, record_rows):
    reports = benchmark.pedantic(
        lambda: run_resource_usage(payload_bytes=256 * 1024, requests=40),
        iterations=1,
        rounds=1,
    )
    rows = []
    for setup, report in reports.items():
        for usage in report.nodes:
            rows.append(
                {
                    "setup": setup,
                    "node": usage.node,
                    "role": usage.role,
                    "cpu_util": round(usage.cpu_utilization, 4),
                    "bytes_sent": usage.bytes_sent,
                }
            )
    record_rows(benchmark, "Resource consumption per node (256 KiB payloads)", rows)

    desktop, rpi = reports["desktop"], reports["rpi"]
    # The desktop setup sustains far higher throughput...
    assert desktop.throughput_tps > 3 * rpi.throughput_tps

    # ...while every committed transaction costs the RPi peers far more CPU
    # time than it costs the desktop peers (limited hardware capacity).
    def peer_cpu_seconds_per_tx(report, committed=40):
        return max(
            u.cpu_core_seconds for u in report.nodes if "peer" in u.role
        ) / committed

    assert peer_cpu_seconds_per_tx(rpi) > 3 * peer_cpu_seconds_per_tx(desktop)

    # The peer co-hosting the client burns the most CPU time in both setups.
    for report in reports.values():
        co_hosted = next(u for u in report.nodes if u.role == "peer+client")
        other_peers = [u for u in report.nodes if u.role == "peer"]
        assert co_hosted.cpu_core_seconds >= max(u.cpu_core_seconds for u in other_peers)

    # The client host dominates outbound traffic (it uploads every payload
    # to the off-chain storage node and every proposal to the peers).
    for report in reports.values():
        co_hosted = next(u for u in report.nodes if u.role == "peer+client")
        assert co_hosted.bytes_sent > 0
        assert co_hosted.bytes_sent == max(u.bytes_sent for u in report.nodes)
