#!/usr/bin/env python
"""Tamper evidence: HyperProv vs a centralized provenance database.

Demonstrates the property that motivates blockchain-based provenance.
The same record is stored three ways:

1. in HyperProv — a malicious peer rewrites its local ledger copy and is
   immediately detectable (its hash chain breaks, the other peers still
   verify, and the off-chain data no longer matches the on-chain checksum);
2. in a ProvChain-style Proof-of-Work ledger — also tamper evident, but at
   a massive energy cost on edge hardware;
3. in a centralized database — the rewrite succeeds silently.

Run with::

    python examples/tamper_detection.py
"""

from __future__ import annotations

from repro.api import StoreRequest
from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.common.hashing import checksum_of
from repro.core import build_desktop_deployment
from repro.devices.model import DeviceModel
from repro.devices.profiles import RASPBERRY_PI_3B_PLUS, XEON_E5_1603
from repro.energy.power import PowerModel


ORIGINAL = b"batch-42: 1000 units, QA passed"
FORGED = b"batch-42: 1000 units, QA passed (revised: 900 units)"


def hyperprov_scenario() -> None:
    print("=== HyperProv (permissioned blockchain) ===")
    deployment = build_desktop_deployment()
    store = deployment.client.as_store()
    store.store(StoreRequest(key="audit/batch-42", data=ORIGINAL))

    # A compromised peer rewrites the record inside its local block store.
    # Committed envelopes are sealed and structurally shared across peers,
    # so the rewrite goes through the peer's copy-on-write tamper hook —
    # only the victim's own ledger copy diverges.
    victim = deployment.peers[0]
    block = victim.block_store.block(0)
    position = next(i for i, t in enumerate(block.transactions) if t.function == "set")
    tx = victim.tamper(0, position)
    tx.args[1] = checksum_of(FORGED)

    print(f"  tampered peer chain verifies : {victim.block_store.verify_chain()}")
    for honest in deployment.peers[1:]:
        assert honest.block_store.verify_chain()
    print("  honest peers chain verifies  : True (3/3)")

    # Clients talking to honest peers still get the true record, and the
    # stored data still matches the chain.
    record = store.get("audit/batch-42")
    print(f"  on-chain checksum matches original data : "
          f"{record.checksum == checksum_of(ORIGINAL)}")
    print(f"  forged data accepted by verify           : "
          f"{bool(store.verify('audit/batch-42', FORGED))}")


def provchain_scenario() -> None:
    print("\n=== ProvChain-style Proof-of-Work ledger ===")
    miner = DeviceModel("rpi-miner", RASPBERRY_PI_3B_PLUS)
    chain = PowProvenanceChain(miner, difficulty_bits=20)
    store = chain.as_store()
    result = store.store(StoreRequest(key="audit/batch-42", data=ORIGINAL))
    power = PowerModel(miner).power_over((0.0, max(result.latency_s, 1e-9))).watts
    print(f"  mining one record took {result.latency_s:.2f} s of virtual time "
          f"at {power:.1f} W on an RPi")
    chain.tamper("audit/batch-42", checksum_of(FORGED))
    print(f"  audit after tampering: {store.audit()} (detected)")


def central_db_scenario() -> None:
    print("\n=== Centralized provenance database ===")
    server = DeviceModel("db-server", XEON_E5_1603)
    database = CentralProvenanceDatabase(server_device=server)
    store = database.as_store()
    store.store(StoreRequest(key="audit/batch-42", data=ORIGINAL))
    database.tamper("audit/batch-42", checksum_of(FORGED))
    rewritten = store.get("audit/batch-42")
    print(f"  record now claims checksum of forged data: "
          f"{rewritten.checksum == checksum_of(FORGED)}")
    print(f"  audit still looks clean: {store.audit()} "
          "(nothing to detect it with)")


def main() -> None:
    hyperprov_scenario()
    provchain_scenario()
    central_db_scenario()
    print("\nSummary: both ledgers expose the rewrite; only HyperProv does so at "
          "edge-compatible resource cost, and the central database never notices.")


if __name__ == "__main__":
    main()
