#!/usr/bin/env python
"""Resilience at the edge: network partitions and Raft ordering.

Edge deployments lose connectivity.  This example shows how the HyperProv
deployment behaves through a partition and how the ledger converges again
afterwards, plus the Raft-ordered variant that survives orderer crashes
(the ablation the paper's Solo-orderer testbed could not run).

Run with::

    python examples/edge_resilience.py
"""

from __future__ import annotations

from repro.api import HyperProvService
from repro.consensus.batching import BatchConfig
from repro.core import build_rpi_deployment
from repro.core.topology import build_desktop_deployment


def partition_scenario() -> None:
    print("=== Partition on the RPi edge deployment ===")
    deployment = build_rpi_deployment(batch_config=BatchConfig(max_message_count=1))
    session = HyperProvService(deployment).session()

    session.store("telemetry/0001", b"pre-partition reading")
    print(f"  before partition: heights {deployment.fabric.ledger_heights()}")

    # The site loses two of its four devices (e.g. a switch failure).
    client_host = deployment.fabric.client_context("hyperprov-client").host_node
    connected = sorted({deployment.peers[0].name, deployment.peers[1].name,
                        "orderer", "storage", client_host})
    disconnected = [deployment.peers[2].name, deployment.peers[3].name]
    deployment.network.partitions.partition([connected, disconnected])
    print(f"  partition installed, unreachable peers: {disconnected}")

    # With only 2 of 4 organizations reachable the majority endorsement
    # policy cannot be satisfied — the write is rejected, not silently lost.
    attempt = session.store("telemetry/0002", b"during partition")
    print(f"  write during partition valid: {attempt.ok} "
          f"({attempt.handle.validation_code.value})")

    # Connectivity returns: new writes commit, and the peers that missed
    # blocks catch up from the ordering service.
    deployment.network.partitions.heal()
    recovered = session.store("telemetry/0003", b"after heal")
    heights = deployment.fabric.ledger_heights()
    print(f"  write after heal valid: {recovered.ok}")
    print(f"  heights after heal    : {heights}")
    assert len(set(heights.values())) == 1


def raft_scenario() -> None:
    print("\n=== Raft-ordered desktop deployment ===")
    deployment = build_desktop_deployment(ordering="raft")
    deployment.engine.run(until=1.0)  # let the cluster elect a leader
    orderer = deployment.fabric.orderer
    leader = orderer.leader
    print(f"  raft cluster of {len(orderer.nodes)} elected leader: {leader.node_id}")

    session = HyperProvService(deployment).session()
    post = session.store("raft/item-1", b"ordered via raft")
    print(f"  transaction committed in block {post.commit_block} "
          f"(latency {post.latency_s * 1000:.0f} ms virtual)")
    replicated = sum(1 for node in orderer.nodes if len(node.log) > 0)
    print(f"  log replicated on {replicated}/{len(orderer.nodes)} orderer nodes")


def main() -> None:
    partition_scenario()
    raft_scenario()


if __name__ == "__main__":
    main()
