#!/usr/bin/env python
"""Multi-tenant sessions with futures-based submission and admission control.

One HyperProv deployment serves several tenants at once: each session is
bound to a tenant namespace (``tenant/<name>/…`` on the ledger, invisible
to the application), keeps multiple submissions in flight through the
endorsement batcher, and can be capped so no tenant monopolizes the
ordering path.

Run with::

    python examples/tenant_sessions.py
"""

from __future__ import annotations

from repro.api import HyperProvService
from repro.common.errors import AdmissionRejectedError, NotFoundError
from repro.core import build_desktop_deployment


def main() -> None:
    deployment = build_desktop_deployment()
    service = HyperProvService(deployment)

    # --- Two tenants, same deployment, private namespaces. -----------------
    with service.session(tenant="acme") as acme, \
            service.session(tenant="globex") as globex:
        # Non-blocking writes: both tenants' envelopes are in flight at once.
        for round_index in range(3):
            acme.submit(f"telemetry/{round_index}", f"acme-r{round_index}".encode())
            globex.submit(f"telemetry/{round_index}", f"globex-r{round_index}".encode())
        print(f"in flight before drain: acme={acme.in_flight} globex={globex.in_flight}")
        acme.drain()  # one drain settles the shared network

        # Identical tenant-relative keys resolve to different records.
        print(f"acme telemetry/0   : {acme.get('telemetry/0').checksum[:12]}…")
        print(f"globex telemetry/0 : {globex.get('telemetry/0').checksum[:12]}…")

        # Namespace isolation: a key only one tenant wrote is invisible to
        # the other.
        acme.store("secrets/api-key", b"acme-only")
        try:
            globex.get("secrets/api-key")
            raise AssertionError("tenant isolation is broken")
        except NotFoundError:
            print("globex cannot read acme's keys: OK")

    # --- Admission control: a per-tenant in-flight cap. --------------------
    with service.session(tenant="bursty", max_in_flight=4) as bursty:
        accepted, rejected = 0, 0
        for index in range(10):
            try:
                bursty.submit(f"burst/{index}", b"x" * 256)
                accepted += 1
            except AdmissionRejectedError:
                rejected += 1
        print(f"\nburst of 10 with cap 4: accepted={accepted} rejected={rejected}")
        bursty.drain()
        # After the drain the tenant has capacity again.
        bursty.submit("burst/retry", b"x")
        print(f"post-drain submit accepted (in flight: {bursty.in_flight})")

    heights = deployment.fabric.ledger_heights()
    assert len(set(heights.values())) == 1
    print(f"\nAll peers agree on ledger height {next(iter(heights.values()))}")


if __name__ == "__main__":
    main()
