#!/usr/bin/env python
"""Deterministic chaos: a scheduled partition, stale reads and replayed writes.

A ``FaultPlan`` cuts the client's host off from the rest of the
deployment between t=4s and t=7s of virtual time.  The client pipeline
runs with the resilience knobs on, so during the cut:

* reads degrade to the cache's last-known-good archive, explicitly
  marked ``stale=True`` (never silently fresh), and
* writes park in the store-and-forward queue behind placeholder handles
  and replay automatically once the partition heals.

Everything — the fault schedule, the degradation, the replays — rides
the discrete-event clock, so the run is byte-reproducible: same seed,
same commit log (``python -m repro.bench chaos`` gates exactly that).

Run with::

    python examples/chaos_partition.py
"""

from __future__ import annotations

from repro.api.protocol import StoreRequest
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.core.topology import DeploymentSpec, build_deployment
from repro.devices.profiles import DESKTOP_PROFILES, XEON_E5_1603
from repro.faults import FaultInjector, FaultPlan, PartitionFault
from repro.middleware.config import PipelineConfig


def main() -> None:
    # The client gets its own network node so the partition can isolate
    # just it (the stock desktop spec co-locates it with a peer).
    deployment = build_deployment(
        DeploymentSpec(
            name="chaos-example",
            peer_profiles=DESKTOP_PROFILES,
            orderer_profile=XEON_E5_1603,
            storage_profile=XEON_E5_1603,
            client_profile=DESKTOP_PROFILES[2],
            client_colocated_with=None,
            batch_config=BatchConfig(max_message_count=1),
            seed=42,
        )
    )
    deployment.client.configure_pipeline(
        PipelineConfig(
            cache=True,
            stale_reads=True,
            store_and_forward=True,
            saf_replay_interval_s=0.5,
        )
    )
    store = deployment.client.as_store()
    engine = deployment.engine

    plan = FaultPlan(
        seed=42,
        faults=(PartitionFault(start_s=4.0, end_s=7.0, groups=(("client",),)),),
    )
    injector = FaultInjector(plan, deployment.fabric).install()

    def submit(key: str, version: bytes = b"sensor reading v1") -> None:
        outcome = store.submit(
            StoreRequest(
                key=key, checksum=checksum_of(version), location="edge://demo"
            )
        )
        handles[f"{key}@{engine.now:.1f}"] = outcome.handle

    def read(tag: str, key: str) -> None:
        view = store.get(key)
        print(
            f"  t={engine.now:4.1f}s read {key!r}: "
            f"{'STALE archive copy' if view.stale else 'fresh from the peer'}"
        )

    handles: dict = {}
    # Steady state: a write, then a read that primes the stale archive.
    engine.schedule_at(1.0, lambda: submit("sensor/a"))
    engine.schedule_at(3.0, lambda: read("prime", "sensor/a"))
    # A newer version commits: the cache entry is invalidated (the
    # archive keeps the last served copy for degraded mode).
    engine.schedule_at(3.5, lambda: submit("sensor/a", b"sensor reading v2"))
    # During the cut: the read degrades to the archive, the write parks.
    engine.schedule_at(5.0, lambda: read("degraded", "sensor/a"))
    engine.schedule_at(5.5, lambda: submit("sensor/during-cut"))
    # After the heal: fresh again.
    engine.schedule_at(9.0, lambda: read("recovered", "sensor/a"))

    outcome = deployment.fabric.flush_and_drain()

    print(f"\n  drained: {outcome.stop_reason}")
    for kind in injector.log:
        print(f"  fault event: {kind}")
    for key, handle in sorted(handles.items()):
        print(
            f"  write {key!r}: {handle.validation_code.value} "
            f"(submitted t={handle.submitted_at:.1f}s, "
            f"committed t={handle.committed_at:.1f}s)"
        )
    parked = handles["sensor/during-cut@5.5"]
    assert parked.is_valid and parked.committed_at >= 7.0
    print(
        "\n  the write submitted mid-partition was parked locally and "
        f"replayed after the heal (committed t={parked.committed_at:.1f}s)."
    )


if __name__ == "__main__":
    main()
