#!/usr/bin/env python
"""Quickstart: store a data item with HyperProv and query its provenance.

Builds the paper's desktop deployment (four x86-64 peers, a Solo orderer,
an SSHFS-style off-chain storage node), stores one data item, and walks
through the core operator set: ``store_data``, ``get``, ``check_hash``,
``get_key_history`` and ``get_data``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import build_desktop_deployment


def main() -> None:
    # 1. Assemble the deployment (virtual hardware + Fabric network + storage).
    deployment = build_desktop_deployment()
    client = deployment.client
    client.init()
    print("Deployment ready:")
    print(f"  peers   : {[peer.name for peer in deployment.peers]}")
    print(f"  orderer : {deployment.fabric.orderer_node} (Solo)")
    print(f"  storage : ssh://storage (off-chain)")

    # 2. Store a data item: the payload goes to off-chain storage, the
    #    checksum + pointer + creator certificate go on chain.
    payload = b"temperature=21.5C humidity=40% station=tromso-01"
    post = client.store_data(
        key="stations/tromso-01/reading-0001",
        data=payload,
        metadata={"unit": "celsius", "station": "tromso-01"},
    )
    deployment.drain()  # let the orderer cut the block and the peers commit
    print("\nStoreData committed:")
    print(f"  tx id        : {post.handle.tx_id}")
    print(f"  block        : {post.handle.commit_block}")
    print(f"  chain latency: {post.handle.latency_s * 1000:.1f} ms (virtual)")
    print(f"  checksum     : {post.record.checksum[:16]}…")
    print(f"  location     : {post.storage_receipt.location}")

    # 3. Query the provenance record back.
    record = client.get("stations/tromso-01/reading-0001").payload
    print("\nOn-chain record:")
    print(f"  creator      : {record.creator} ({record.organization})")
    print(f"  cert         : {record.certificate_fingerprint}")
    print(f"  size         : {record.size_bytes} bytes")

    # 4. Verify integrity: the chain vouches for the checksum.
    assert client.check_hash("stations/tromso-01/reading-0001", payload).payload
    assert not client.check_hash("stations/tromso-01/reading-0001", b"tampered").payload
    print("\nIntegrity check against the chain: OK (tampered copy rejected)")

    # 5. Update the item and inspect its operation history.
    client.store_data("stations/tromso-01/reading-0001", payload + b" corrected=true")
    deployment.drain()
    history = client.get_key_history("stations/tromso-01/reading-0001").payload
    print(f"\nKey history has {len(history)} versions:")
    for entry in history:
        print(f"  block {entry['block']}: checksum {entry['record'].checksum[:16]}…")

    # 6. Fetch the data back through the on-chain pointer and verify it.
    result = client.get_data("stations/tromso-01/reading-0001")
    print("\nget_data:")
    print(f"  verified     : {result.verified}")
    print(f"  bytes        : {len(result.data)}")
    print(f"  latency      : {result.latency_s * 1000:.1f} ms "
          f"(chain {result.timings['chain_s'] * 1000:.1f} ms + "
          f"storage {result.timings['storage_s'] * 1000:.1f} ms)")

    heights = deployment.fabric.ledger_heights()
    print(f"\nAll peers agree on ledger height: {heights}")


if __name__ == "__main__":
    main()
