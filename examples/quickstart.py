#!/usr/bin/env python
"""Quickstart: store a data item with HyperProv and query its provenance.

Builds the paper's desktop deployment (four x86-64 peers, a Solo orderer,
an SSHFS-style off-chain storage node) and walks through the unified
``ProvenanceStore`` API via a service session: futures-based ``submit``,
``get``, ``verify``, ``history`` and the off-chain ``get_data`` fetch.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import HyperProvService
from repro.core import build_desktop_deployment


def main() -> None:
    # 1. Assemble the deployment (virtual hardware + Fabric network + storage).
    deployment = build_desktop_deployment()
    deployment.client.init()
    service = HyperProvService(deployment)
    print("Deployment ready:")
    print(f"  peers   : {[peer.name for peer in deployment.peers]}")
    print(f"  orderer : {deployment.fabric.orderer_node} (Solo)")
    print(f"  storage : ssh://storage (off-chain)")

    with service.session() as session:
        # 2. Submit a data item: the payload goes to off-chain storage, the
        #    checksum + pointer + creator certificate go on chain.  submit()
        #    is non-blocking — the returned future completes at commit.
        payload = b"temperature=21.5C humidity=40% station=tromso-01"
        handle = session.submit(
            "stations/tromso-01/reading-0001",
            payload,
            metadata={"unit": "celsius", "station": "tromso-01"},
        )
        print(f"\nSubmitted (in flight: {session.in_flight}, done: {handle.done})")
        session.drain()  # let the orderer cut the block and the peers commit
        print("StoreData committed:")
        print(f"  tx id        : {handle.handle.tx_id}")
        print(f"  block        : {handle.commit_block}")
        print(f"  total latency: {handle.latency_s * 1000:.1f} ms (virtual)")
        print(f"  checksum     : {handle.record.checksum[:16]}…")
        print(f"  location     : {handle.storage_receipt.location}")

        # 3. Query the provenance record back (a typed RecordView).
        view = session.get("stations/tromso-01/reading-0001")
        print("\nOn-chain record:")
        print(f"  creator      : {view.creator} ({view.organization})")
        print(f"  size         : {view.size_bytes} bytes")
        print(f"  read latency : {view.latency_s * 1000:.1f} ms")

        # 4. Verify integrity: the chain vouches for the checksum.
        assert session.verify("stations/tromso-01/reading-0001", payload)
        assert not session.verify("stations/tromso-01/reading-0001", b"tampered")
        print("\nIntegrity check against the chain: OK (tampered copy rejected)")

        # 5. Update the item and inspect its operation history.
        session.store("stations/tromso-01/reading-0001", payload + b" corrected=true")
        history = session.history("stations/tromso-01/reading-0001")
        print(f"\nKey history has {len(history)} versions:")
        for entry in history:
            print(f"  block {entry.block}: checksum {entry.view.checksum[:16]}…")

    # 6. Fetch the data back through the on-chain pointer and verify it
    #    (get_data spans chain + off-chain storage, beyond the protocol core).
    result = deployment.client.get_data("stations/tromso-01/reading-0001")
    print("\nget_data:")
    print(f"  verified     : {result.verified}")
    print(f"  bytes        : {len(result.data)}")
    print(f"  latency      : {result.latency_s * 1000:.1f} ms "
          f"(chain {result.timings['chain_s'] * 1000:.1f} ms + "
          f"storage {result.timings['storage_s'] * 1000:.1f} ms)")

    heights = deployment.fabric.ledger_heights()
    print(f"\nAll peers agree on ledger height: {heights}")


if __name__ == "__main__":
    main()
