#!/usr/bin/env python
"""IoT edge pipeline on Raspberry Pi devices with lineage queries.

This is the scenario the paper motivates: sensors and a camera at the edge
produce raw data; edge processing derives summaries from it; every item
and every derivation is anchored in HyperProv running on four Raspberry
Pi 3B+ devices.  Afterwards the example answers the questions a provenance
system exists for:

* where did this report come from (ancestry)?
* what would be affected if a sensor turned out to be mis-calibrated
  (impact analysis)?
* who contributed to this artifact (agents)?

Run with::

    python examples/iot_edge_pipeline.py
"""

from __future__ import annotations

from repro.core import build_rpi_deployment
from repro.core.watcher import FileWatcher
from repro.provenance.queries import LineageQueryEngine
from repro.workloads.scenarios import IoTPipelineWorkload, PipelineStage


def main() -> None:
    deployment = build_rpi_deployment()
    client = deployment.client
    print("Edge deployment: 4× Raspberry Pi 3B+ peers, client co-located with peer0")

    # --- Ingest three rounds of sensor readings and camera frames. ----------
    pipeline = IoTPipelineWorkload(
        client, sensor_count=3, camera_count=1, image_size_bytes=128 * 1024
    )
    for round_index in range(3):
        posts = pipeline.ingest_round()
        deployment.drain()
        print(f"round {round_index + 1}: stored {len(posts)} raw items "
              f"(latest block {posts[-1].commit_block})")

    # --- Derive: hourly summary over everything, then an anomaly report. ----
    summary = pipeline.derive(PipelineStage(name="hourly-summary", reduction_factor=0.2))
    deployment.drain()
    report = pipeline.derive(
        PipelineStage(name="anomaly-report", reduction_factor=0.05),
        source_posts=[summary],
        output_key="derived/anomaly-report/0001",
    )
    deployment.drain()
    print(f"\nderived {summary.record.key} from {len(summary.record.dependencies)} inputs")
    print(f"derived {report.record.key} from the summary")

    # --- A file watcher also anchors edge log files automatically. ----------
    watcher = FileWatcher(client, namespace="edge-logs")
    watcher.observe("gateway.log", b"boot ok\n")
    deployment.drain()
    watcher.observe("gateway.log", b"boot ok\nsensor-2 calibration drift\n")
    deployment.drain()
    print(f"watcher recorded {watcher.change_count} log versions")

    # --- Lineage queries. ----------------------------------------------------
    graph = client.build_provenance_graph()
    queries = LineageQueryEngine(graph)

    lineage = queries.lineage_report(report.record.key)
    print(f"\nLineage of {report.record.key}:")
    print(f"  ancestors           : {lineage.ancestor_count}")
    print(f"  derivation depth    : {lineage.depth}")
    print(f"  contributing agents : {lineage.contributing_agents}")

    # Impact analysis: which artifacts depend on the first sensor's readings?
    first_sensor_key = pipeline.raw_posts[0].record.key
    impact = queries.impact_set(first_sensor_key)
    print(f"\nIf {first_sensor_key} were mis-calibrated, these keys are affected:")
    for key in sorted(impact):
        print(f"  - {key}")

    # End-to-end integrity: every stored item still matches its on-chain checksum.
    checks = pipeline.verify_all()
    print(f"\nIntegrity verified for {sum(checks.values())}/{len(checks)} items")

    heights = deployment.fabric.ledger_heights()
    assert len(set(heights.values())) == 1
    print(f"All RPi peers agree on ledger height {next(iter(heights.values()))}")


if __name__ == "__main__":
    main()
