#!/usr/bin/env python
"""Regenerate every figure of the paper's evaluation section in one run.

Prints the tables behind Fig. 1 (desktop throughput/response vs data
size), Fig. 2 (the same sweep on Raspberry Pi) and Fig. 3 (RPi power per
10-minute interval), plus the operator-latency and baseline-comparison
tables.  This is the scripted equivalent of
``python -m repro.bench all`` with moderate request counts.

Run with::

    python examples/reproduce_figures.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.bench.baseline_compare import run_baseline_comparison
from repro.bench.fig1_throughput import run_fig1
from repro.bench.fig2_rpi import run_fig2
from repro.bench.fig3_energy import run_fig3
from repro.bench.ops_table import run_ops_table, to_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller request counts and shorter energy intervals")
    args = parser.parse_args()

    requests = 15 if args.quick else 40
    rpi_requests = 10 if args.quick else 25
    interval = 120.0 if args.quick else 600.0

    fig1 = run_fig1(requests_per_size=requests)
    table1 = fig1.to_table("Fig. 1 — desktop: throughput and response time vs data size")
    table1.add_note("expected shape: throughput falls, response time rises with size")
    print(table1.render())

    fig2 = run_fig2(requests_per_size=rpi_requests)
    table2 = fig2.to_table("Fig. 2 — RPi: throughput and response time vs data size")
    table2.add_note("expected shape: same trend as Fig. 1 at lower absolute performance")
    print("\n" + table2.render())

    fig3 = run_fig3(interval_s=interval)
    table3 = fig3.to_table()
    table3.add_note("paper reference points: idle-with-HLF 2.71 W, peak ≈ +10.7 %, max 3.64 W")
    print("\n" + table3.render())

    print("\n" + to_table(run_ops_table(repeats=3)).render())

    print("\n" + run_baseline_comparison(requests=20).to_table().render())


if __name__ == "__main__":
    main()
