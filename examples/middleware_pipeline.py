#!/usr/bin/env python
"""Transaction-middleware pipeline: caching, retries, batching and tracing.

Every HyperProv client operation flows through a configurable middleware
chain (request-id tracing → metrics → retry → read-cache) before reaching
the Fabric network, whose invoke path is itself a pipeline of stages
(build-proposal → collect-endorsements → submit-to-orderer → await-commit)
with an endorsement batcher spliced in.  This example shows how a single
declarative :class:`PipelineConfig` turns those concerns on and off:

1. the default pipeline (observation only — identical to the raw path),
2. the read cache collapsing repeated ``get`` calls to a local lookup,
3. commit-event invalidation keeping the cache coherent,
4. the endorsement batcher coalescing orderer submissions.

Run with::

    python examples/middleware_pipeline.py
"""

from __future__ import annotations

from repro.api import StoreRequest
from repro.core import build_desktop_deployment
from repro.middleware.config import PipelineConfig


def main() -> None:
    deployment = build_desktop_deployment()
    client = deployment.client
    client.init()
    store = client.as_store()
    print(f"Default middleware chain: {client.pipeline.middleware_names()}")

    # Seed a record to read back.
    payload = b"pressure=1013hPa station=tromso-01"
    store.store(StoreRequest(key="stations/tromso-01/pressure", data=payload))

    # 1. Without the cache, every get pays the peer round trip.
    cold = store.get("stations/tromso-01/pressure")
    warm = store.get("stations/tromso-01/pressure")
    print("\nCache disabled (paper behaviour):")
    print(f"  1st get: {cold.latency_s * 1000:.2f} ms   2nd get: {warm.latency_s * 1000:.2f} ms")

    # 2. One config object swaps the chain: cache + retry + batching.
    client.configure_pipeline(
        PipelineConfig(cache=True, retry_attempts=3, order_batch_size=4)
    )
    print(f"\nReconfigured chain: {client.pipeline.middleware_names()}"
          f" + fabric endorsement batcher (size 4)")

    miss = store.get("stations/tromso-01/pressure")
    hit = store.get("stations/tromso-01/pressure")
    print(f"  miss: {miss.latency_s * 1000:.2f} ms   hit: {hit.latency_s * 1000:.3f} ms")

    # 3. A committed update invalidates the cached entry automatically.
    store.store(StoreRequest(key="stations/tromso-01/pressure",
                             data=payload + b" corrected=true"))
    fresh = store.get("stations/tromso-01/pressure")
    print(f"  after commit-invalidation, re-read: {fresh.latency_s * 1000:.2f} ms "
          f"(checksum {fresh.checksum[:12]}…)")

    # 4. The batcher coalesces endorsed envelopes into one orderer send.
    for index in range(4):
        store.submit(
            StoreRequest(
                key=f"stations/tromso-01/batch-{index}",
                checksum="ab" * 32,
                location=f"file://batch/{index}",
            )
        )
    deployment.drain()
    flushes = deployment.fabric.metrics.get_counter("batcher.flushes").value
    batch_sizes = deployment.fabric.metrics.get_histogram("batcher.batch_size")
    print(f"\nEndorsement batcher flushes: {flushes:.0f} "
          f"(largest coalesced submission: {batch_sizes.maximum:.0f} envelopes)")

    hits = client.metrics.get_counter("cache.hits").value
    misses = client.metrics.get_counter("cache.misses").value
    print(f"Cache statistics: {hits:.0f} hits / {misses:.0f} misses")


if __name__ == "__main__":
    main()
