#!/usr/bin/env python
"""Sharded multi-channel routing with tenant-aware fair-share ordering.

One deployment hosts several channels, each ordered by its own machine;
the client pipeline's shard router spreads keys over them by consistent
hashing (a tenant's keys co-locate on one channel), cross-shard range and
history reads fan out and merge, and the orderer's intake can run a
fair-share scheduler so a heavy tenant cannot starve a light one.

Run with::

    python examples/sharded_channels.py
"""

from __future__ import annotations

from repro.api import HyperProvService
from repro.consensus.batching import BatchConfig
from repro.core import build_desktop_deployment
from repro.middleware import PipelineConfig
from repro.middleware.sharding import ConsistentHashRing
from repro.workloads import SkewedTenantWorkload

SHARDS = 4


def main() -> None:
    # --- A 4-channel deployment: orderer, orderer-1 … orderer-3. -----------
    deployment = build_desktop_deployment(shards=SHARDS)
    service = HyperProvService(deployment)
    print(f"channels hosted: {deployment.fabric.shard_count}")

    # --- Writes spread over the shards; reads follow their keys. -----------
    ring = ConsistentHashRing(SHARDS)
    with service.session(pipeline=PipelineConfig(shards=SHARDS)) as session:
        for index in range(12):
            session.submit(f"sensors/{index}", f"reading-{index}".encode())
        session.drain()

        for index in (0, 5, 11):
            key = f"sensors/{index}"
            view = session.get(key)
            print(f"{key} lives on shard {ring.route(key)}: {view.checksum[:12]}…")

        per_shard = [
            sum(deployment.fabric.shard_ledger_heights(i).values()) // len(deployment.peers)
            for i in range(SHARDS)
        ]
        print(f"blocks per shard (hashing is uneven by nature): {per_shard}")

        # A range scan fans out to every shard and merges in key order.
        rows = deployment.client.get_by_range("sensors/", "sensors/~").payload
        print(f"range scan found {len(rows)} records across {SHARDS} shards")

    # --- Fair-share ordering under a 10x-heavier neighbour. ----------------
    # Tenants that hash to different channels are isolated by the sharding
    # itself; the intake scheduler matters when they share one orderer, so
    # the comparison runs on a single-channel deployment with an explicit
    # per-envelope ordering cost (the backlog the scheduler arbitrates).
    def light_p95(scheduler: str) -> float:
        contended = build_desktop_deployment(
            scheduler=scheduler,
            orderer_intake_interval_s=0.01,
            batch_config=BatchConfig(batch_timeout_s=0.25),
        )
        workload = SkewedTenantWorkload(
            HyperProvService(contended), light_requests=10, skew=10,
            light_interval_s=0.05, heavy_interval_s=0.001,
        )
        return workload.run()["light"].p95_response_s

    fifo, fair = light_p95("fifo"), light_p95("fair-share")
    print(
        f"light tenant p95 under 10x skew: fifo {fifo * 1000:.0f} ms vs "
        f"fair-share {fair * 1000:.0f} ms ({fifo / fair:.1f}x better)"
    )


if __name__ == "__main__":
    main()
