"""The HyperProv client library.

Wraps a :class:`~repro.fabric.network.FabricNetwork` and an off-chain
storage backend behind the operator set described in the paper:

================  ===========================================================
Operator          Behaviour
================  ===========================================================
``init``          Sanity-check that the chaincode is instantiated and the
                  client identity validates against the channel MSP.
``post``          Record provenance metadata for data that is already stored
                  somewhere (checksum + location + dependencies + metadata).
``get``           Latest on-chain provenance record for a key.
``get_key_history``  Every recorded version of a key (operation history).
``check_hash``    Verify a checksum (or raw data) against the chain.
``store_data``    Store the data off-chain *and* post its provenance record.
``get_data``      Resolve the on-chain pointer, fetch the data off-chain and
                  verify its checksum against the chain.
``get_dependencies``  The dependency list of a key's latest record.
``get_lineage``   Full OPM lineage report built from committed history.
================  ===========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaincode.records import ProvenanceRecord
from repro.common.deprecation import warn_deprecated
from repro.common.errors import (
    ChaincodeError,
    ChecksumMismatchError,
    IncompleteTransactionError,
    NotFoundError,
    ValidationError,
)
from repro.common.hashing import checksum_of
from repro.common.metrics import MetricsRegistry
from repro.fabric.network import FabricNetwork
from repro.fabric.proposal import ProposalResponse, TransactionHandle
from repro.ledger.history import HistoryEntry
from repro.middleware.base import TransactionPipeline
from repro.middleware.cache import ReadCacheMiddleware, SharedReadCache
from repro.middleware.config import PipelineConfig, build_client_pipeline
from repro.middleware.context import Context, OperationKind
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.queries import LineageQueryEngine, LineageReport
from repro.storage.base import StorageReceipt
from repro.storage.content import ContentAddressedStore
from repro.storage.sshfs import SSHFSStorageBackend


@dataclass
class QueryResult:
    """Outcome of a read-only operation."""

    payload: Any
    latency_s: float
    #: Resume token of a paginated read (``None`` = last page / unpaginated).
    bookmark: Optional[str] = None
    #: The planner's access-path report, when the query asked to explain.
    plan: Optional[Dict[str, Any]] = None
    #: Degraded-mode marker: the peer was unreachable and this result was
    #: served from the client's last-known-good archive (``stale_reads``).
    stale: bool = False


@dataclass
class PostResult:
    """Outcome of a provenance-recording operation."""

    handle: TransactionHandle
    record: ProvenanceRecord
    storage_receipt: Optional[StorageReceipt] = None

    @property
    def total_latency_s(self) -> float:
        """Storage + on-chain latency as observed by the caller.

        Contract: only defined once the transaction has committed (drain
        the deployment, or wait for ``handle.on_complete``).  Raises
        :class:`~repro.common.errors.IncompleteTransactionError` while the
        handle is still in flight instead of silently propagating ``nan``.
        """
        if not self.handle.is_complete:
            raise IncompleteTransactionError(
                f"transaction {self.handle.tx_id} has not committed yet; drain the "
                f"network (or use handle.on_complete) before reading total_latency_s"
            )
        storage = self.storage_receipt.duration_s if self.storage_receipt else 0.0
        return storage + self.handle.latency_s


@dataclass
class DataResult:
    """Outcome of ``get_data``: record, bytes and verification status."""

    record: ProvenanceRecord
    data: bytes
    verified: bool
    latency_s: float
    timings: Dict[str, float] = field(default_factory=dict)


class HyperProvClient:
    """High-level HyperProv API bound to one client identity.

    .. deprecated::
        The blocking operator methods (``post``, ``get``,
        ``get_key_history``, ``check_hash``, ``store_data``) are kept as
        thin shims over the unified :class:`repro.api.ProvenanceStore`
        protocol; new code should use :meth:`as_store` or a
        :class:`repro.api.HyperProvService` session (``docs/api.md`` has
        the migration table).
    """

    def __init__(
        self,
        network: FabricNetwork,
        client_name: str,
        storage: Optional[ContentAddressedStore] = None,
        chaincode_name: str = "hyperprov",
        metrics: Optional[MetricsRegistry] = None,
        pipeline_config: Optional[PipelineConfig] = None,
        shared_cache: Optional[SharedReadCache] = None,
    ) -> None:
        self.network = network
        self.client_name = client_name
        self.storage = storage
        self.chaincode_name = chaincode_name
        self.metrics = metrics or MetricsRegistry(f"client.{client_name}")
        self._context = network.client_context(client_name)
        #: Optional shared cache tier backing the read cache when the
        #: pipeline config asks for ``shared_cache`` (set by the service
        #: facade so tenant sessions share one store).
        self.shared_cache = shared_cache
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.pipeline: TransactionPipeline = self._build_pipeline(self.pipeline_config)
        self._store_adapter = None

    def as_store(self):
        """This client as a unified :class:`repro.api.ProvenanceStore`."""
        if self._store_adapter is None:
            from repro.api.adapters import HyperProvStore

            self._store_adapter = HyperProvStore(self)
        return self._store_adapter

    # -------------------------------------------------------------- pipeline
    def _build_pipeline(self, config: PipelineConfig) -> TransactionPipeline:
        if config.shards > self.network.shard_count:
            raise ValidationError(
                f"pipeline wants {config.shards} shards but the network hosts "
                f"{self.network.shard_count} channel(s); build the deployment "
                f"with shards={config.shards}"
            )
        # The read cache invalidates off the commit streams; on a sharded
        # network that means one subscription per channel shard.
        cache_events = None
        if config.cache and self.network.shard_count > 1:
            cache_events = [
                self.network.shard_events(index)
                for index in range(self.network.shard_count)
            ]
        return build_client_pipeline(
            config,
            self._dispatch,
            clock=lambda: self.network.engine.now,
            events=self.network.events,
            metrics=self.metrics,
            cache_events=cache_events,
            shared_cache_store=self.shared_cache,
            engine=self.network.engine,
        )

    def configure_pipeline(self, config: PipelineConfig) -> None:
        """Swap the middleware chain (ablations: cache on/off, retry, batching).

        Also applies the config's fabric-side knobs — ``order_batch_size``
        to every endorsement batcher and ``scheduler`` to every shard's
        ordering service — so one declarative object describes the whole
        path.  Builds the replacement chain before touching the current
        one, so a rejected config (e.g. more shards than the network
        hosts) leaves the client fully functional on its old pipeline.
        """
        replacement = self._build_pipeline(config)
        self.pipeline.close()
        self.pipeline = replacement
        self.pipeline_config = config
        self.network.set_order_batch_size(config.order_batch_size)
        if config.scheduler is not None:
            self.network.set_scheduler(config.scheduler)
        # Index enablement is one-way here: an empty tuple means "this
        # config doesn't care", not "tear down another pipeline's indexes"
        # (several tenant pipelines share one deployment).
        if config.indexes:
            self.network.enable_secondary_indexes(config.indexes)

    @property
    def read_cache(self) -> Optional[ReadCacheMiddleware]:
        """The read-cache middleware, when the config enables it."""
        return self.pipeline.find(ReadCacheMiddleware)

    def _dispatch(self, ctx: Context):
        """Terminal pipeline handler: hand the operation to the network.

        The shard router (when configured) parks its routing decision in
        ``ctx.tags["shard"]``; unrouted pipelines run on shard 0, the
        historical single-channel path.
        """
        shard = ctx.tags.get("shard", 0)
        if ctx.is_read:
            return self.network.query(
                self.client_name,
                ctx.chaincode,
                ctx.function,
                ctx.args,
                at_time=ctx.at_time,
                shard=shard,
            )
        return self.network.submit_transaction(
            self.client_name,
            ctx.chaincode,
            ctx.function,
            ctx.args,
            at_time=ctx.at_time,
            payload_size_bytes=ctx.payload_size_bytes,
            shard=shard,
            deadline_at=ctx.tags.get("deadline_at"),
        )

    def _query(
        self,
        operation: str,
        function: str,
        args: List[str],
        at_time: Optional[float] = None,
    ) -> "tuple[ProposalResponse, float, Context]":
        """Run a read-only operator through the pipeline.

        Returns the response, the observed latency, and the drained
        context — callers surface degraded-mode markers (``ctx.stale``)
        on their results.
        """
        ctx = Context(
            operation=operation,
            kind=OperationKind.READ,
            chaincode=self.chaincode_name,
            function=function,
            args=list(args),
            client_name=self.client_name,
            at_time=at_time,
        )
        response, latency = self.pipeline.execute(ctx)
        return response, latency, ctx

    def _invoke(
        self,
        operation: str,
        function: str,
        args: List[str],
        payload_size_bytes: int = 0,
        at_time: Optional[float] = None,
    ) -> TransactionHandle:
        """Run a state-changing operator through the pipeline."""
        ctx = Context(
            operation=operation,
            kind=OperationKind.WRITE,
            chaincode=self.chaincode_name,
            function=function,
            args=list(args),
            client_name=self.client_name,
            payload_size_bytes=payload_size_bytes,
            at_time=at_time,
        )
        return self.pipeline.execute(ctx)

    # ------------------------------------------------------------------ init
    def init(self) -> bool:
        """Verify the channel is usable: chaincode instantiated, MSP accepts us."""
        definition = self.network.channel.chaincodes.find(self.chaincode_name)
        if definition is None:
            raise ChaincodeError(
                f"chaincode {self.chaincode_name!r} is not instantiated on "
                f"channel {self.network.channel.name!r}"
            )
        self.network.channel.msp.require_valid_certificate(self._context.identity.certificate)
        return True

    # ------------------------------------------------------------------ post
    def post(
        self,
        key: str,
        checksum: str,
        location: str,
        dependencies: Optional[List[str]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
        at_time: Optional[float] = None,
    ) -> PostResult:
        """Record provenance metadata for a data item already stored elsewhere.

        .. deprecated:: shim over ``ProvenanceStore.submit`` (metadata-only).
        """
        warn_deprecated("HyperProvClient.post", "ProvenanceStore.submit")
        return self._post(
            "post",
            key=key,
            checksum=checksum,
            location=location,
            dependencies=dependencies,
            metadata=metadata,
            size_bytes=size_bytes,
            at_time=at_time,
        )

    def _post(
        self,
        operation: str,
        key: str,
        checksum: str,
        location: str,
        dependencies: Optional[List[str]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
        at_time: Optional[float] = None,
    ) -> PostResult:
        """Shared ``set``-invoke body; ``operation`` labels metrics/traces."""
        dependencies = dependencies or []
        metadata = metadata or {}
        args = [
            key,
            checksum,
            location,
            json.dumps(dependencies),
            json.dumps(metadata, sort_keys=True),
            str(size_bytes),
        ]
        handle = self._invoke(operation, "set", args, at_time=at_time)
        record = ProvenanceRecord(
            key=key,
            checksum=checksum,
            location=location,
            creator=self._context.identity.name,
            organization=self._context.identity.organization,
            certificate_fingerprint=self._context.identity.certificate.fingerprint,
            dependencies=list(dependencies),
            metadata=dict(metadata),
            size_bytes=size_bytes,
        )
        self.metrics.counter("post").inc()
        return PostResult(handle=handle, record=record)

    # ------------------------------------------------------------------- get
    def get(self, key: str, at_time: Optional[float] = None) -> QueryResult:
        """Latest provenance record for ``key``.

        .. deprecated:: shim over ``ProvenanceStore.get``.
        """
        warn_deprecated("HyperProvClient.get", "ProvenanceStore.get")
        return self._get_impl(key, at_time=at_time)

    def _get_impl(self, key: str, at_time: Optional[float] = None) -> QueryResult:
        response, latency, ctx = self._query("get", "get", [key], at_time=at_time)
        if not response.is_ok or response.payload is None:
            raise NotFoundError(response.message or f"key {key!r} not found")
        self.metrics.histogram("get_latency_s").observe(latency)
        return QueryResult(
            payload=ProvenanceRecord.from_json(response.payload),
            latency_s=latency,
            stale=ctx.stale,
        )

    def get_key_history(self, key: str, at_time: Optional[float] = None) -> QueryResult:
        """Every recorded version of ``key`` (oldest first).

        .. deprecated:: shim over ``ProvenanceStore.history``.
        """
        warn_deprecated("HyperProvClient.get_key_history", "ProvenanceStore.history")
        return self._get_key_history_impl(key, at_time=at_time)

    def _get_key_history_impl(
        self, key: str, at_time: Optional[float] = None
    ) -> QueryResult:
        response, latency, ctx = self._query(
            "get_key_history", "getkeyhistory", [key], at_time=at_time
        )
        if not response.is_ok or response.payload is None:
            raise NotFoundError(response.message or f"no history for key {key!r}")
        entries = json.loads(response.payload)
        records = []
        for entry in entries:
            if entry.get("is_delete") or not entry.get("value"):
                records.append({"tx_id": entry["tx_id"], "deleted": True})
            else:
                records.append(
                    {
                        "tx_id": entry["tx_id"],
                        "block": entry["block"],
                        "record": ProvenanceRecord.from_json(entry["value"]),
                    }
                )
        self.metrics.histogram("history_latency_s").observe(latency)
        return QueryResult(payload=records, latency_s=latency, stale=ctx.stale)

    def check_hash(
        self,
        key: str,
        data_or_checksum: Any,
        at_time: Optional[float] = None,
    ) -> QueryResult:
        """Verify data (or a precomputed checksum) against the on-chain record.

        .. deprecated:: shim over ``ProvenanceStore.verify``.
        """
        warn_deprecated("HyperProvClient.check_hash", "ProvenanceStore.verify")
        return self._check_hash_impl(key, data_or_checksum, at_time=at_time)

    def _check_hash_impl(
        self,
        key: str,
        data_or_checksum: Any,
        at_time: Optional[float] = None,
    ) -> QueryResult:
        if isinstance(data_or_checksum, (bytes, bytearray)):
            checksum = checksum_of(data_or_checksum)
        else:
            checksum = str(data_or_checksum)
        response, latency, ctx = self._query(
            "check_hash", "checkhash", [key, checksum], at_time=at_time
        )
        if not response.is_ok or response.payload is None:
            raise NotFoundError(response.message or f"key {key!r} not found")
        matches = json.loads(response.payload)["matches"]
        return QueryResult(payload=bool(matches), latency_s=latency, stale=ctx.stale)

    def get_dependencies(self, key: str, at_time: Optional[float] = None) -> QueryResult:
        """Dependency list of the latest record for ``key``."""
        response, latency, ctx = self._query(
            "get_dependencies", "getdependencies", [key], at_time=at_time
        )
        if not response.is_ok or response.payload is None:
            raise NotFoundError(response.message or f"key {key!r} not found")
        return QueryResult(
            payload=json.loads(response.payload), latency_s=latency, stale=ctx.stale
        )

    def query_records(
        self,
        selector: Dict[str, Any],
        at_time: Optional[float] = None,
        limit: Optional[int] = None,
        bookmark: Optional[str] = None,
        explain: bool = False,
    ) -> QueryResult:
        """Rich query: records whose fields match ``selector``.

        Examples: ``{"creator": "camera-gw"}``, ``{"organization": "org2"}``,
        ``{"metadata.station": "tromso-01"}``, ``{"dependencies": "raw/a"}``.

        ``limit``/``bookmark`` page through the matches — pass the returned
        :attr:`QueryResult.bookmark` back to resume; ``None`` means the
        last page.  ``explain=True`` additionally surfaces the planner's
        access-path report in :attr:`QueryResult.plan`.
        """
        request = dict(selector)
        if limit is not None:
            request["_limit"] = limit
        if bookmark is not None:
            request["_bookmark"] = bookmark
        if explain:
            request["_explain"] = True
        response, latency, ctx = self._query(
            "query_records", "query", [json.dumps(request, sort_keys=True)],
            at_time=at_time,
        )
        if not response.is_ok or response.payload is None:
            raise ChaincodeError(response.message or "rich query failed")
        decoded = json.loads(response.payload)
        rows = decoded["records"] if isinstance(decoded, dict) else decoded
        records = [
            {"key": row["key"], "record": ProvenanceRecord.from_json(row["record"])}
            for row in rows
        ]
        self.metrics.histogram("query_latency_s").observe(latency)
        if isinstance(decoded, dict):
            return QueryResult(
                payload=records,
                latency_s=latency,
                bookmark=decoded.get("bookmark"),
                plan=decoded.get("plan"),
                stale=ctx.stale,
            )
        return QueryResult(payload=records, latency_s=latency, stale=ctx.stale)

    def on_provenance_recorded(self, callback) -> None:
        """Subscribe to the chaincode event emitted on every committed ``set``.

        ``callback`` receives a dict with ``key``, ``checksum``, ``creator``,
        ``tx_id`` and ``block_number`` once the recording transaction commits
        — the push-style integration the NodeJS client library offers through
        Fabric's event hub.
        """
        event_topic = "chaincode_event:provenance_recorded"

        def _handler(_topic: str, payload: Dict[str, Any]) -> None:
            details = json.loads(payload.get("payload") or "{}")
            details.update(
                {"tx_id": payload.get("tx_id"), "block_number": payload.get("block_number")}
            )
            callback(details)

        self.network.events.subscribe(event_topic, _handler)

    def get_by_range(
        self,
        start_key: str = "",
        end_key: str = "",
        at_time: Optional[float] = None,
        limit: Optional[int] = None,
        bookmark: Optional[str] = None,
    ) -> QueryResult:
        """Provenance records in a key range (optionally paginated)."""
        args = [start_key, end_key]
        if limit is not None or bookmark is not None:
            args.append(str(limit) if limit is not None else "0")
            args.append(bookmark or "")
        response, latency, ctx = self._query(
            "get_by_range", "getbyrange", args, at_time=at_time
        )
        if not response.is_ok or response.payload is None:
            raise ChaincodeError(response.message or "range query failed")
        decoded = json.loads(response.payload)
        rows = decoded["records"] if isinstance(decoded, dict) else decoded
        records = [
            {"key": row["key"], "record": ProvenanceRecord.from_json(row["record"])}
            for row in rows
            if not row["key"].startswith("__")
        ]
        if isinstance(decoded, dict):
            return QueryResult(
                payload=records,
                latency_s=latency,
                bookmark=decoded.get("bookmark"),
                stale=ctx.stale,
            )
        return QueryResult(payload=records, latency_s=latency, stale=ctx.stale)

    # ------------------------------------------------------------ store_data
    def _require_storage(self) -> ContentAddressedStore:
        if self.storage is None:
            raise ValidationError(
                "this client was constructed without an off-chain storage backend"
            )
        return self.storage

    def store_data(
        self,
        key: str,
        data: bytes,
        dependencies: Optional[List[str]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        at_time: Optional[float] = None,
    ) -> PostResult:
        """Store ``data`` off-chain and record its provenance on chain.

        This is the operator exercised by Fig. 1 / Fig. 2: its cost includes
        the checksum computation, the transfer to the storage node and the
        on-chain transaction.

        .. deprecated:: shim over ``ProvenanceStore.submit`` (with payload).
        """
        warn_deprecated("HyperProvClient.store_data", "ProvenanceStore.submit")
        return self._store_data_impl(
            key, data, dependencies=dependencies, metadata=metadata, at_time=at_time
        )

    def _store_data_impl(
        self,
        key: str,
        data: bytes,
        dependencies: Optional[List[str]] = None,
        metadata: Optional[Dict[str, Any]] = None,
        at_time: Optional[float] = None,
    ) -> PostResult:
        storage = self._require_storage()
        start = self.network.engine.now if at_time is None else at_time
        receipt = self._store_payload(storage, data, start)
        post = self._post(
            "store_data",
            key=key,
            checksum=receipt.checksum,
            location=receipt.location,
            dependencies=dependencies,
            metadata=metadata,
            size_bytes=len(data),
            at_time=receipt.completed_at,
        )
        self.metrics.counter("store_data").inc()
        self.metrics.histogram("store_data_bytes").observe(len(data))
        return PostResult(handle=post.handle, record=post.record, storage_receipt=receipt)

    def _store_payload(
        self, storage: ContentAddressedStore, data: bytes, at_time: float
    ) -> StorageReceipt:
        backend = storage.backend
        if isinstance(backend, SSHFSStorageBackend):
            return storage.put(
                data,
                at_time=at_time,
                client_device=self._context.device,
                client_node=self._context.host_node,
            )
        return storage.put(data, at_time=at_time)

    def get_data(self, key: str, at_time: Optional[float] = None) -> DataResult:
        """Fetch the data behind ``key`` from off-chain storage and verify it."""
        storage = self._require_storage()
        start = self.network.engine.now if at_time is None else at_time
        query = self._get_impl(key, at_time=start)
        record: ProvenanceRecord = query.payload

        backend = storage.backend
        fetch_start = start + query.latency_s
        if isinstance(backend, SSHFSStorageBackend):
            receipt = storage.get(
                record.checksum,
                at_time=fetch_start,
                client_device=self._context.device,
                client_node=self._context.host_node,
                expected_checksum=record.checksum,
            )
        else:
            receipt = storage.get(record.checksum, at_time=fetch_start)
        obj = storage.get_object(record.checksum)
        if obj is None:
            raise NotFoundError(f"data for key {key!r} is missing from off-chain storage")
        verified = checksum_of(obj.data) == record.checksum
        if not verified:
            raise ChecksumMismatchError(record.checksum, checksum_of(obj.data))
        latency = (receipt.completed_at - start)
        self.metrics.histogram("get_data_latency_s").observe(latency)
        return DataResult(
            record=record,
            data=obj.data,
            verified=verified,
            latency_s=latency,
            timings={"chain_s": query.latency_s, "storage_s": receipt.duration_s},
        )

    # -------------------------------------------------------------- lineage
    def build_provenance_graph(self, peer_name: Optional[str] = None) -> ProvenanceGraph:
        """Reconstruct the OPM graph from a peer's committed key history.

        On a sharded network the peer hosts one ledger per channel; the
        graph aggregates every shard's history, ordered by commit
        timestamp (block numbers are only comparable within one shard).
        """
        name = peer_name or self._context.anchor_peer
        graph = ProvenanceGraph()
        entries: List[HistoryEntry] = []
        for index in range(self.network.shard_count):
            peer = self.network.peer(name, shard=index)
            for key in peer.history.keys():
                if key.startswith("__"):
                    continue
                entries.extend(peer.history.history_for_key(key))
        entries.sort(key=lambda e: (e.timestamp, e.block_number, e.tx_number))
        for entry in entries:
            if entry.is_delete or not entry.value:
                continue
            record = ProvenanceRecord.from_json(entry.value)
            graph.ingest_record(record, tx_id=entry.tx_id, block_number=entry.block_number)
        return graph

    def get_lineage(self, key: str, peer_name: Optional[str] = None) -> LineageReport:
        """Full lineage report (ancestors, descendants, agents) for ``key``."""
        graph = self.build_provenance_graph(peer_name)
        return LineageQueryEngine(graph).lineage_report(key)
