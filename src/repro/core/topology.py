"""Deployment builders for the paper's two testbeds.

``build_desktop_deployment`` assembles the four-machine x86-64 network
(2× Xeon E5-1603, 1× i7-4700MQ, 1× i3-2310M; the first Xeon also runs the
orderer) and ``build_rpi_deployment`` the four Raspberry Pi 3B+ network.
Both attach an SSHFS off-chain storage backend on a separate node and a
client application, mirroring Section 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.consensus.batching import BatchConfig
from repro.consensus.raft import RaftOrderingService
from repro.consensus.scheduler import make_scheduler
from repro.consensus.solo import SoloOrderingService
from repro.core.client import HyperProvClient
from repro.chaincode.hyperprov import HyperProvChaincode
from repro.devices.model import DeviceModel
from repro.devices.profiles import (
    DESKTOP_PROFILES,
    HardwareProfile,
    RPI_PROFILES,
    XEON_E5_1603,
)
from repro.energy.meter import PowerMeter
from repro.energy.power import PowerModel
from repro.fabric.channel import Channel
from repro.fabric.network import FabricNetwork, FabricNetworkConfig
from repro.fabric.peer import Peer
from repro.membership.identity import Organization
from repro.membership.msp import MSP
from repro.membership.policies import majority_of
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom
from repro.storage.content import ContentAddressedStore
from repro.storage.sshfs import SSHFSConfig, SSHFSStorageBackend


@dataclass
class DeploymentSpec:
    """Parameters of a deployment build."""

    #: Hardware profile per peer node, in order.
    peer_profiles: Sequence[HardwareProfile]
    #: Hardware profile of the node running the ordering service.
    orderer_profile: HardwareProfile
    #: Hardware profile of the off-chain storage node.
    storage_profile: HardwareProfile
    #: Hardware profile of the machine running the client application.
    client_profile: HardwareProfile
    #: Index of the peer the client co-locates with (None = separate host).
    client_colocated_with: Optional[int] = 0
    #: Orderer batching parameters.
    batch_config: BatchConfig = field(default_factory=BatchConfig)
    #: ``"solo"`` or ``"raft"``.
    ordering: str = "solo"
    #: Raft cluster size when ``ordering == "raft"``.
    raft_cluster_size: int = 3
    #: Enable FastFabric-style parallel validation on every peer.
    parallel_validation: bool = False
    #: Channels the deployment hosts.  Every peer node joins every channel
    #: (one ledger per channel, as in Fabric); each extra channel gets its
    #: own ordering service on its own orderer machine, so the ordering
    #: path scales horizontally while peers and storage stay shared.
    shards: int = 1
    #: Orderer intake policy: ``"fifo"`` or ``"fair-share"`` (per shard).
    scheduler: str = "fifo"
    #: Per-tenant weights for the fair-share scheduler (default weight 1).
    scheduler_weights: Optional[Dict[str, float]] = None
    #: Per-envelope orderer processing time; 0 keeps intake synchronous
    #: (the historical behaviour).  Positive values bound each channel's
    #: ordering rate, which is what makes scheduling policy and shard
    #: scaling observable.
    orderer_intake_interval_s: float = 0.0
    #: Worker processes the parallel executor may spread this deployment's
    #: channel shards over (clamped to ``shards`` at run time).  The
    #: sequential builder ignores it — 1 keeps everything on one engine,
    #: which remains the default execution mode.
    workers: int = 1
    #: Field-value secondary indexes attached to every peer ledger at build
    #: time (same syntax as ``PipelineConfig.indexes``; empty = none).
    indexes: Sequence[str] = ()
    seed: int = 42
    name: str = "deployment"


@dataclass
class HyperProvDeployment:
    """Everything the benchmarks need from one assembled deployment."""

    spec: DeploymentSpec
    engine: SimulationEngine
    network: NetworkFabric
    fabric: FabricNetwork
    channel: Channel
    peers: List[Peer]
    devices: Dict[str, DeviceModel]
    storage_backend: SSHFSStorageBackend
    storage: ContentAddressedStore
    client: HyperProvClient
    client_device: DeviceModel
    power_meters: Dict[str, PowerMeter]

    def drain(self) -> None:
        """Flush pending batches and run the simulation to quiescence."""
        self.fabric.flush_and_drain()

    def device(self, name: str) -> DeviceModel:
        model = self.devices.get(name)
        if model is None:
            raise ConfigurationError(f"unknown device {name!r}")
        return model


def build_deployment(spec: DeploymentSpec) -> HyperProvDeployment:
    """Assemble a full HyperProv deployment from a :class:`DeploymentSpec`."""
    if not spec.peer_profiles:
        raise ConfigurationError("a deployment needs at least one peer")
    if spec.shards < 1:
        raise ConfigurationError("a deployment needs at least one channel shard")
    if spec.workers < 1:
        raise ConfigurationError("a deployment needs at least one worker")

    engine = SimulationEngine()
    rng = DeterministicRandom(spec.seed)
    network = NetworkFabric(engine=engine, rng=rng.fork("network"))

    # Organizations: one per peer node, like the paper's four-machine setup.
    organizations = [Organization(f"org{i + 1}") for i in range(len(spec.peer_profiles))]
    msp = MSP(organizations)
    channel = Channel(name="hyperprov-channel", msp=msp, batch_config=spec.batch_config)

    devices: Dict[str, DeviceModel] = {}
    peers: List[Peer] = []
    for index, (org, profile) in enumerate(zip(organizations, spec.peer_profiles)):
        peer_name = f"peer{index}.{org.name}"
        device = DeviceModel(
            name=peer_name, profile=profile, rng=rng.fork(f"device:{peer_name}")
        )
        devices[peer_name] = device
        identity = org.enroll(f"peer{index}", role="peer")
        peer = Peer(
            name=peer_name,
            identity=identity,
            device=device,
            channel=channel,
            parallel_validation=spec.parallel_validation,
        )
        peers.append(peer)

    # Ordering service.
    orderer_node = "orderer"
    orderer_device = DeviceModel(
        name=orderer_node, profile=spec.orderer_profile, rng=rng.fork("device:orderer")
    )
    devices[orderer_node] = orderer_device
    network.register_node(orderer_node, profile=spec.orderer_profile.nic)

    def build_orderer(name: str, rng_label: str) -> object:
        scheduler = make_scheduler(spec.scheduler, spec.scheduler_weights)
        if spec.ordering == "solo":
            return SoloOrderingService(
                name=name,
                engine=engine,
                batch_config=spec.batch_config,
                scheduler=scheduler,
                intake_interval_s=spec.orderer_intake_interval_s,
            )
        if spec.ordering == "raft":
            return RaftOrderingService(
                name=name,
                engine=engine,
                network=network,
                cluster_size=spec.raft_cluster_size,
                batch_config=spec.batch_config,
                rng=rng.fork(rng_label),
                scheduler=scheduler,
                intake_interval_s=spec.orderer_intake_interval_s,
            )
        raise ConfigurationError(f"unknown ordering mode {spec.ordering!r}")

    orderer = build_orderer(orderer_node, "raft")

    fabric = FabricNetwork(
        engine=engine,
        network=network,
        channel=channel,
        orderer=orderer,
        orderer_node=orderer_node,
        orderer_device=orderer_device,
        config=FabricNetworkConfig(),
    )
    fabric.default_scheduler_weights = (
        dict(spec.scheduler_weights) if spec.scheduler_weights else None
    )
    for peer in peers:
        fabric.add_peer(peer)

    # Chaincode: HyperProv, endorsed by a majority of the organizations.
    policy = majority_of([org.name for org in organizations])
    channel.instantiate_chaincode(HyperProvChaincode(), endorsement_policy=policy)

    # Extra channel shards: each gets its own ordering service on its own
    # orderer machine, and every peer node joins with a per-channel ledger
    # replica sharing the node's device model (one peer process, many
    # channels — so CPU contention across channels is still modelled).
    for shard_index in range(1, spec.shards):
        shard_channel = Channel(
            name=f"hyperprov-channel-{shard_index}",
            msp=msp,
            batch_config=spec.batch_config,
        )
        shard_orderer_node = f"{orderer_node}-{shard_index}"
        shard_orderer_device = DeviceModel(
            name=shard_orderer_node,
            profile=spec.orderer_profile,
            rng=rng.fork(f"device:{shard_orderer_node}"),
        )
        devices[shard_orderer_node] = shard_orderer_device
        network.register_node(shard_orderer_node, profile=spec.orderer_profile.nic)
        shard_orderer = build_orderer(shard_orderer_node, f"raft-{shard_index}")
        index = fabric.add_channel(
            shard_channel,
            orderer=shard_orderer,
            orderer_node=shard_orderer_node,
            orderer_device=shard_orderer_device,
        )
        for peer in peers:
            replica = Peer(
                name=peer.name,
                identity=peer.identity,
                device=peer.device,
                channel=shard_channel,
                parallel_validation=spec.parallel_validation,
            )
            fabric.add_peer(replica, shard=index)
        shard_channel.instantiate_chaincode(
            HyperProvChaincode(), endorsement_policy=policy
        )

    # Off-chain storage on its own node.
    storage_node = "storage"
    storage_device = DeviceModel(
        name=storage_node, profile=spec.storage_profile, rng=rng.fork("device:storage")
    )
    devices[storage_node] = storage_device
    storage_backend = SSHFSStorageBackend(
        network=network,
        storage_device=storage_device,
        config=SSHFSConfig(storage_node=storage_node),
    )
    storage = ContentAddressedStore(storage_backend)

    # Client application.
    client_org = organizations[0]
    client_identity = client_org.enroll("hyperprov-client", role="client")
    if spec.client_colocated_with is not None:
        host_node = peers[spec.client_colocated_with].name
        client_device = devices[host_node]
        anchor_peer = peers[spec.client_colocated_with].name
    else:
        host_node = "client"
        client_device = DeviceModel(
            name=host_node, profile=spec.client_profile, rng=rng.fork("device:client")
        )
        devices[host_node] = client_device
        anchor_peer = peers[0].name
    fabric.add_client(
        "hyperprov-client",
        identity=client_identity,
        device=client_device,
        host_node=host_node,
        anchor_peer=anchor_peer,
    )
    client = HyperProvClient(
        network=fabric, client_name="hyperprov-client", storage=storage
    )

    if spec.indexes:
        fabric.enable_secondary_indexes(tuple(spec.indexes))

    power_meters = {
        name: PowerMeter(PowerModel(device)) for name, device in devices.items()
    }

    return HyperProvDeployment(
        spec=spec,
        engine=engine,
        network=network,
        fabric=fabric,
        channel=channel,
        peers=peers,
        devices=devices,
        storage_backend=storage_backend,
        storage=storage,
        client=client,
        client_device=client_device,
        power_meters=power_meters,
    )


def build_desktop_deployment(
    batch_config: Optional[BatchConfig] = None,
    ordering: str = "solo",
    parallel_validation: bool = False,
    shards: int = 1,
    scheduler: str = "fifo",
    scheduler_weights: Optional[Dict[str, float]] = None,
    orderer_intake_interval_s: float = 0.0,
    indexes: Sequence[str] = (),
    seed: int = 42,
) -> HyperProvDeployment:
    """The paper's desktop setup: 2× Xeon E5-1603, i7-4700MQ, i3-2310M.

    One Xeon also hosts the orderer; the client runs on the i7 machine
    (co-located with its peer); off-chain storage is a separate node.
    ``shards`` adds channels, each ordered by its own Xeon-class machine.
    """
    spec = DeploymentSpec(
        name="desktop",
        peer_profiles=DESKTOP_PROFILES,
        orderer_profile=XEON_E5_1603,
        storage_profile=XEON_E5_1603,
        client_profile=DESKTOP_PROFILES[2],
        client_colocated_with=2,
        batch_config=batch_config or BatchConfig(),
        ordering=ordering,
        parallel_validation=parallel_validation,
        shards=shards,
        scheduler=scheduler,
        scheduler_weights=scheduler_weights,
        orderer_intake_interval_s=orderer_intake_interval_s,
        indexes=indexes,
        seed=seed,
    )
    return build_deployment(spec)


def build_rpi_deployment(
    batch_config: Optional[BatchConfig] = None,
    ordering: str = "solo",
    parallel_validation: bool = False,
    shards: int = 1,
    scheduler: str = "fifo",
    scheduler_weights: Optional[Dict[str, float]] = None,
    orderer_intake_interval_s: float = 0.0,
    indexes: Sequence[str] = (),
    seed: int = 42,
) -> HyperProvDeployment:
    """The paper's edge setup: 4× Raspberry Pi 3B+ on one switch.

    The orderer runs on one of the RPis, the client is co-located with a
    peer (both processes on the same RPi, as in the paper's energy
    measurements), and the SSHFS storage node is a separate machine.
    """
    spec = DeploymentSpec(
        name="rpi",
        peer_profiles=RPI_PROFILES,
        orderer_profile=RPI_PROFILES[0],
        storage_profile=XEON_E5_1603,
        client_profile=RPI_PROFILES[0],
        client_colocated_with=0,
        batch_config=batch_config or BatchConfig(),
        ordering=ordering,
        parallel_validation=parallel_validation,
        shards=shards,
        scheduler=scheduler,
        scheduler_weights=scheduler_weights,
        orderer_intake_interval_s=orderer_intake_interval_s,
        indexes=indexes,
        seed=seed,
    )
    return build_deployment(spec)
