"""File watcher: automatic provenance capture for a directory of files.

The original HyperProv client ships a watcher that monitors a directory
and posts provenance for every new or modified file — this is how the IoT
use case ("camera writes an image, its provenance is anchored
automatically") is wired up.  The simulated equivalent watches an
in-memory namespace: applications register file versions with
:meth:`FileWatcher.observe` and the watcher stores them through the
HyperProv client, tracking derivations between consecutive versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.api.protocol import StoreRequest
from repro.common.hashing import checksum_of
from repro.core.client import HyperProvClient


@dataclass
class WatchedChange:
    """One observed file change and the provenance action it triggered."""

    path: str
    checksum: str
    size_bytes: int
    is_new: bool
    #: Future for the recording submission (:class:`repro.api.SubmitHandle`).
    post: object


class FileWatcher:
    """Posts provenance for every observed change under a namespace prefix."""

    def __init__(
        self,
        client: HyperProvClient,
        namespace: str = "files",
        track_derivations: bool = True,
    ) -> None:
        self.client = client
        self.namespace = namespace
        #: Link each new version to the previous version of the same path.
        self.track_derivations = track_derivations
        self._last_checksum: Dict[str, str] = {}
        self.changes: List[WatchedChange] = []

    def key_for(self, path: str) -> str:
        """Ledger key used for a watched path."""
        return f"{self.namespace}/{path}"

    def observe(
        self,
        path: str,
        data: bytes,
        metadata: Optional[Dict[str, object]] = None,
        at_time: Optional[float] = None,
    ) -> Optional[WatchedChange]:
        """Report the current contents of ``path``.

        Returns the change that was recorded, or ``None`` when the contents
        are identical to the last observed version (no provenance posted).
        """
        checksum = checksum_of(data)
        key = self.key_for(path)
        previous = self._last_checksum.get(path)
        if previous == checksum:
            return None

        dependencies: List[str] = []
        if self.track_derivations and previous is not None:
            dependencies = [key]

        combined_metadata = {"path": path, "watched": True}
        if metadata:
            combined_metadata.update(metadata)

        post = self.client.as_store().submit(
            StoreRequest(
                key=key,
                data=data,
                dependencies=tuple(dependencies),
                metadata=combined_metadata,
            ),
            at_time=at_time,
        )
        change = WatchedChange(
            path=path,
            checksum=checksum,
            size_bytes=len(data),
            is_new=previous is None,
            post=post,
        )
        self._last_checksum[path] = checksum
        self.changes.append(change)
        return change

    def observed_paths(self) -> List[str]:
        """Paths the watcher has recorded at least once."""
        return sorted(self._last_checksum)

    @property
    def change_count(self) -> int:
        return len(self.changes)
