"""HyperProv's public client-facing layer.

This is the Python equivalent of the paper's NodeJS client library: it
hides the Fabric machinery behind a handful of operators (``post``,
``get``, ``get_key_history``, ``store_data``, ``get_data``, …), integrates
the off-chain storage backend, and exposes lineage queries over the Open
Provenance Model graph.

:mod:`repro.core.topology` builds the two deployments evaluated in the
paper (the x86-64 desktop setup and the Raspberry Pi edge setup) with one
call each.
"""

from repro.core.client import HyperProvClient, PostResult, DataResult, QueryResult
from repro.core.topology import (
    HyperProvDeployment,
    DeploymentSpec,
    build_deployment,
    build_desktop_deployment,
    build_rpi_deployment,
)
from repro.core.watcher import FileWatcher, WatchedChange

__all__ = [
    "HyperProvClient",
    "PostResult",
    "DataResult",
    "QueryResult",
    "HyperProvDeployment",
    "DeploymentSpec",
    "build_deployment",
    "build_desktop_deployment",
    "build_rpi_deployment",
    "FileWatcher",
    "WatchedChange",
]
