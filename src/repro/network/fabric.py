"""The network fabric connecting every simulated node.

The fabric owns the directed links between registered nodes, applies the
partition manager, charges transfer time to the virtual clock of the
discrete-event engine, and records per-node traffic statistics that the
energy model later converts into NIC activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import NetworkError, NotFoundError, PartitionError
from repro.common.ids import DeterministicIdGenerator
from repro.common.metrics import MetricsRegistry
from repro.network.link import Link, LinkProfile, GIGABIT_LAN
from repro.network.partitions import PartitionManager
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom


@dataclass
class Message:
    """A unit of communication between two nodes."""

    message_id: str
    source: str
    destination: str
    msg_type: str
    payload: Any
    size_bytes: int
    sent_at: float = 0.0
    delivered_at: float = 0.0
    metadata: Dict[str, Any] = field(default_factory=dict)


@dataclass
class DeliveryReceipt:
    """Returned by :meth:`NetworkFabric.send`; describes the delivery."""

    message: Message
    latency_s: float
    delivered: bool


MessageHandler = Callable[[Message], None]


@dataclass
class LinkFault:
    """Degrades one directed link inside a virtual-time window.

    ``drop_rate`` models a dropped frame recovered by one retransmission
    (the transfer is charged twice); ``duplicate_rate`` models a spurious
    retransmission (the sender's byte counter is charged twice but the
    receiver sees one logical delivery).  Both draw from the fault's own
    forked RNG stream so runs stay byte-reproducible regardless of what
    else consumes randomness.
    """

    source: str
    destination: str
    start_s: float
    end_s: float
    extra_latency_s: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    rng: Optional[DeterministicRandom] = field(default=None, repr=False)

    def active_at(self, now: float) -> bool:
        return self.start_s <= now < self.end_s


class NetworkFabric:
    """Registry of nodes and links plus synchronous/scheduled delivery."""

    def __init__(
        self,
        engine: Optional[SimulationEngine] = None,
        default_profile: LinkProfile = GIGABIT_LAN,
        rng: Optional[DeterministicRandom] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        self.default_profile = default_profile
        self._rng = rng or DeterministicRandom(11)
        self.metrics = metrics or MetricsRegistry("network")
        self.partitions = PartitionManager()
        self._handlers: Dict[str, MessageHandler] = {}
        self._links: Dict[Tuple[str, str], Link] = {}
        self._node_profiles: Dict[str, LinkProfile] = {}
        self._ids = DeterministicIdGenerator("msg")
        self._bytes_by_node: Dict[str, int] = {}
        # Unknown-site partitions must raise, not no-op (chaos-plan typos).
        self.partitions.bind_known_nodes(lambda: self._handlers.keys())
        #: Scheduled link degradations; empty on fault-free runs so the
        #: transfer hot path never pays a per-message fault check.
        self._link_faults: List[LinkFault] = []

    # ------------------------------------------------------------------ nodes
    def register_node(
        self,
        name: str,
        handler: Optional[MessageHandler] = None,
        profile: Optional[LinkProfile] = None,
    ) -> None:
        """Add a node to the fabric with an optional inbound message handler."""
        self._handlers[name] = handler or (lambda message: None)
        self._node_profiles[name] = profile or self.default_profile
        self._bytes_by_node.setdefault(name, 0)

    def set_handler(self, name: str, handler: MessageHandler) -> None:
        """Replace the inbound handler for a registered node."""
        if name not in self._handlers:
            raise NotFoundError(f"node {name!r} is not registered on the network")
        self._handlers[name] = handler

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._handlers))

    def bytes_sent_by(self, node: str) -> int:
        """Total bytes a node has put on the wire (used by the energy model)."""
        return self._bytes_by_node.get(node, 0)

    # ------------------------------------------------------------------ links
    def _link(self, source: str, destination: str) -> Link:
        key = (source, destination)
        if key not in self._links:
            # The slower endpoint's profile dominates a LAN path.
            src_profile = self._node_profiles.get(source, self.default_profile)
            dst_profile = self._node_profiles.get(destination, self.default_profile)
            profile = min(
                (src_profile, dst_profile), key=lambda p: p.bandwidth_bps
            )
            self._links[key] = Link(
                source, destination, profile, rng=self._rng.fork(f"{source}->{destination}")
            )
        return self._links[key]

    def set_link_profile(self, source: str, destination: str, profile: LinkProfile) -> None:
        """Override the profile of one directed link (e.g. a WAN hop)."""
        self._links[(source, destination)] = Link(
            source, destination, profile, rng=self._rng.fork(f"{source}->{destination}")
        )

    # ----------------------------------------------------------- link faults
    def inject_link_fault(
        self,
        source: str,
        destination: str,
        start_s: float,
        end_s: float,
        extra_latency_s: float = 0.0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> LinkFault:
        """Degrade one directed link inside ``[start_s, end_s)`` virtual time."""
        if source not in self._handlers:
            raise NotFoundError(f"source node {source!r} is not registered")
        if destination not in self._handlers:
            raise NotFoundError(f"destination node {destination!r} is not registered")
        if end_s < start_s:
            raise ValueError(f"link fault window [{start_s}, {end_s}) is inverted")
        fault = LinkFault(
            source=source,
            destination=destination,
            start_s=start_s,
            end_s=end_s,
            extra_latency_s=extra_latency_s,
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            rng=self._rng.fork(f"linkfault:{source}->{destination}:{start_s}"),
        )
        self._link_faults.append(fault)
        return fault

    def clear_link_faults(self) -> None:
        """Remove every installed link fault."""
        self._link_faults = []

    def _apply_link_faults(
        self, source: str, destination: str, size_bytes: int, duration: float
    ) -> float:
        """Fold active fault windows into one transfer's duration.

        Only called when at least one fault is installed, so fault-free
        runs keep byte-identical virtual time (no extra RNG draws).
        """
        now = self.engine.now
        for fault in self._link_faults:
            if fault.source != source or fault.destination != destination:
                continue
            if not fault.active_at(now):
                continue
            duration += fault.extra_latency_s
            rng = fault.rng or self._rng
            if fault.drop_rate > 0.0 and rng.random() < fault.drop_rate:
                # Dropped frame, recovered by one retransmission: the bytes
                # cross the wire twice and the transfer takes twice as long.
                duration *= 2.0
                self._bytes_by_node[source] = (
                    self._bytes_by_node.get(source, 0) + size_bytes
                )
                self.metrics.counter("bytes").inc(size_bytes)
                self.metrics.counter("fault.dropped").inc()
            if fault.duplicate_rate > 0.0 and rng.random() < fault.duplicate_rate:
                # Spurious retransmission: extra bytes on the wire, but the
                # receiver dedupes so latency is unaffected.
                self._bytes_by_node[source] = (
                    self._bytes_by_node.get(source, 0) + size_bytes
                )
                self.metrics.counter("bytes").inc(size_bytes)
                self.metrics.counter("fault.duplicated").inc()
        return duration

    # --------------------------------------------------------------- delivery
    def _check_route(self, source: str, destination: str) -> None:
        if source not in self._handlers:
            raise NotFoundError(f"source node {source!r} is not registered")
        if destination not in self._handlers:
            raise NotFoundError(f"destination node {destination!r} is not registered")
        if not self.partitions.can_communicate(source, destination):
            raise PartitionError(
                f"{source!r} and {destination!r} are in different network partitions"
            )

    def estimate_transfer_time(self, source: str, destination: str, size_bytes: int) -> float:
        """Transfer time for moving ``size_bytes`` from ``source`` to ``destination``.

        Unlike :meth:`send`, no handler is invoked — the protocol layers use
        this when they already know where the payload logically lands (the
        endorsement/ordering/commit flow) — but the traffic is still charged
        to the sending node so per-node byte accounting stays meaningful.
        """
        self._check_route(source, destination)
        if source == destination:
            return 0.0
        duration = self._link(source, destination).transfer_time(size_bytes)
        if self._link_faults:
            duration = self._apply_link_faults(source, destination, size_bytes, duration)
        self._bytes_by_node[source] = self._bytes_by_node.get(source, 0) + size_bytes
        self.metrics.counter("bytes").inc(size_bytes)
        return duration

    def send(
        self,
        source: str,
        destination: str,
        msg_type: str,
        payload: Any,
        size_bytes: int,
        deliver: bool = True,
    ) -> DeliveryReceipt:
        """Deliver a message synchronously, charging transfer time to the clock.

        Loopback messages (``source == destination``) are free, matching the
        co-located peer/client processes on each RPi in the paper's setup.
        """
        self._check_route(source, destination)
        message = Message(
            message_id=self._ids.next(),
            source=source,
            destination=destination,
            msg_type=msg_type,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.engine.now,
        )
        if source == destination:
            latency = 0.0
        else:
            latency = self._link(source, destination).transfer_time(size_bytes)
            if self._link_faults:
                latency = self._apply_link_faults(source, destination, size_bytes, latency)
        self._bytes_by_node[source] = self._bytes_by_node.get(source, 0) + size_bytes
        self.metrics.counter("messages").inc()
        self.metrics.counter("bytes").inc(size_bytes)
        self.metrics.histogram("latency_s").observe(latency)
        message.delivered_at = message.sent_at + latency
        if deliver:
            handler = self._handlers[destination]
            handler(message)
        return DeliveryReceipt(message=message, latency_s=latency, delivered=deliver)

    def send_later(
        self,
        source: str,
        destination: str,
        msg_type: str,
        payload: Any,
        size_bytes: int,
    ) -> DeliveryReceipt:
        """Schedule delivery through the discrete-event engine.

        The receiving handler runs as a simulation event at the computed
        arrival time rather than inline, which is what the gossip and Raft
        layers use so that message interleavings respect virtual time.
        """
        receipt = self.send(source, destination, msg_type, payload, size_bytes, deliver=False)
        handler = self._handlers[destination]
        self.engine.schedule_at(
            receipt.message.delivered_at,
            lambda message=receipt.message: handler(message),
            label=f"deliver:{msg_type}:{destination}",
        )
        return receipt

    def broadcast(
        self,
        source: str,
        msg_type: str,
        payload: Any,
        size_bytes: int,
    ) -> Dict[str, DeliveryReceipt]:
        """Send the same message to every reachable node except the source."""
        receipts: Dict[str, DeliveryReceipt] = {}
        for destination in self.nodes:
            if destination == source:
                continue
            if not self.partitions.can_communicate(source, destination):
                continue
            try:
                receipts[destination] = self.send(
                    source, destination, msg_type, payload, size_bytes
                )
            except NetworkError:
                continue
        return receipts
