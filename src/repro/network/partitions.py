"""Network partition injection.

The paper motivates edge deployments where connectivity to the cloud (or
between sites) is intermittent; Vegvisir [8] is cited for partition
tolerance.  The :class:`PartitionManager` lets tests and benchmarks split
the node set into groups, check reachability and heal partitions.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

from repro.common.errors import NotFoundError


class PartitionManager:
    """Tracks which partition group each node belongs to.

    With no partitions installed every node can reach every other node.

    A standalone manager accepts any node name.  Once bound to a node
    universe via :meth:`bind_known_nodes` (the fabric does this on
    construction), partitioning an unknown site name raises
    :class:`~repro.common.errors.NotFoundError` instead of silently
    installing a no-op group — a chaos plan with a typo'd site must fail
    loudly, not pass vacuously.
    """

    def __init__(self) -> None:
        self._group_of: Dict[str, int] = {}
        self._partitioned = False
        self._known_nodes: Optional[Callable[[], Iterable[str]]] = None

    def bind_known_nodes(self, provider: Callable[[], Iterable[str]]) -> None:
        """Restrict future :meth:`partition` calls to names ``provider`` yields.

        ``provider`` is called lazily at partition time so nodes registered
        after binding are still accepted.
        """
        self._known_nodes = provider

    @property
    def is_partitioned(self) -> bool:
        """Whether a partition is currently installed."""
        return self._partitioned

    def partition(self, groups: Sequence[Iterable[str]]) -> None:
        """Split nodes into disjoint groups; nodes absent from every group
        form an implicit extra group and can only talk to each other."""
        known = set(self._known_nodes()) if self._known_nodes is not None else None
        staged: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                if node in staged:
                    raise ValueError(f"node {node!r} appears in more than one group")
                if known is not None and node not in known:
                    raise NotFoundError(
                        f"cannot partition unknown node {node!r}; "
                        f"known nodes: {sorted(known)}"
                    )
                staged[node] = index
        self._group_of = staged
        self._partitioned = True

    def heal(self) -> None:
        """Remove all partitions; full connectivity is restored."""
        self._group_of = {}
        self._partitioned = False

    def can_communicate(self, source: str, destination: str) -> bool:
        """Whether a message from ``source`` can currently reach ``destination``."""
        if not self._partitioned:
            return True
        implicit_group = -1
        source_group = self._group_of.get(source, implicit_group)
        destination_group = self._group_of.get(destination, implicit_group)
        return source_group == destination_group

    def group_of(self, node: str) -> Optional[int]:
        """The explicit group index of ``node``, or ``None`` if unassigned."""
        if not self._partitioned:
            return None
        return self._group_of.get(node)

    def reachable_from(self, source: str, all_nodes: Iterable[str]) -> List[str]:
        """All nodes from ``all_nodes`` that ``source`` can currently reach."""
        return [node for node in all_nodes if self.can_communicate(source, node)]

    def groups(self) -> List[Set[str]]:
        """The explicit groups currently installed."""
        if not self._partitioned:
            return []
        grouped: Dict[int, Set[str]] = {}
        for node, index in self._group_of.items():
            grouped.setdefault(index, set()).add(node)
        return [grouped[key] for key in sorted(grouped)]
