"""Simulated network fabric.

Models the switched LAN used in the paper's two testbeds: every node pair
is connected by a :class:`~repro.network.link.Link` with latency and
bandwidth; transfers charge time to the virtual clock and to the sending
and receiving NICs.  Partitions can be injected to exercise the resilience
properties the paper motivates for edge deployments (Vegvisir-style
partition scenarios).
"""

from repro.network.link import Link, LinkProfile
from repro.network.fabric import NetworkFabric, Message, DeliveryReceipt
from repro.network.partitions import PartitionManager

__all__ = [
    "Link",
    "LinkProfile",
    "NetworkFabric",
    "Message",
    "DeliveryReceipt",
    "PartitionManager",
]
