"""Point-to-point network links with latency and bandwidth."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.simulation.randomness import DeterministicRandom


@dataclass(frozen=True)
class LinkProfile:
    """Static characteristics of a link.

    Attributes
    ----------
    latency_s:
        One-way propagation + switching delay in seconds.
    bandwidth_bps:
        Usable bandwidth in bits per second.
    jitter_fraction:
        Relative standard deviation applied to the latency (models the
        larger variance observed on the RPi testbed's USB-attached NIC).
    loss_rate:
        Probability that a message must be retransmitted once (adds one
        extra round of latency); kept simple because the paper's testbeds
        are single-switch LANs.
    """

    latency_s: float = 0.0002
    bandwidth_bps: float = 1_000_000_000.0
    jitter_fraction: float = 0.05
    loss_rate: float = 0.0

    def validate(self) -> None:
        if self.latency_s < 0:
            raise ConfigurationError("link latency cannot be negative")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss rate must be in [0, 1)")


#: Gigabit switched LAN between the desktop nodes.
GIGABIT_LAN = LinkProfile(latency_s=0.0002, bandwidth_bps=940_000_000.0, jitter_fraction=0.03)

#: 100 Mbit/s effective link of the RPi 3B+ (USB 2.0 attached gigabit PHY
#: caps out near 300 Mbit/s; with HLF's TLS overhead the effective rate is lower).
RPI_LAN = LinkProfile(latency_s=0.0006, bandwidth_bps=220_000_000.0, jitter_fraction=0.12)


class Link:
    """A directed link between two named nodes."""

    def __init__(
        self,
        source: str,
        destination: str,
        profile: LinkProfile,
        rng: DeterministicRandom | None = None,
    ) -> None:
        profile.validate()
        self.source = source
        self.destination = destination
        self.profile = profile
        self._rng = rng or DeterministicRandom(7)
        self.bytes_transferred = 0
        self.messages_transferred = 0

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds needed to move ``payload_bytes`` across this link.

        Includes propagation latency (with jitter), serialization time at
        the profile's bandwidth, and a possible single retransmission.
        """
        if payload_bytes < 0:
            raise ConfigurationError("payload size cannot be negative")
        latency = self._rng.gaussian_jitter(
            self.profile.latency_s, self.profile.jitter_fraction
        )
        serialization = (payload_bytes * 8.0) / self.profile.bandwidth_bps
        total = latency + serialization
        if self.profile.loss_rate > 0 and self._rng.random() < self.profile.loss_rate:
            total += latency + serialization
        self.bytes_transferred += payload_bytes
        self.messages_transferred += 1
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Link({self.source!r} -> {self.destination!r}, "
            f"{self.profile.bandwidth_bps / 1e6:.0f} Mbit/s)"
        )
