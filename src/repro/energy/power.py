"""Utilization → power mapping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.devices.model import DeviceModel


@dataclass(frozen=True)
class PowerSample:
    """Instantaneous (well, per-sampling-window) power reading."""

    timestamp: float
    watts: float
    cpu_utilization: float
    nic_utilization: float
    disk_utilization: float


class PowerModel:
    """Linear-in-utilization power model with an HLF baseline component.

    ``P(t) = idle + hlf_baseline·[HLF running] + (max − idle − hlf_baseline) ·
    (0.8·u_cpu + 0.12·u_nic + 0.08·u_disk)``

    The weights reflect that CPU dominates dynamic power on both the RPi
    and the desktops, with the NIC and SD-card/SSD contributing a small
    share.  The linear model is standard for full-system power estimation
    and reproduces the paper's observation that an idle HLF stack draws
    barely more than an idle OS.
    """

    CPU_WEIGHT = 0.80
    NIC_WEIGHT = 0.12
    DISK_WEIGHT = 0.08

    def __init__(self, device: DeviceModel) -> None:
        self.device = device

    def baseline_watts(self) -> float:
        """Power drawn with zero activity."""
        profile = self.device.profile
        baseline = profile.idle_power_w
        if self.device.hlf_running:
            baseline += profile.hlf_baseline_power_w
        return baseline

    def dynamic_range_watts(self) -> float:
        """Watts available between baseline and the profile's maximum."""
        return max(0.0, self.device.profile.max_power_w - self.baseline_watts())

    def power_over(self, window: Tuple[float, float]) -> PowerSample:
        """Average power over ``window`` given the device's recorded activity."""
        cpu_util = self.device.utilization(window, "cpu")
        nic_util = self.device.utilization(window, "nic")
        disk_util = self.device.utilization(window, "disk")
        activity = (
            self.CPU_WEIGHT * cpu_util
            + self.NIC_WEIGHT * nic_util
            + self.DISK_WEIGHT * disk_util
        )
        watts = self.baseline_watts() + self.dynamic_range_watts() * activity
        return PowerSample(
            timestamp=window[1],
            watts=watts,
            cpu_utilization=cpu_util,
            nic_utilization=nic_util,
            disk_utilization=disk_util,
        )

    def energy_over(self, window: Tuple[float, float]) -> float:
        """Energy in joules consumed over ``window``."""
        start, end = window
        duration = max(0.0, end - start)
        return self.power_over(window).watts * duration
