"""Simulated power meter (ODROID Smart Power style).

The meter samples a device's power at a fixed interval of virtual time and
aggregates samples into measurement intervals (the paper uses 10-minute
intervals in Fig. 3), reporting mean power, peak power and total energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.energy.power import PowerModel, PowerSample


@dataclass
class IntervalReport:
    """Aggregated power statistics over one measurement interval."""

    label: str
    start: float
    end: float
    mean_watts: float
    max_watts: float
    min_watts: float
    energy_joules: float
    samples: List[PowerSample] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    @property
    def energy_wh(self) -> float:
        """Energy in watt-hours (what a plug meter usually displays)."""
        return self.energy_joules / 3600.0


class PowerMeter:
    """Samples a :class:`PowerModel` over virtual time."""

    def __init__(self, model: PowerModel, sample_interval_s: float = 1.0) -> None:
        if sample_interval_s <= 0:
            raise ConfigurationError("sample interval must be positive")
        self.model = model
        self.sample_interval_s = sample_interval_s

    def sample_window(self, start: float, end: float) -> List[PowerSample]:
        """Sample power over ``[start, end]`` at the configured interval."""
        if end <= start:
            raise ConfigurationError("measurement window must have positive length")
        samples: List[PowerSample] = []
        cursor = start
        while cursor < end - 1e-12:
            window_end = min(cursor + self.sample_interval_s, end)
            samples.append(self.model.power_over((cursor, window_end)))
            cursor = window_end
        return samples

    def measure_interval(
        self,
        start: float,
        end: float,
        label: str = "",
        keep_samples: bool = False,
    ) -> IntervalReport:
        """Produce the aggregated report for one measurement interval."""
        samples = self.sample_window(start, end)
        watts = [s.watts for s in samples]
        # Energy integrates each sample over its own sub-window length.
        energy = 0.0
        cursor = start
        for sample in samples:
            window_end = min(cursor + self.sample_interval_s, end)
            energy += sample.watts * (window_end - cursor)
            cursor = window_end
        return IntervalReport(
            label=label,
            start=start,
            end=end,
            mean_watts=sum(watts) / len(watts),
            max_watts=max(watts),
            min_watts=min(watts),
            energy_joules=energy,
            samples=samples if keep_samples else [],
        )

    def measure_intervals(
        self,
        boundaries: List[Tuple[float, float]],
        labels: Optional[List[str]] = None,
    ) -> List[IntervalReport]:
        """Measure several back-to-back intervals (Fig. 3's 10-minute bars)."""
        labels = labels or ["" for _ in boundaries]
        if len(labels) != len(boundaries):
            raise ConfigurationError("labels and boundaries must have the same length")
        return [
            self.measure_interval(start, end, label=label)
            for (start, end), label in zip(boundaries, labels)
        ]
