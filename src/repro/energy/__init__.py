"""Energy modelling and measurement.

The paper measures RPi power with an ODROID Smart Power meter placed
between the device and its supply, sampling over 10-minute intervals
(Fig. 3).  Here a :class:`~repro.energy.power.PowerModel` maps component
utilization to watts and a :class:`~repro.energy.meter.PowerMeter`
samples a device's power over virtual time, producing per-interval mean,
max and total energy exactly like the paper's plots.
"""

from repro.energy.power import PowerModel, PowerSample
from repro.energy.meter import PowerMeter, IntervalReport

__all__ = ["PowerModel", "PowerSample", "PowerMeter", "IntervalReport"]
