"""HyperProv reproduction: decentralized resilient data provenance at the edge.

The package is organized bottom-up:

* substrates — :mod:`repro.simulation`, :mod:`repro.crypto`,
  :mod:`repro.membership`, :mod:`repro.network`, :mod:`repro.ledger`,
  :mod:`repro.consensus`, :mod:`repro.fabric`, :mod:`repro.chaincode`,
  :mod:`repro.storage`, :mod:`repro.devices`, :mod:`repro.energy`,
* the paper's contribution — :mod:`repro.core` (client library and
  deployments) and :mod:`repro.provenance` (OPM lineage),
* evaluation — :mod:`repro.workloads`, :mod:`repro.baselines`,
  :mod:`repro.bench`.

Quickstart::

    from repro.core import build_desktop_deployment

    deployment = build_desktop_deployment()
    client = deployment.client
    post = client.store_data("sensors/s1/r1", b"21.5 C")
    deployment.drain()
    record = client.get("sensors/s1/r1").payload
    assert record.checksum == post.record.checksum
"""

from repro.core import (
    HyperProvClient,
    HyperProvDeployment,
    build_deployment,
    build_desktop_deployment,
    build_rpi_deployment,
)
from repro.chaincode.records import ProvenanceRecord

__version__ = "1.0.0"

__all__ = [
    "HyperProvClient",
    "HyperProvDeployment",
    "build_deployment",
    "build_desktop_deployment",
    "build_rpi_deployment",
    "ProvenanceRecord",
    "__version__",
]
