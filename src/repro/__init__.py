"""HyperProv reproduction: decentralized resilient data provenance at the edge.

The package is organized bottom-up:

* substrates — :mod:`repro.simulation`, :mod:`repro.crypto`,
  :mod:`repro.membership`, :mod:`repro.network`, :mod:`repro.ledger`,
  :mod:`repro.consensus`, :mod:`repro.fabric`, :mod:`repro.chaincode`,
  :mod:`repro.storage`, :mod:`repro.devices`, :mod:`repro.energy`,
* the paper's contribution — :mod:`repro.core` (client library and
  deployments), :mod:`repro.api` (the unified ``ProvenanceStore``
  protocol and tenant-sessioned service facade) and
  :mod:`repro.provenance` (OPM lineage),
* evaluation — :mod:`repro.workloads`, :mod:`repro.baselines`,
  :mod:`repro.bench`.

Quickstart::

    from repro import HyperProvService, build_desktop_deployment

    service = HyperProvService(build_desktop_deployment())
    with service.session() as session:
        handle = session.submit("sensors/s1/r1", b"21.5 C")  # a future
        session.drain()
        record = session.get("sensors/s1/r1")
        assert record.checksum == handle.record.checksum
"""

from repro.api import HyperProvService, ProvenanceStore, StoreRequest
from repro.core import (
    HyperProvClient,
    HyperProvDeployment,
    build_deployment,
    build_desktop_deployment,
    build_rpi_deployment,
)
from repro.chaincode.records import ProvenanceRecord

__version__ = "1.1.0"

__all__ = [
    "HyperProvClient",
    "HyperProvDeployment",
    "HyperProvService",
    "ProvenanceStore",
    "StoreRequest",
    "build_deployment",
    "build_desktop_deployment",
    "build_rpi_deployment",
    "ProvenanceRecord",
    "__version__",
]
