"""Provenance modelling following the Open Provenance Model (OPM).

HyperProv "follows the features from the Open Provenance Model" — data
items are OPM *artifacts*, the operations that produce them are
*processes*, and the identities recorded in the creator certificates are
*agents*.  This package builds the provenance graph from on-chain records
and answers lineage queries (ancestry, descendants, derivation paths,
cycle checks).
"""

from repro.provenance.model import (
    Artifact,
    ProvProcess,
    Agent,
    OpmRelation,
    RelationType,
)
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.queries import LineageQueryEngine, LineageReport

__all__ = [
    "Artifact",
    "ProvProcess",
    "Agent",
    "OpmRelation",
    "RelationType",
    "ProvenanceGraph",
    "LineageQueryEngine",
    "LineageReport",
]
