"""Lineage queries over the provenance graph."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import networkx as nx

from repro.common.errors import NotFoundError
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.model import Artifact, RelationType


@dataclass
class LineageReport:
    """Result of an ancestry/descendant query for one artifact."""

    root: str
    ancestors: List[str] = field(default_factory=list)
    descendants: List[str] = field(default_factory=list)
    depth: int = 0
    contributing_agents: List[str] = field(default_factory=list)

    @property
    def ancestor_count(self) -> int:
        return len(self.ancestors)

    @property
    def descendant_count(self) -> int:
        return len(self.descendants)


class LineageQueryEngine:
    """Answers derivation questions against a :class:`ProvenanceGraph`."""

    def __init__(self, graph: ProvenanceGraph) -> None:
        self.graph = graph

    # ------------------------------------------------------------- ancestry
    def _derivation_subgraph(self) -> nx.DiGraph:
        """Subgraph containing only artifact→artifact wasDerivedFrom edges."""
        full = self.graph.nx_graph()
        derived = nx.DiGraph()
        derived.add_nodes_from(
            node for node, data in full.nodes(data=True) if data.get("kind") == "Artifact"
        )
        for source, target, data in full.edges(data=True):
            if data.get("relation") is RelationType.WAS_DERIVED_FROM:
                derived.add_edge(source, target)
        return derived

    def ancestors_of(self, key: str, max_depth: Optional[int] = None) -> List[Artifact]:
        """Every artifact the latest version of ``key`` transitively derives from."""
        root = self.graph.latest_artifact(key)
        derived = self._derivation_subgraph()
        if root.artifact_id not in derived:
            return []
        if max_depth is None:
            reachable: Set[str] = nx.descendants(derived, root.artifact_id)
        else:
            lengths = nx.single_source_shortest_path_length(
                derived, root.artifact_id, cutoff=max_depth
            )
            reachable = {node for node, depth in lengths.items() if depth > 0}
        return [self.graph.node(node_id) for node_id in sorted(reachable)]  # type: ignore[misc]

    def descendants_of(self, key: str) -> List[Artifact]:
        """Every artifact transitively derived from any version of ``key``."""
        derived = self._derivation_subgraph()
        results: Set[str] = set()
        for artifact in self.graph.artifacts():
            if artifact.key != key or artifact.artifact_id not in derived:
                continue
            results |= nx.ancestors(derived, artifact.artifact_id)
        return [self.graph.node(node_id) for node_id in sorted(results)]  # type: ignore[misc]

    def derivation_path(self, from_key: str, to_key: str) -> List[Artifact]:
        """A shortest derivation chain from ``from_key``'s latest version back
        to some version of ``to_key`` (empty if no derivation exists)."""
        derived = self._derivation_subgraph()
        source = self.graph.latest_artifact(from_key).artifact_id
        targets = [a.artifact_id for a in self.graph.artifacts() if a.key == to_key]
        best: Optional[List[str]] = None
        for target in targets:
            try:
                path = nx.shortest_path(derived, source, target)
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                continue
            if best is None or len(path) < len(best):
                best = path
        if best is None:
            return []
        return [self.graph.node(node_id) for node_id in best]  # type: ignore[misc]

    # --------------------------------------------------------------- reports
    def lineage_report(self, key: str) -> LineageReport:
        """Full ancestry + descendants + contributing agents for a key."""
        root = self.graph.latest_artifact(key)
        ancestors = self.ancestors_of(key)
        descendants = self.descendants_of(key)

        derived = self._derivation_subgraph()
        if root.artifact_id in derived:
            depths = nx.single_source_shortest_path_length(derived, root.artifact_id)
            depth = max(depths.values()) if depths else 0
        else:
            depth = 0

        agents = self._contributing_agents({root.artifact_id} | {a.artifact_id for a in ancestors})
        return LineageReport(
            root=root.artifact_id,
            ancestors=[a.artifact_id for a in ancestors],
            descendants=[d.artifact_id for d in descendants],
            depth=depth,
            contributing_agents=sorted(agents),
        )

    def _contributing_agents(self, artifact_ids: Set[str]) -> Set[str]:
        agents: Set[str] = set()
        for artifact_id in artifact_ids:
            for process_id in self.graph.successors(
                artifact_id, RelationType.WAS_GENERATED_BY
            ):
                for agent_id in self.graph.successors(
                    process_id, RelationType.WAS_CONTROLLED_BY
                ):
                    agents.add(agent_id)
        return agents

    def agents_for_key(self, key: str) -> List[str]:
        """Agents that contributed to the latest version of ``key``."""
        return self.lineage_report(key).contributing_agents

    def version_chain(self, key: str) -> List[Artifact]:
        """Every recorded version of ``key`` ordered by creation time."""
        versions = [a for a in self.graph.artifacts() if a.key == key]
        if not versions:
            raise NotFoundError(f"no artifact recorded for key {key!r}")
        return sorted(versions, key=lambda a: a.created_at)

    def impact_set(self, key: str) -> Dict[str, List[str]]:
        """Keys whose artifacts would be affected if ``key`` were corrupted."""
        impacted: Dict[str, List[str]] = {}
        for artifact in self.descendants_of(key):
            impacted.setdefault(artifact.key, []).append(artifact.artifact_id)
        return impacted
