"""The provenance graph: a typed DAG over artifacts, processes and agents."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import networkx as nx

from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import NotFoundError, ValidationError
from repro.provenance.model import (
    Agent,
    Artifact,
    OpmRelation,
    ProvProcess,
    RelationType,
)

OpmNode = Union[Artifact, ProvProcess, Agent]


class ProvenanceGraph:
    """Directed graph of OPM nodes with HyperProv-record ingestion.

    Edges point from effect to cause, following OPM convention: an
    artifact *wasDerivedFrom* its sources, a process *used* its inputs,
    an artifact *wasGeneratedBy* the process that wrote it.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._nodes: Dict[str, OpmNode] = {}
        #: Latest artifact id per ledger key (records arrive in commit order).
        self._latest_version: Dict[str, str] = {}

    # -------------------------------------------------------------- building
    def add_node(self, node: OpmNode) -> str:
        """Insert an OPM node (idempotent); returns its identifier."""
        node_id = getattr(node, "artifact_id", None) or getattr(
            node, "process_id", None
        ) or getattr(node, "agent_id")
        if node_id not in self._nodes:
            self._nodes[node_id] = node
            self._graph.add_node(node_id, kind=type(node).__name__)
        return node_id

    def add_relation(self, relation: OpmRelation) -> None:
        """Insert a causal edge; both endpoints must already exist."""
        for endpoint in (relation.source_id, relation.target_id):
            if endpoint not in self._nodes:
                raise NotFoundError(f"unknown provenance node {endpoint!r}")
        self._graph.add_edge(
            relation.source_id,
            relation.target_id,
            relation=relation.relation,
            role=relation.role,
        )

    def ingest_record(
        self,
        record: ProvenanceRecord,
        tx_id: str,
        block_number: Optional[int] = None,
    ) -> Artifact:
        """Translate one committed HyperProv record into OPM nodes and edges."""
        record.validate()
        artifact = Artifact(
            artifact_id=Artifact.version_id(record.key, record.checksum),
            key=record.key,
            checksum=record.checksum,
            location=record.location,
            created_at=record.timestamp,
            size_bytes=record.size_bytes,
            metadata=dict(record.metadata),
        )
        process = ProvProcess.for_transaction(
            tx_id=tx_id,
            function="set",
            timestamp=record.timestamp,
            block_number=block_number,
        )
        agent = Agent.for_identity(
            record.creator, record.organization, record.certificate_fingerprint
        )
        artifact_id = self.add_node(artifact)
        process_id = self.add_node(process)
        agent_id = self.add_node(agent)

        self.add_relation(
            OpmRelation(artifact_id, process_id, RelationType.WAS_GENERATED_BY)
        )
        self.add_relation(
            OpmRelation(process_id, agent_id, RelationType.WAS_CONTROLLED_BY)
        )
        for dependency_key in record.dependencies:
            source_artifact_id = self._latest_version.get(dependency_key)
            if source_artifact_id is None:
                raise ValidationError(
                    f"record {record.key!r} depends on {dependency_key!r}, "
                    "which has no recorded version"
                )
            self.add_relation(
                OpmRelation(process_id, source_artifact_id, RelationType.USED)
            )
            self.add_relation(
                OpmRelation(artifact_id, source_artifact_id, RelationType.WAS_DERIVED_FROM)
            )
        self._latest_version[record.key] = artifact_id
        return artifact

    # ------------------------------------------------------------ inspection
    def node(self, node_id: str) -> OpmNode:
        node = self._nodes.get(node_id)
        if node is None:
            raise NotFoundError(f"unknown provenance node {node_id!r}")
        return node

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def latest_artifact(self, key: str) -> Artifact:
        """The most recently ingested artifact version for a ledger key."""
        artifact_id = self._latest_version.get(key)
        if artifact_id is None:
            raise NotFoundError(f"no artifact recorded for key {key!r}")
        node = self._nodes[artifact_id]
        assert isinstance(node, Artifact)
        return node

    def artifacts(self) -> List[Artifact]:
        return [n for n in self._nodes.values() if isinstance(n, Artifact)]

    def processes(self) -> List[ProvProcess]:
        return [n for n in self._nodes.values() if isinstance(n, ProvProcess)]

    def agents(self) -> List[Agent]:
        return [n for n in self._nodes.values() if isinstance(n, Agent)]

    def relations(self) -> List[OpmRelation]:
        return [
            OpmRelation(
                source_id=source,
                target_id=target,
                relation=data["relation"],
                role=data.get("role", ""),
            )
            for source, target, data in self._graph.edges(data=True)
        ]

    def successors(self, node_id: str, relation: Optional[RelationType] = None) -> List[str]:
        """Nodes this node causally depends on (edges point effect → cause)."""
        results = []
        for _source, target, data in self._graph.out_edges(node_id, data=True):
            if relation is None or data["relation"] is relation:
                results.append(target)
        return results

    def predecessors(self, node_id: str, relation: Optional[RelationType] = None) -> List[str]:
        """Nodes that causally depend on this node."""
        results = []
        for source, _target, data in self._graph.in_edges(node_id, data=True):
            if relation is None or data["relation"] is relation:
                results.append(source)
        return results

    # ------------------------------------------------------------- integrity
    def is_acyclic(self) -> bool:
        """OPM graphs must be DAGs; returns whether that invariant holds."""
        return nx.is_directed_acyclic_graph(self._graph)

    def nx_graph(self) -> nx.DiGraph:
        """A copy of the underlying networkx graph (for export/visualization)."""
        return self._graph.copy()

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def keys(self) -> Iterable[str]:
        """Ledger keys with at least one recorded artifact version."""
        return sorted(self._latest_version)
