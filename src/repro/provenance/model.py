"""OPM core entities and relations.

The Open Provenance Model (Moreau et al., 2011) defines three node types —
artifacts, processes and agents — and five causal relations.  HyperProv's
on-chain records map naturally onto them:

* every version of a data item is an **artifact** (key + checksum),
* the transaction that recorded it is a **process**,
* the certificate subject that signed it is an **agent**,
* the record's dependency list induces **used** / **wasDerivedFrom** edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class RelationType(enum.Enum):
    """The five OPM causal dependencies."""

    USED = "used"
    WAS_GENERATED_BY = "wasGeneratedBy"
    WAS_CONTROLLED_BY = "wasControlledBy"
    WAS_TRIGGERED_BY = "wasTriggeredBy"
    WAS_DERIVED_FROM = "wasDerivedFrom"


@dataclass(frozen=True)
class Artifact:
    """An immutable piece of state: one version of a data item."""

    artifact_id: str
    key: str
    checksum: str
    location: str = ""
    created_at: float = 0.0
    size_bytes: int = 0
    metadata: Dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    @classmethod
    def version_id(cls, key: str, checksum: str) -> str:
        """Stable identifier for a (key, checksum) version pair."""
        return f"artifact:{key}@{checksum[:16]}"


@dataclass(frozen=True)
class ProvProcess:
    """An action that consumed and/or produced artifacts (one transaction)."""

    process_id: str
    tx_id: str
    function: str
    timestamp: float = 0.0
    block_number: Optional[int] = None

    @classmethod
    def for_transaction(cls, tx_id: str, function: str, timestamp: float = 0.0,
                        block_number: Optional[int] = None) -> "ProvProcess":
        return cls(
            process_id=f"process:{tx_id}",
            tx_id=tx_id,
            function=function,
            timestamp=timestamp,
            block_number=block_number,
        )


@dataclass(frozen=True)
class Agent:
    """The entity controlling a process (the certificate subject)."""

    agent_id: str
    name: str
    organization: str
    certificate_fingerprint: str = ""

    @classmethod
    def for_identity(cls, name: str, organization: str, fingerprint: str = "") -> "Agent":
        return cls(
            agent_id=f"agent:{organization}/{name}",
            name=name,
            organization=organization,
            certificate_fingerprint=fingerprint,
        )


@dataclass(frozen=True)
class OpmRelation:
    """A typed, directed causal edge between two OPM nodes."""

    source_id: str
    target_id: str
    relation: RelationType
    role: str = ""

    def describe(self) -> str:
        return f"{self.source_id} --{self.relation.value}--> {self.target_id}"
