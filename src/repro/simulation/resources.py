"""Serially-reusable simulated resources (CPU cores, NICs, disks).

A :class:`SimResource` tracks when it next becomes free and how long it
has been busy in total.  Callers *reserve* a duration starting no earlier
than a requested time; the resource returns the actual start/end times so
queueing delay is modelled without an explicit waiting queue.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

from repro.common.errors import SimulationError


class ResourceBusyError(SimulationError):
    """Raised when a non-blocking reservation cannot be satisfied."""


class Reservation(NamedTuple):
    """Outcome of a resource reservation.

    A ``NamedTuple`` — reservations are created on every simulated CPU,
    disk and NIC charge, several times per transaction.
    """

    start: float
    end: float
    requested_at: float = 0.0

    @property
    def wait(self) -> float:
        """Queueing delay experienced before the reservation started."""
        return max(0.0, self.start - self.requested_at)


class SimResource:
    """A single-server FIFO resource with utilization accounting."""

    def __init__(self, name: str, concurrency: int = 1) -> None:
        if concurrency < 1:
            raise SimulationError("resource concurrency must be >= 1")
        self.name = name
        self.concurrency = concurrency
        # Next-free time per logical server slot.
        self._free_at = [0.0] * concurrency
        self.busy_time = 0.0
        self.reservations = 0

    def next_free(self) -> float:
        """Earliest time at which any slot is free."""
        return min(self._free_at)

    def reserve(self, requested_at: float, duration: float) -> Reservation:
        """Reserve ``duration`` seconds starting no earlier than ``requested_at``.

        Returns the actual start and end time of the reservation.  The slot
        with the earliest availability is always chosen (FIFO fairness).
        """
        if duration < 0:
            raise SimulationError("cannot reserve a negative duration")
        free_at = self._free_at
        slot = free_at.index(min(free_at))
        start = max(requested_at, free_at[slot])
        end = start + duration
        self._free_at[slot] = end
        self.busy_time += duration
        self.reservations += 1
        return Reservation(start=start, end=end, requested_at=requested_at)

    def try_reserve(self, requested_at: float, duration: float) -> Reservation:
        """Reserve only if a slot is free exactly at ``requested_at``."""
        if self.next_free() > requested_at + 1e-12:
            raise ResourceBusyError(
                f"resource {self.name!r} busy until {self.next_free():.6f}"
            )
        return self.reserve(requested_at, duration)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` during which the resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / (horizon * self.concurrency))

    def reset(self) -> None:
        """Forget all reservations (used between benchmark repetitions)."""
        self._free_at = [0.0] * self.concurrency
        self.busy_time = 0.0
        self.reservations = 0


def interval_overlap(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Length of the overlap between two ``(start, end)`` intervals."""
    start = max(a[0], b[0])
    end = min(a[1], b[1])
    return max(0.0, end - start)
