"""Virtual clock used by the discrete-event engine."""

from __future__ import annotations

from repro.common.errors import SimulationError


class VirtualClock:
    """Monotonically advancing virtual time, in seconds.

    The clock only moves forward; attempting to rewind raises
    :class:`~repro.common.errors.SimulationError` because that always
    indicates an event-scheduling bug.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError("clock cannot start at a negative time")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump the clock to ``timestamp`` (must not be in the past)."""
        if timestamp < self._now - 1e-12:
            raise SimulationError(
                f"cannot rewind clock from {self._now:.6f}s to {timestamp:.6f}s"
            )
        self._now = max(self._now, float(timestamp))
        return self._now

    def advance_by(self, duration: float) -> float:
        """Advance the clock by ``duration`` seconds (must be >= 0)."""
        if duration < 0:
            raise SimulationError("cannot advance the clock by a negative duration")
        self._now += float(duration)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"VirtualClock(now={self._now:.6f})"
