"""Event queue and scheduler for the discrete-event simulation.

The engine is intentionally small: events are callbacks scheduled at an
absolute virtual time; ties are broken by insertion order so identical
runs replay identically.  Long-running activities (block cutting timers,
workload arrival processes) are modelled as :class:`Process` objects that
re-schedule themselves.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.errors import SimulationError
from repro.simulation.clock import VirtualClock

EventCallback = Callable[[], None]


class RunOutcome(int):
    """Event count returned by :meth:`SimulationEngine.run`, plus *why* it
    stopped.

    Behaves exactly like the historical ``int`` return value (equality,
    arithmetic, formatting), with a :attr:`stop_reason` so harnesses can
    tell a drained queue from a truncated run — fleet-scale benches use
    this to fail loudly instead of silently under-counting commits.

    Stop reasons:

    ``"idle"``
        The queue emptied, or only daemon events remained.
    ``"cap"``
        ``max_events`` was reached with live events still queued.
    ``"horizon"``
        The ``until`` horizon was reached with later events still queued.
    ``"deadlock"``
        The queue emptied while the caller still had in-flight work that
        can never complete without further events — produced by drain
        helpers layered on the engine (``FabricNetwork.flush_and_drain``)
        when e.g. a partition never heals, so chaos scenarios fail loudly
        instead of hanging tests.
    """

    #: Why the run loop returned; one of ``"idle"``, ``"cap"``,
    #: ``"horizon"``, or ``"deadlock"``.
    stop_reason: str

    def __new__(cls, executed: int, stop_reason: str) -> "RunOutcome":
        outcome = super().__new__(cls, executed)
        outcome.stop_reason = stop_reason
        return outcome

    @property
    def truncated(self) -> bool:
        """Whether the run stopped on the event cap rather than naturally."""
        return self.stop_reason == "cap"

    def __repr__(self) -> str:
        return f"RunOutcome({int(self)}, stop_reason={self.stop_reason!r})"


@dataclass(order=True)
class Event:
    """A callback scheduled at an absolute virtual timestamp.

    ``daemon`` events (periodic heartbeats, election timers) keep firing as
    long as the simulation runs but do not, by themselves, keep it alive:
    :meth:`SimulationEngine.run_until_idle` stops once only daemon events
    remain, the same way daemon threads do not prevent process exit.
    """

    timestamp: float
    sequence: int
    callback: EventCallback = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)
    daemon: bool = field(default=False, compare=False)
    #: Owning engine, set by ``schedule_at`` so cancellation can feed the
    #: engine's heap-compaction accounting.  ``None`` for detached events.
    engine: Optional["SimulationEngine"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Prevent this event from firing (it stays in the queue but is skipped)."""
        if not self.cancelled:
            self.cancelled = True
            if self.engine is not None:
                self.engine._note_cancelled(self)


class Process:
    """A recurring activity driven by the engine.

    Subclasses (or instances constructed with ``body``) implement
    :meth:`tick`, which returns the delay until the next activation, or
    ``None`` to stop.
    """

    def __init__(
        self,
        engine: "SimulationEngine",
        body: Optional[Callable[["Process"], Optional[float]]] = None,
        label: str = "process",
    ) -> None:
        self.engine = engine
        self.label = label
        self._body = body
        self._stopped = False
        self.activations = 0

    def tick(self) -> Optional[float]:
        """Run one activation; return seconds until the next one, or ``None``."""
        if self._body is None:
            raise NotImplementedError("override tick() or pass a body callable")
        return self._body(self)

    def stop(self) -> None:
        """Stop re-scheduling the process after the current activation."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self, delay: float = 0.0) -> None:
        """Schedule the first activation ``delay`` seconds from now."""
        self.engine.schedule_in(delay, self._activate, label=self.label)

    def _activate(self) -> None:
        if self._stopped:
            return
        self.activations += 1
        next_delay = self.tick()
        if next_delay is not None and not self._stopped:
            self.engine.schedule_in(next_delay, self._activate, label=self.label)


class SimulationEngine:
    """Priority-queue based discrete-event scheduler."""

    #: Compact the heap only once it holds at least this many events (below
    #: that, popping cancelled entries lazily is cheaper than rebuilding).
    COMPACT_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = VirtualClock(start_time)
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._processed = 0
        self._running = False
        # Count of queued non-daemon events (including cancelled ones that
        # have not been popped yet); kept incrementally so the run loop's
        # idle check is O(1).
        self._non_daemon_queued = 0
        # Cancelled events still sitting in the heap; once they exceed half
        # the queue the heap is compacted (mass-cancellation workloads —
        # retry timers, election timeouts — would otherwise carry the dead
        # entries until their timestamps are reached).
        self._cancelled_queued = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule_at(
        self, timestamp: float, callback: EventCallback, label: str = "", daemon: bool = False
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``timestamp``."""
        if timestamp < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule an event in the past ({timestamp:.6f} < {self.now:.6f})"
            )
        event = Event(
            timestamp=max(timestamp, self.now),
            sequence=next(self._sequence),
            callback=callback,
            label=label,
            daemon=daemon,
            engine=self,
        )
        heapq.heappush(self._queue, event)
        if not daemon:
            self._non_daemon_queued += 1
        return event

    # ------------------------------------------------------------ compaction
    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_queued

    def _note_cancelled(self, event: Event) -> None:
        """Called by :meth:`Event.cancel`; compacts when the heap is mostly dead."""
        self._cancelled_queued += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_QUEUE
            and self._cancelled_queued * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events from the heap and re-heapify."""
        live: List[Event] = []
        removed_non_daemon = 0
        for queued in self._queue:
            if queued.cancelled:
                queued.engine = None
                if not queued.daemon:
                    removed_non_daemon += 1
            else:
                live.append(queued)
        heapq.heapify(live)
        self._queue = live
        self._non_daemon_queued -= removed_non_daemon
        self._cancelled_queued = 0

    def schedule_in(
        self, delay: float, callback: EventCallback, label: str = "", daemon: bool = False
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from the current time."""
        if delay < 0:
            raise SimulationError("cannot schedule an event with a negative delay")
        return self.schedule_at(self.now + delay, callback, label=label, daemon=daemon)

    def _pending_non_daemon(self) -> int:
        """Number of queued events that keep the simulation alive.

        Cancelled events still sitting in the heap are counted until they are
        popped, which only delays the idle detection by a few no-op steps.
        """
        return self._non_daemon_queued

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            # Detach so a late cancel() of an already-popped event cannot
            # skew the cancelled-in-heap accounting.
            event.engine = None
            if not event.daemon:
                self._non_daemon_queued -= 1
            if event.cancelled:
                self._cancelled_queued -= 1
                continue
            self.clock.advance_to(event.timestamp)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> RunOutcome:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been executed.

        Returns a :class:`RunOutcome` — the number of events run (an ``int``
        for all existing callers) tagged with why the loop stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        stop_reason = "idle"
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    stop_reason = "cap"
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    head.engine = None
                    if not head.daemon:
                        self._non_daemon_queued -= 1
                    self._cancelled_queued -= 1
                    continue
                if until is not None and head.timestamp > until:
                    stop_reason = "horizon"
                    break
                if until is None and self._pending_non_daemon() == 0:
                    # Only daemon events (heartbeats, timers) remain; without a
                    # horizon they would keep the simulation alive forever.
                    break
                if not self.step():
                    break
                executed += 1
            if until is not None and self.now < until:
                # Nothing more to do before the horizon: advance to it so that
                # idle-time accounting (energy) covers the full interval.
                self.clock.advance_to(until)
        finally:
            self._running = False
        return RunOutcome(executed, stop_reason)

    def run_until_idle(self, max_events: int = 1_000_000) -> RunOutcome:
        """Drain the event queue; guards against runaway self-rescheduling."""
        outcome = self.run(max_events=max_events)
        if self._queue and outcome.truncated:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
        return outcome
