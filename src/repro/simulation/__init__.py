"""Discrete-event simulation engine.

All "time" in the HyperProv reproduction is virtual.  Node computation,
network transfers and energy accounting charge durations to the
:class:`~repro.simulation.engine.SimulationEngine`'s clock, which lets the
benchmark harness sweep the paper's 10-minute measurement intervals in
milliseconds of wall-clock time and keeps every run deterministic.
"""

from repro.simulation.clock import VirtualClock
from repro.simulation.engine import SimulationEngine, Event, Process
from repro.simulation.resources import SimResource, ResourceBusyError
from repro.simulation.randomness import DeterministicRandom

__all__ = [
    "VirtualClock",
    "SimulationEngine",
    "Event",
    "Process",
    "SimResource",
    "ResourceBusyError",
    "DeterministicRandom",
]
