"""Deterministic randomness helpers for workloads and jitter models."""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRandom:
    """A seeded random source with the distributions the simulators need.

    A thin wrapper over :class:`random.Random` that adds truncation helpers
    (latencies and service times must never be negative) and keeps the seed
    around for reporting.
    """

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def exponential(self, mean: float) -> float:
        """Exponentially distributed value with the given mean (>= 0)."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def gaussian_jitter(self, mean: float, stddev_fraction: float = 0.1) -> float:
        """A mean value perturbed by Gaussian noise, truncated at zero.

        ``stddev_fraction`` is relative to the mean, which is how hardware
        variance is expressed in the device profiles (e.g. the RPi shows
        larger relative variance than the desktops in Fig. 2).
        """
        if mean <= 0:
            return 0.0
        value = self._rng.gauss(mean, mean * stddev_fraction)
        return max(0.0, value)

    def lognormal_jitter(self, mean: float, sigma: float = 0.25) -> float:
        """Log-normally distributed multiplicative jitter around ``mean``."""
        if mean <= 0:
            return 0.0
        return mean * self._rng.lognormvariate(0.0, sigma)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        return self._rng.sample(list(items), k)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a shuffled copy of ``items`` (does not mutate the input)."""
        copy = list(items)
        self._rng.shuffle(copy)
        return copy

    def bytes(self, length: int) -> bytes:
        """Deterministic pseudo-random payload bytes of the given length."""
        return bytes(self._rng.getrandbits(8) for _ in range(length))

    def fork(self, label: str) -> "DeterministicRandom":
        """Derive an independent stream for a sub-component.

        Uses a stable hash of ``label`` (not the built-in ``hash``, which is
        randomized per process) so forked streams are identical across runs.
        """
        import hashlib

        label_digest = int.from_bytes(
            hashlib.sha256(label.encode("utf-8")).digest()[:4], "big"
        )
        derived_seed = (self.seed * 1_000_003 + label_digest) & 0x7FFFFFFF
        return DeterministicRandom(derived_seed)
