"""Conservative-time parallel execution of shard-disjoint fleets.

The sequential engine runs every fleet site on one event heap; this module
runs each site (or a group of sites) in its own worker process, advancing
all workers in lock-step **barrier windows** of virtual time:

    coordinator: advance(k·W → (k+1)·W)  ...  barrier  ...  advance(...)
    worker i:    run events < horizon, flush commit batch, report window

``W`` is the *lookahead*: the amount of virtual time a worker may execute
without observing the other shards.  Fleet sites share no links, peers or
RNG streams (see :mod:`repro.workloads.fleet`), so no event on one shard
can ever depend on another shard's window — any positive lookahead is
safe, and the barrier exchanges only window statistics (the degenerate
null-message of a conservative protocol with no cross-shard channels).
The floor below keeps the window honest anyway: it never drops under the
orderer intake pacing interval or the LAN propagation floor, the two
shortest cause→effect delays in the simulation, which is what a
conservative protocol would require if shards *did* exchange messages.

Workers are forked processes (the coordinator→worker command boundary is
a :class:`~repro.workloads.fleet.FleetSpec` plus site indices — workers
rebuild arrival plans and topology locally, nothing big crosses the
pipe).  Each worker runs its sites with ``batch_commit_delivery`` on, so
commit-event fan-out is published once per barrier window.  With
``workers <= 1`` the same windowed protocol runs inline (no processes),
which is also the portable fallback when the platform cannot fork.

Determinism: virtual-time results are byte-identical to the sequential
engine — the commit-log anchor digest of :func:`run_fleet_parallel` equals
the one from :func:`run_fleet_sequential` for the same spec, which the
property tests and the CI perf-smoke gate both check.
"""

from __future__ import annotations

import gc
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, SimulationError

if TYPE_CHECKING:
    from repro.workloads.fleet import FleetDeployment, FleetSpec

# The fleet workload sits *above* the simulation layer (it builds whole
# deployments out of core/fabric pieces), so this module — generic
# barrier-window machinery that happens to ship a fleet front-end — only
# imports it inside the functions that need it.  Keeping the edge out of
# module scope is what lets `repro.simulation` stay below `workloads` in
# the layering DAG (rule A201) and avoids the package import cycle.


def _wall_clock() -> float:
    """Host-time read for worker utilization/stall accounting only.

    Never feeds virtual time, commit logs, or anchors — the determinism
    guarantee is about *simulated* time; how long the host took is
    exactly the measurement the stats exist to report.
    """
    return time.perf_counter()  # repro: allow-wallclock

#: Default barrier window, in virtual seconds.  Small enough that commit
#: batches stay timely, large enough that barrier crossings are a rounding
#: error in wall time (a 300 s fleet run takes 60 barriers).
DEFAULT_WINDOW_S = 5.0

#: LAN propagation floor: no simulated cause→effect crosses a link faster
#: than this, so the conservative lookahead never needs to be smaller.
MIN_LOOKAHEAD_S = 0.001


def conservative_lookahead(spec: FleetSpec, window_s: Optional[float] = None) -> float:
    """The barrier window: requested size clamped to the lookahead floor."""
    requested = DEFAULT_WINDOW_S if window_s is None else window_s
    if requested <= 0:
        raise ConfigurationError("barrier window must be positive")
    return max(requested, spec.orderer_intake_interval_s, MIN_LOOKAHEAD_S)


@dataclass
class ShardRunStats:
    """Wall-clock accounting for one worker (one or more sites)."""

    worker: int
    sites: List[int]
    windows: int = 0
    events: int = 0
    #: Wall time spent executing simulation events and flushing windows.
    busy_wall_s: float = 0.0
    #: Wall time spent parked at barriers waiting for the coordinator.
    barrier_stall_s: float = 0.0

    @property
    def utilization(self) -> float:
        total = self.busy_wall_s + self.barrier_stall_s
        return self.busy_wall_s / total if total > 0 else 0.0


@dataclass
class FleetRunResult:
    """Outcome of one fleet execution (sequential or parallel)."""

    spec: FleetSpec
    mode: str
    workers: int
    window_s: float
    wall_s: float
    submitted: int
    lines_by_site: Dict[int, List[str]]
    counts_by_site: Dict[int, Dict[str, int]]
    shard_stats: List[ShardRunStats] = field(default_factory=list)

    @property
    def anchor(self) -> str:
        from repro.workloads.fleet import commit_anchor

        return commit_anchor(self.lines_by_site)

    @property
    def committed(self) -> int:
        return sum(c["committed"] for c in self.counts_by_site.values())

    @property
    def pending(self) -> int:
        return sum(c["pending"] for c in self.counts_by_site.values())

    def throughput_wall(self) -> float:
        """Committed posts per wall-clock second."""
        return self.committed / self.wall_s if self.wall_s > 0 else 0.0


def window_count(horizon_s: float, window_s: float) -> int:
    """Barrier windows needed to cover ``[0, horizon_s]`` plus the tail.

    The final window's ``run(until=...)`` leaves timer-driven tail work
    (batch-timeout cuts, commit deliveries) which the drain phase after
    the last barrier finishes; coordinator and workers must agree on this
    count, so both compute it from the same spec-derived inputs.
    """
    return int(horizon_s // window_s) + 1


def run_fleet_sequential(spec: FleetSpec) -> FleetRunResult:
    """The baseline: every site on one engine, per-block commit delivery."""
    from repro.workloads.fleet import (
        build_fleet,
        commit_counts,
        commit_log_lines,
        submit_fleet,
    )

    start = _wall_clock()
    deployment = build_fleet(spec)
    submitted = submit_fleet(deployment)
    stats = ShardRunStats(worker=0, sites=list(deployment.sites))
    begin = _wall_clock()
    deployment.drain()
    stats.busy_wall_s = _wall_clock() - begin
    stats.windows = 1
    stats.events = deployment.engine.processed_events
    wall = _wall_clock() - start
    return FleetRunResult(
        spec=spec,
        mode="sequential",
        workers=1,
        window_s=0.0,
        wall_s=wall,
        submitted=submitted,
        lines_by_site={s: commit_log_lines(deployment, s) for s in deployment.sites},
        counts_by_site={s: commit_counts(deployment, s) for s in deployment.sites},
        shard_stats=[stats],
    )


def _assign_sites(spec: FleetSpec, workers: int) -> List[List[int]]:
    """Round-robin site→worker assignment (worker ``w`` gets ``w::workers``)."""
    count = max(1, min(workers, spec.shards))
    return [list(range(w, spec.shards, count)) for w in range(count)]


def _prepare_worker_deployment(spec: FleetSpec, sites: Sequence[int]) -> Tuple[FleetDeployment, int]:
    from repro.workloads.fleet import build_fleet, submit_fleet

    deployment = build_fleet(spec, sites=sites, batch_commit_delivery=True)
    submitted = submit_fleet(deployment)
    return deployment, submitted


def _site_worker(spec: FleetSpec, sites: List[int], worker: int,
                 horizon_s: float, window_s: float, conn) -> None:
    """Worker-process body: build locally, obey the barrier protocol.

    Protocol (coordinator drives; both sides compute the same window
    count from ``horizon_s`` and ``window_s``):

    * worker → ``("ready", submitted)`` once its sites are built,
    * coordinator → ``"advance"`` per window; worker runs the window,
      flushes the commit batch and replies ``("window", index, events)``,
    * after the last window the worker drains (no further commands), then
      sends ``("done", payload)`` with commit logs, counts and stats.

    Any exception is reported as ``("error", traceback)`` so the
    coordinator can fail loudly instead of deadlocking on a dead pipe.
    """
    from repro.workloads.fleet import commit_counts, commit_log_lines

    try:
        deployment, submitted = _prepare_worker_deployment(spec, sites)
        stats = ShardRunStats(worker=worker, sites=list(sites))
        conn.send(("ready", submitted))

        windows = window_count(horizon_s, window_s)
        for window_index in range(windows):
            wait_begin = _wall_clock()
            command = conn.recv()
            stats.barrier_stall_s += _wall_clock() - wait_begin
            if command != "advance":
                raise SimulationError(f"unexpected barrier command {command!r}")
            boundary = (window_index + 1) * window_s
            begin = _wall_clock()
            outcome = deployment.engine.run(until=boundary)
            deployment.fabric.flush_commit_events()
            stats.busy_wall_s += _wall_clock() - begin
            stats.windows += 1
            stats.events += int(outcome)
            conn.send(("window", window_index, stats.events))
        begin = _wall_clock()
        deployment.drain()
        deployment.fabric.flush_commit_events()
        stats.busy_wall_s += _wall_clock() - begin
        payload = {
            "lines": {s: commit_log_lines(deployment, s) for s in sites},
            "counts": {s: commit_counts(deployment, s) for s in sites},
            "stats": stats,
            "submitted": submitted,
        }
        conn.send(("done", payload))
    except Exception:  # noqa: BLE001 - reported to the coordinator
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _fork_context():
    """Prefer fork (cheap: workers inherit the imported modules)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_fleet_parallel(
    spec: FleetSpec, workers: int, window_s: Optional[float] = None
) -> FleetRunResult:
    """Run the fleet with per-shard workers under the barrier protocol.

    ``workers`` is clamped to the shard count; ``workers <= 1`` runs the
    windowed protocol inline (no processes).  Returns the same result
    shape as :func:`run_fleet_sequential`, with per-worker utilization
    and barrier-stall accounting in ``shard_stats``.
    """
    spec.validate()
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    lookahead = conservative_lookahead(spec, window_s)
    horizon = spec.arrival_plan().horizon_s()
    assignments = _assign_sites(spec, workers)

    start = _wall_clock()
    if len(assignments) == 1 or workers == 1:
        return _run_parallel_inline(spec, lookahead, horizon, start)

    context = _fork_context()
    processes = []
    pipes = []
    # Forked workers inherit the coordinator's heap; if a sequential run
    # just finished (the bench runs both back to back), child GC passes
    # would traverse those millions of inherited objects and fault their
    # pages copy-on-write.  Collect then freeze: the surviving objects
    # move to the permanent generation, which child collections skip.
    gc.collect()
    gc.freeze()
    try:
        for worker, sites in enumerate(assignments):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_site_worker,
                args=(spec, sites, worker, horizon, lookahead, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            processes.append(process)
            pipes.append(parent_conn)

        submitted = 0
        for conn in pipes:
            submitted += _expect(conn, "ready")

        windows = window_count(horizon, lookahead)
        for _ in range(windows):
            for conn in pipes:
                conn.send("advance")
            for conn in pipes:
                _expect(conn, "window")

        payloads = [_expect(conn, "done") for conn in pipes]
    finally:
        for conn in pipes:
            conn.close()
        for process in processes:
            process.join(timeout=60)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
        gc.unfreeze()

    lines_by_site: Dict[int, List[str]] = {}
    counts_by_site: Dict[int, Dict[str, int]] = {}
    shard_stats: List[ShardRunStats] = []
    for payload in payloads:
        lines_by_site.update(payload["lines"])
        counts_by_site.update(payload["counts"])
        shard_stats.append(payload["stats"])
    wall = _wall_clock() - start
    return FleetRunResult(
        spec=spec,
        mode="parallel",
        workers=len(assignments),
        window_s=lookahead,
        wall_s=wall,
        submitted=submitted,
        lines_by_site=lines_by_site,
        counts_by_site=counts_by_site,
        shard_stats=shard_stats,
    )


def _expect(conn, kind: str):
    """Receive one protocol message, unwrapping worker errors."""
    message = conn.recv()
    if message[0] == "error":
        raise SimulationError(f"fleet worker failed:\n{message[1]}")
    if message[0] != kind:
        raise SimulationError(f"expected {kind!r} from worker, got {message[0]!r}")
    return message[1]


def _run_parallel_inline(
    spec: FleetSpec, lookahead: float, horizon: float, start: float
) -> FleetRunResult:
    """The windowed protocol without processes (workers=1 / no-fork fallback).

    Sites still run on per-site engines with batched commit delivery —
    the decomposition and delivery-path gains apply; only the concurrent
    execution of windows is lost.
    """
    from repro.workloads.fleet import commit_counts, commit_log_lines

    deployments: List[FleetDeployment] = []
    stats_list: List[ShardRunStats] = []
    submitted = 0
    for site in range(spec.shards):
        deployment, count = _prepare_worker_deployment(spec, [site])
        deployments.append(deployment)
        stats_list.append(ShardRunStats(worker=0, sites=[site]))
        submitted += count
    windows = window_count(horizon, lookahead)
    for window_index in range(windows):
        boundary = (window_index + 1) * lookahead
        for deployment, stats in zip(deployments, stats_list):
            begin = _wall_clock()
            outcome = deployment.engine.run(until=boundary)
            deployment.fabric.flush_commit_events()
            stats.busy_wall_s += _wall_clock() - begin
            stats.windows += 1
            stats.events += int(outcome)
    lines_by_site: Dict[int, List[str]] = {}
    counts_by_site: Dict[int, Dict[str, int]] = {}
    for deployment, stats in zip(deployments, stats_list):
        begin = _wall_clock()
        deployment.drain()
        deployment.fabric.flush_commit_events()
        stats.busy_wall_s += _wall_clock() - begin
        site = deployment.sites[0]
        lines_by_site[site] = commit_log_lines(deployment, site)
        counts_by_site[site] = commit_counts(deployment, site)
    wall = _wall_clock() - start
    return FleetRunResult(
        spec=spec,
        mode="parallel-inline",
        workers=1,
        window_s=lookahead,
        wall_s=wall,
        submitted=submitted,
        lines_by_site=lines_by_site,
        counts_by_site=counts_by_site,
        shard_stats=stats_list,
    )
