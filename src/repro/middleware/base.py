"""Middleware protocol and the pipeline that composes middlewares."""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Type, TypeVar

from repro.common.errors import ConfigurationError
from repro.middleware.context import Context

#: A handler takes the context and returns the operation's result.
Handler = Callable[[Context], Any]

M = TypeVar("M", bound="Middleware")


class Middleware:
    """One link in a transaction pipeline.

    Subclasses implement :meth:`handle` and either pass the context on by
    calling ``call_next(ctx)`` (possibly more than once — the retry
    middleware does) or short-circuit by returning without calling it (the
    cache middleware on a hit, the endorsement stage on policy failure).
    """

    #: Stable identifier used in pipeline introspection and config.
    name: str = "middleware"

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        raise NotImplementedError

    def close(self) -> None:
        """Release any external resources (event subscriptions, queues)."""


class TransactionPipeline:
    """An ordered middleware chain terminating in a handler.

    ``execute`` threads the context down the chain; each middleware sees
    the downstream remainder as a single ``call_next`` callable, so a
    middleware can run code before/after its successors, swallow their
    result, retry them or never invoke them at all.
    """

    def __init__(self, middlewares: Iterable[Middleware], terminal: Handler) -> None:
        self.middlewares: List[Middleware] = list(middlewares)
        self.terminal = terminal
        for middleware in self.middlewares:
            if not isinstance(middleware, Middleware):
                raise ConfigurationError(
                    f"{middleware!r} does not implement the Middleware interface"
                )
        # The chain is static after construction; compose the nested
        # call_next closures once instead of rebuilding them per execute
        # (the pipeline runs for every operator of every client).
        self._entry: Handler = self._compose()

    def _compose(self) -> Handler:
        handler = self.terminal
        for middleware in reversed(self.middlewares):
            handler = self._wrap(middleware, handler)
        return handler

    # -------------------------------------------------------------- execute
    def execute(self, ctx: Context) -> Any:
        """Run ``ctx`` through the chain and return the terminal's result."""
        result = self._entry(ctx)
        ctx.result = result
        return result

    @staticmethod
    def _wrap(middleware: Middleware, call_next: Handler) -> Handler:
        def handler(ctx: Context) -> Any:
            return middleware.handle(ctx, call_next)

        return handler

    # ------------------------------------------------------- introspection
    def middleware_names(self) -> List[str]:
        return [middleware.name for middleware in self.middlewares]

    def find(self, cls: Type[M]) -> Optional[M]:
        """First middleware of type ``cls`` in the chain, if any."""
        for middleware in self.middlewares:
            if isinstance(middleware, cls):
                return middleware
        return None

    def close(self) -> None:
        """Close every middleware (cache subscriptions, pending batches)."""
        for middleware in self.middlewares:
            middleware.close()
