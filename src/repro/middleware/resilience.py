"""Failure-handling middlewares: deadlines, circuit breaking, store-and-forward.

Three composable policies the chaos scenarios exercise, all off by
default so fault-free pipelines keep byte-identical virtual time:

* :class:`DeadlineMiddleware` — stamps an absolute virtual-time budget on
  every operation (``ctx.tags["deadline_at"]``).  The retry middleware
  abandons backoffs past it, the submit-to-orderer stage refuses arrivals
  past it, and reads that finish late raise
  :class:`~repro.common.errors.DeadlineExceededError` instead of quietly
  returning after the caller gave up.
* :class:`CircuitBreakerMiddleware` — classic closed→open→half-open
  breaker, one state machine per backend key (the routed shard).  Sits at
  the bottom of the chain so cache hits never touch it and every routed
  attempt is observed.
* :class:`StoreAndForwardMiddleware` — degraded-mode writes: when the
  network is unreachable the write is queued locally and replayed on a
  virtual-time interval; callers receive a placeholder handle that
  completes when the replayed transaction commits (or is abandoned after
  ``max_replays``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    NetworkError,
)
from repro.common.metrics import MetricsRegistry
from repro.ledger.transaction import TxValidationCode
from repro.fabric.proposal import TransactionHandle
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context
from repro.middleware.retry import DEFAULT_RETRYABLE
from repro.simulation.engine import SimulationEngine


class DeadlineMiddleware(Middleware):
    """Thread a per-request virtual-time budget through the chain."""

    name = "deadline"

    def __init__(
        self,
        deadline_s: float,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if deadline_s <= 0:
            raise ConfigurationError("deadline_s must be > 0")
        self.deadline_s = deadline_s
        self.clock = clock or (lambda: 0.0)
        self.metrics = metrics

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        start = ctx.at_time if ctx.at_time is not None else self.clock()
        deadline_at = start + self.deadline_s
        ctx.tags["deadline_at"] = deadline_at
        result = call_next(ctx)
        if ctx.is_read and isinstance(result, tuple) and len(result) == 2:
            latency = float(result[1])
            if start + latency > deadline_at:
                if self.metrics is not None:
                    self.metrics.counter("deadline.read_exceeded").inc()
                raise DeadlineExceededError(
                    f"read {ctx.function!r} finished at t={start + latency:.4f}s, "
                    f"past its deadline t={deadline_at:.4f}s",
                    deadline_at=deadline_at,
                )
        return result


@dataclass
class BreakerState:
    """One backend's breaker: consecutive failures and the open window."""

    state: str = "closed"  # "closed" | "open" | "half-open"
    failures: int = 0
    opened_until: float = 0.0


class CircuitBreakerMiddleware(Middleware):
    """Per-backend closed→open→half-open circuit breaker.

    Keyed on the routed shard (``ctx.tags["shard"]``, 0 when unrouted).
    ``failure_threshold`` consecutive trip-class failures open the
    circuit; while open every call is rejected with
    :class:`CircuitOpenError` without touching the backend.  After
    ``cooldown_s`` of virtual time one probe call is let through
    (half-open): success closes the circuit, failure re-opens it for
    another cooldown.
    """

    name = "circuit-breaker"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        trip_on: Tuple[Type[Exception], ...] = DEFAULT_RETRYABLE,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("circuit failure_threshold must be >= 1")
        if cooldown_s <= 0:
            raise ConfigurationError("circuit cooldown_s must be > 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.clock = clock or (lambda: 0.0)
        self.metrics = metrics
        self.trip_on = trip_on
        self._breakers: Dict[Any, BreakerState] = {}

    def breaker(self, key: Any = 0) -> BreakerState:
        """The (lazily created) breaker state for one backend key."""
        return self._breakers.setdefault(key, BreakerState())

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        key = ctx.tags.get("shard", 0)
        breaker = self.breaker(key)
        now = ctx.at_time if ctx.at_time is not None else self.clock()
        if breaker.state == "open":
            if now < breaker.opened_until:
                if self.metrics is not None:
                    self.metrics.counter("circuit.rejected").inc()
                raise CircuitOpenError(key, breaker.opened_until)
            breaker.state = "half-open"
            if self.metrics is not None:
                self.metrics.counter("circuit.half_open_probes").inc()
        try:
            result = call_next(ctx)
        except self.trip_on:
            self._record_failure(breaker, now)
            raise
        if breaker.state != "closed":
            breaker.state = "closed"
            if self.metrics is not None:
                self.metrics.counter("circuit.closed").inc()
        breaker.failures = 0
        return result

    def _record_failure(self, breaker: BreakerState, now: float) -> None:
        if breaker.state == "half-open":
            # The probe failed: straight back to open, fresh cooldown.
            breaker.state = "open"
            breaker.opened_until = now + self.cooldown_s
            if self.metrics is not None:
                self.metrics.counter("circuit.reopened").inc()
            return
        breaker.failures += 1
        if breaker.failures >= self.failure_threshold:
            breaker.state = "open"
            breaker.opened_until = now + self.cooldown_s
            if self.metrics is not None:
                self.metrics.counter("circuit.opened").inc()


@dataclass
class _QueuedWrite:
    """One write parked for replay, plus the handle its caller holds."""

    ctx: Context
    downstream: Handler
    placeholder: TransactionHandle
    attempts: int = 0


class StoreAndForwardMiddleware(Middleware):
    """Queue unreachable writes locally and replay them on a timer.

    A write failing with a network-class error (partition, crashed peers,
    open circuit downstream) is captured instead of propagated: the
    caller receives a *placeholder* :class:`TransactionHandle` at once,
    and a virtual-time replay loop re-runs the downstream chain every
    ``replay_interval_s`` until the write lands (the placeholder then
    mirrors the real handle — tx id, timings, commit — and completes) or
    ``max_replays`` attempts are exhausted (the placeholder completes
    ``INVALID_OTHER_REASON``, bounding the replay loop so a partition
    that never heals cannot keep the engine spinning forever).

    The request's deadline budget is deliberately dropped on queueing: a
    store-and-forward accept means "this write will be delivered when
    connectivity returns", not "within the original budget".
    """

    name = "store-and-forward"

    #: Failures that park a write instead of propagating.
    QUEUE_ON: Tuple[Type[Exception], ...] = (NetworkError, CircuitOpenError)

    def __init__(
        self,
        engine: SimulationEngine,
        replay_interval_s: float = 0.5,
        max_replays: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if replay_interval_s <= 0:
            raise ConfigurationError("saf replay_interval_s must be > 0")
        if max_replays < 1:
            raise ConfigurationError("saf max_replays must be >= 1")
        self.engine = engine
        self.replay_interval_s = replay_interval_s
        self.max_replays = max_replays
        self.metrics = metrics
        self._queue: List[_QueuedWrite] = []
        self._replay_event = None
        self._sequence = 0

    @property
    def queued(self) -> int:
        """Writes currently parked awaiting replay."""
        return len(self._queue)

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if not ctx.is_write:
            return call_next(ctx)
        try:
            return call_next(ctx)
        except self.QUEUE_ON:
            return self._park(ctx, call_next)

    def _park(self, ctx: Context, downstream: Handler) -> TransactionHandle:
        start = ctx.at_time if ctx.at_time is not None else self.engine.now
        self._sequence += 1
        placeholder = TransactionHandle(
            tx_id=f"saf-{self._sequence}",
            submitted_at=start,
            function=ctx.function,
        )
        placeholder.timings["saf_queued_at_s"] = self.engine.now
        # The budget covered the original attempt, not the replay loop.
        ctx.tags.pop("deadline_at", None)
        self._queue.append(_QueuedWrite(ctx=ctx, downstream=downstream, placeholder=placeholder))
        if self.metrics is not None:
            self.metrics.counter("saf.queued").inc()
        self._arm_replay()
        return placeholder

    def _arm_replay(self) -> None:
        if self._replay_event is None and self._queue:
            self._replay_event = self.engine.schedule_in(
                self.replay_interval_s, self._replay_tick, label="saf:replay"
            )

    def _replay_tick(self) -> None:
        self._replay_event = None
        pending, self._queue = self._queue, []
        for entry in pending:
            entry.attempts += 1
            entry.ctx.at_time = self.engine.now
            try:
                real = entry.downstream(entry.ctx)
            except self.QUEUE_ON:
                if entry.attempts >= self.max_replays:
                    entry.placeholder.timings["saf_replays"] = float(entry.attempts)
                    entry.placeholder.complete(
                        self.engine.now, TxValidationCode.INVALID_OTHER_REASON
                    )
                    if self.metrics is not None:
                        self.metrics.counter("saf.abandoned").inc()
                    continue
                self._queue.append(entry)
                continue
            self._bind(entry, real)
            if self.metrics is not None:
                self.metrics.counter("saf.replayed").inc()
        self._arm_replay()

    @staticmethod
    def _bind(entry: _QueuedWrite, real: Any) -> None:
        """Mirror the replayed transaction's life cycle onto the placeholder."""
        placeholder = entry.placeholder
        if not isinstance(real, TransactionHandle):
            # Downstream returned something unexpected (a custom terminal):
            # count the replay delivered and complete the placeholder now.
            placeholder.complete(placeholder.submitted_at, TxValidationCode.VALID)
            return

        def _mirror(done: TransactionHandle, placeholder=placeholder, attempts=entry.attempts) -> None:
            placeholder.tx_id = done.tx_id
            placeholder.endorsed_at = done.endorsed_at
            placeholder.ordered_at = done.ordered_at
            placeholder.response_payload = done.response_payload
            placeholder.timings.update(done.timings)
            placeholder.timings["saf_replays"] = float(attempts)
            placeholder.complete(
                done.committed_at,
                done.validation_code,
                block_number=done.commit_block,
            )

        real.on_complete(_mirror)

    def close(self) -> None:
        if self._replay_event is not None:
            self._replay_event.cancel()
            self._replay_event = None
