"""Client-side query middleware: planner surfacing and plan metrics.

The planner itself runs inside the chaincode (it needs the peer's
world-state indexes); this middleware is its client-side counterpart.
For rich-query operations it surfaces the access path the planner chose —
parsed from the ``plan`` member of explain-enabled response envelopes —
into ``ctx.tags["query_plan"]`` and per-path metrics counters, so bench
tables and sessions can report which path served each query without
re-parsing payloads.

Enabled by the ``PipelineConfig.indexes`` knob, which also drives the
fabric-side index enablement (``FabricNetwork.enable_secondary_indexes``)
the same way ``order_batch_size`` and ``scheduler`` are applied.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional, Tuple

from repro.common.metrics import MetricsRegistry
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context
from repro.query.indexes import validate_index_fields

#: Rich-query functions whose responses may carry a plan envelope.
PLANNED_FUNCTIONS = frozenset({"query", "getbyrange"})


class QueryPlannerMiddleware(Middleware):
    """Surface planner decisions for rich queries flowing through a pipeline."""

    name = "query-planner"

    def __init__(
        self,
        indexes: Iterable[str],
        metrics: Optional[MetricsRegistry] = None,
        explain: bool = False,
    ) -> None:
        #: The index fields this pipeline expects the deployment to maintain.
        self.indexes: Tuple[str, ...] = validate_index_fields(indexes)
        self.metrics = metrics
        #: Force ``_explain`` into every selector so plans are always
        #: surfaced (responses become envelopes; sessions handle both shapes).
        self.explain = explain

    # ------------------------------------------------------------- pipeline
    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if ctx.function != "query" or not ctx.is_read or not ctx.args:
            return call_next(ctx)
        if self.explain:
            self._force_explain(ctx)
        result = call_next(ctx)
        plan = self._extract_plan(result)
        if plan is not None:
            ctx.tags["query_plan"] = plan
            if self.metrics is not None:
                path = plan.get("access_path", "unknown")
                self.metrics.counter(f"query.plan.{path}").inc()
        return result

    def _force_explain(self, ctx: Context) -> None:
        try:
            selector = json.loads(ctx.args[0])
        except (TypeError, ValueError):
            return  # malformed: let the chaincode reject it
        if not isinstance(selector, dict) or selector.get("_explain") is True:
            return
        ctx.args[0] = json.dumps({**selector, "_explain": True}, sort_keys=True)

    @staticmethod
    def _extract_plan(result: Any) -> Optional[dict]:
        response = result[0] if isinstance(result, tuple) else result
        payload = getattr(response, "payload", None)
        if not isinstance(payload, str) or not payload.startswith("{"):
            return None
        try:
            envelope = json.loads(payload)
        except ValueError:
            return None
        if not isinstance(envelope, dict):
            return None
        plan = envelope.get("plan")
        return plan if isinstance(plan, dict) else None
