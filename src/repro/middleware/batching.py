"""Endorsement batcher: coalesce endorsed envelopes into one submission."""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.common.metrics import MetricsRegistry
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context


class EndorsementBatcher(Middleware):
    """Holds endorsed transactions and releases them as one orderer send.

    Sits between the collect-endorsements and submit-to-orderer stages of
    the Fabric invoke pipeline.  With ``batch_size <= 1`` it is a pure
    passthrough (byte-for-byte the unbatched behaviour).  With a larger
    batch size, endorsed envelopes queue client-side until the batch fills
    (or :meth:`flush` is called at drain time); the whole batch then
    crosses the wire to the orderer as a single transfer, so the per-
    transaction network overhead is paid once per batch — the client-side
    mirror of the orderer's own block batching.
    """

    name = "endorsement-batcher"

    def __init__(
        self,
        batch_size: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        self.batch_size = batch_size
        self.metrics = metrics
        #: Late-bound by the owning FabricNetwork (avoids an import cycle).
        self.fabric = None
        #: The ChannelShard this batcher serves (one batcher per channel).
        self.shard = None
        self._pending: List[Tuple[Context, Handler]] = []

    def bind(self, fabric: Any, shard: Any = None) -> None:
        """Attach the owning FabricNetwork and shard (topology + orderer node)."""
        self.fabric = fabric
        self.shard = shard

    # ------------------------------------------------------------- pipeline
    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if self.batch_size <= 1:
            return call_next(ctx)
        self._pending.append((ctx, call_next))
        if self.metrics is not None:
            self.metrics.gauge("batcher.queued").set(float(len(self._pending)))
        if len(self._pending) >= self.batch_size:
            self.flush()
        # The handle was created before the pipeline ran; the caller keeps
        # observing it, so deferring the downstream stages is transparent.
        return ctx.tags["invoke"].handle

    # ---------------------------------------------------------------- flush
    def flush(self) -> int:
        """Release every queued envelope as one coalesced submission."""
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        states = [ctx.tags["invoke"] for ctx, _ in batch]
        send_at = max(state.assembled_at for state in states)
        if self.fabric is not None:
            # A drain-time flush happens after virtual time moved past the
            # assembly times; the batch leaves the client no earlier than now.
            send_at = max(send_at, self.fabric.engine.now)
        total_bytes = sum(state.transaction.size_bytes for state in states)
        for ctx, call_next in batch:
            state = ctx.tags["invoke"]
            if self.fabric is not None:
                orderer_node = (
                    self.shard.orderer_node
                    if self.shard is not None
                    else self.fabric.orderer_node
                )
                transfer = self.fabric.network.estimate_transfer_time(
                    state.client_context.host_node,
                    orderer_node,
                    total_bytes,
                )
                ctx.tags["order_arrival"] = send_at + transfer
            call_next(ctx)
        if self.metrics is not None:
            self.metrics.counter("batcher.flushes").inc()
            self.metrics.histogram("batcher.batch_size").observe(float(len(batch)))
            self.metrics.gauge("batcher.queued").set(0.0)
        return len(batch)

    @property
    def queued(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        self.flush()
