"""The request context flowing through a transaction pipeline."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


class OperationKind(enum.Enum):
    """Whether an operation mutates ledger state or only reads it."""

    READ = "read"
    WRITE = "write"


@dataclass
class Context:
    """One client operation travelling through a :class:`TransactionPipeline`.

    The context carries everything a middleware may need to route, time,
    cache or retry the operation.  Middlewares communicate with each other
    and with the terminal handler exclusively through this object (the
    ``tags`` dictionary is the free-form extension point — the Fabric
    stages park their proposal/transaction state there).
    """

    #: Client-facing operator name (``post``, ``get``, ``store_data``, ...).
    operation: str
    kind: OperationKind
    chaincode: str
    function: str
    args: List[str]
    client_name: str = ""
    payload_size_bytes: int = 0
    #: Virtual time the operation should start at; ``None`` means "now".
    at_time: Optional[float] = None
    #: Assigned by the tracing middleware (stable per retry attempt chain).
    request_id: str = ""
    #: 1-based attempt number, incremented by the retry middleware.
    attempt: int = 1
    #: Result of the terminal handler once the pipeline unwound.
    result: Any = None
    #: Whether the read-cache middleware answered from cache.
    cache_hit: bool = False
    #: Whether the result is a degraded-mode answer served from the stale
    #: archive because the authoritative peer was unreachable.
    stale: bool = False
    #: Per-stage timing information accumulated along the chain.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Free-form middleware scratch space.
    tags: Dict[str, Any] = field(default_factory=dict)

    @property
    def is_read(self) -> bool:
        return self.kind is OperationKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OperationKind.WRITE

    def cache_key(self) -> Tuple[str, str, Tuple[str, ...]]:
        """Identity of the read for result caching."""
        return (self.chaincode, self.function, tuple(self.args))
