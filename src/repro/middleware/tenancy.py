"""Tenant namespacing and admission control middlewares.

Multi-tenancy lands as a middleware concern (the SDSN@RT pattern): call
sites and backends stay tenant-unaware while two pipeline links enforce
the namespace on the wire:

* :class:`TenantPrefixMiddleware` rewrites every key argument to live
  under ``tenant/<name>/…`` before the operation reaches the cache or the
  terminal, so two tenants can never address each other's ledger keys.
* :class:`AdmissionControlMiddleware` caps how many write submissions a
  tenant may keep in flight at once (endorsed envelopes queued in the
  batcher or awaiting commit), rejecting excess submissions with
  :class:`~repro.common.errors.AdmissionRejectedError` instead of letting
  one tenant monopolize the ordering path.

Both are enabled declaratively through
:class:`~repro.middleware.config.PipelineConfig` (``tenant`` /
``max_in_flight``) and therefore apply uniformly to the HyperProv client
and to both baseline stores.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Optional

from repro.common.errors import AdmissionRejectedError, ConfigurationError
from repro.common.metrics import MetricsRegistry
from repro.common.tenancy import (  # noqa: F401 - canonical home, re-exported
    namespace_key,
    strip_namespace,
    tenant_namespace,
)
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context

#: Read functions whose first argument is the single ledger key they touch
#: (chaincode reads plus the baselines' ``get`` / ``history``).
KEY_SCOPED_FUNCTIONS = frozenset(
    {"get", "getkeyhistory", "checkhash", "getdependencies", "history"}
)

#: Upper bound used to close an open-ended range within a tenant namespace.
_RANGE_END_SENTINEL = "~"


class TenantPrefixMiddleware(Middleware):
    """Rewrites key arguments into the tenant's namespace.

    Placement matters: the middleware sits above the read cache, so cache
    entries are keyed on namespaced args and a tenant can only ever hit
    its own cached reads.  Rich queries (``query``) cannot be prefixed —
    selectors match record fields — so their result rows are post-filtered
    to the tenant's namespace instead.
    """

    name = "tenant-prefix"

    def __init__(self, tenant: str, metrics: Optional[MetricsRegistry] = None) -> None:
        self.tenant = tenant
        self.prefix = tenant_namespace(tenant)
        self.metrics = metrics

    # ------------------------------------------------------------- pipeline
    def handle(self, ctx: Context, call_next: Handler) -> Any:
        self._rewrite_args(ctx)
        self._rewrite_store_tags(ctx)
        result = call_next(ctx)
        if ctx.function == "query":
            return self._filter_query_result(result)
        if ctx.function == "getbyrange":
            return self._strip_result_bookmark(result)
        return result

    # ------------------------------------------------------------ rewriting
    def _rewrite_args(self, ctx: Context) -> None:
        if ctx.function == "set" and ctx.args:
            ctx.args[0] = self.prefix + ctx.args[0]
            if len(ctx.args) > 3:
                ctx.args[3] = self._prefix_dependency_json(ctx.args[3])
        elif ctx.function in KEY_SCOPED_FUNCTIONS and ctx.args:
            ctx.args[0] = self.prefix + ctx.args[0]
        elif ctx.function == "getbyrange" and len(ctx.args) >= 2:
            ctx.args[0] = self.prefix + ctx.args[0]
            # An empty end key means "unbounded"; bound it to the namespace.
            ctx.args[1] = self.prefix + (ctx.args[1] or _RANGE_END_SENTINEL)
            # Paginated form: the resume bookmark is a (tenant-relative) key.
            if len(ctx.args) > 3 and ctx.args[3]:
                ctx.args[3] = self.prefix + ctx.args[3]
        elif ctx.function == "query" and ctx.args:
            ctx.args[0] = self._namespace_selector_prefix(ctx.args[0])
        elif ctx.operation == "store_record" and ctx.args:
            ctx.args[0] = self.prefix + ctx.args[0]

    def _namespace_selector_prefix(self, encoded: str) -> str:
        """Scope a rich-query selector's reserved ``_prefix`` to the tenant.

        Selectors match record fields, so only the key-prefix scoping hint
        needs rewriting; rows are still post-filtered to the namespace.  A
        selector without ``_prefix`` gains one covering the whole tenant
        namespace, so the candidate scan skips other tenants entirely.
        """
        try:
            selector = json.loads(encoded)
        except (TypeError, ValueError):
            return encoded
        if not isinstance(selector, dict) or not selector:
            return encoded  # malformed/empty: let the chaincode reject it
        existing = selector.get("_prefix", "")
        if not isinstance(existing, str):
            return encoded  # invalid _prefix type: chaincode rejects it
        namespaced = {**selector, "_prefix": self.prefix + existing}
        bookmark = selector.get("_bookmark", "")
        if isinstance(bookmark, str) and bookmark:
            # Bookmarks are ledger keys; clients hold them tenant-relative.
            namespaced["_bookmark"] = self.prefix + bookmark
        return json.dumps(namespaced, sort_keys=True)

    def _prefix_dependency_json(self, encoded: str) -> str:
        try:
            dependencies = json.loads(encoded)
        except (TypeError, ValueError):
            return encoded
        if not isinstance(dependencies, list):
            return encoded
        return json.dumps([self.prefix + str(dep) for dep in dependencies])

    def _rewrite_store_tags(self, ctx: Context) -> None:
        """Namespace the record a baseline store carries out of band."""
        store = ctx.tags.get("store")
        if not isinstance(store, dict):
            return
        record = store.get("record")
        if record is None or not hasattr(record, "key"):
            return
        store["record"] = replace(
            record,
            key=self.prefix + record.key,
            dependencies=[self.prefix + dep for dep in record.dependencies],
        )

    # ------------------------------------------------------------ filtering
    def _filter_query_result(self, result: Any) -> Any:
        """Drop rich-query rows that belong to other namespaces."""
        response = result[0] if isinstance(result, tuple) else result
        payload = getattr(response, "payload", None)
        if not isinstance(payload, str):
            return result
        try:
            rows = json.loads(payload)
        except ValueError:
            return result
        if isinstance(rows, dict) and isinstance(rows.get("records"), list):
            return self._filter_envelope(result, response, rows)
        if not isinstance(rows, list):
            return result
        kept = [
            row for row in rows
            if isinstance(row, dict) and str(row.get("key", "")).startswith(self.prefix)
        ]
        if len(kept) == len(rows):
            return result
        if self.metrics is not None:
            self.metrics.counter("tenant.rows_filtered").inc(len(rows) - len(kept))
        return self._replace_payload(result, response, json.dumps(kept))

    def _filter_envelope(self, result: Any, response: Any, envelope: dict) -> Any:
        """Paginated envelope: filter the page, un-namespace its bookmark."""
        records = envelope["records"]
        kept = [
            row for row in records
            if isinstance(row, dict) and str(row.get("key", "")).startswith(self.prefix)
        ]
        bookmark = envelope.get("bookmark")
        stripped = self._strip_bookmark(bookmark)
        if len(kept) == len(records) and stripped == bookmark:
            return result
        if self.metrics is not None and len(kept) != len(records):
            self.metrics.counter("tenant.rows_filtered").inc(len(records) - len(kept))
        payload = json.dumps({**envelope, "records": kept, "bookmark": stripped})
        return self._replace_payload(result, response, payload)

    def _strip_result_bookmark(self, result: Any) -> Any:
        """Un-namespace the bookmark of a paginated ``getbyrange`` envelope."""
        response = result[0] if isinstance(result, tuple) else result
        payload = getattr(response, "payload", None)
        if not isinstance(payload, str) or not payload.startswith("{"):
            return result  # legacy list payload: no bookmark to rewrite
        try:
            envelope = json.loads(payload)
        except ValueError:
            return result
        if not isinstance(envelope, dict):
            return result
        bookmark = envelope.get("bookmark")
        stripped = self._strip_bookmark(bookmark)
        if stripped == bookmark:
            return result
        payload = json.dumps({**envelope, "bookmark": stripped})
        return self._replace_payload(result, response, payload)

    def _strip_bookmark(self, bookmark: Any) -> Any:
        if isinstance(bookmark, str) and bookmark.startswith(self.prefix):
            return bookmark[len(self.prefix):]
        return bookmark

    @staticmethod
    def _replace_payload(result: Any, response: Any, payload: str) -> Any:
        filtered = replace(response, payload=payload)
        if isinstance(result, tuple):
            return (filtered,) + result[1:]
        return filtered


class InFlightCounter:
    """Mutable in-flight count, shareable between pipelines.

    A service facade hands the same counter to every session of one
    tenant, so the admission cap is genuinely per tenant rather than per
    session pipeline.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class AdmissionControlMiddleware(Middleware):
    """Per-tenant cap on in-flight write submissions.

    A write is "in flight" from the moment it enters the pipeline until
    its transaction handle completes (commit or invalidation); backends
    whose writes finish synchronously release the slot immediately.  The
    cap protects the shared ordering path from a single tenant queueing
    unbounded envelopes in the endorsement batcher.  Sessions of the same
    tenant share one :class:`InFlightCounter` (see ``adopt_counter``), so
    opening more sessions does not widen the cap.
    """

    name = "admission-control"

    def __init__(
        self,
        max_in_flight: int,
        tenant: str = "",
        metrics: Optional[MetricsRegistry] = None,
        counter: Optional[InFlightCounter] = None,
    ) -> None:
        if max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be >= 1 when admission is on")
        self.max_in_flight = max_in_flight
        self.tenant = tenant
        self.metrics = metrics
        self._counter = counter or InFlightCounter()

    def adopt_counter(self, counter: InFlightCounter) -> None:
        """Share another pipeline's counter (same-tenant sessions)."""
        counter.value += self._counter.value
        self._counter = counter

    @property
    def in_flight(self) -> int:
        """Writes currently holding an admission slot."""
        return self._counter.value

    # ------------------------------------------------------------- pipeline
    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if not ctx.is_write:
            return call_next(ctx)
        if self._counter.value >= self.max_in_flight:
            if self.metrics is not None:
                self.metrics.counter("admission.rejected").inc()
            raise AdmissionRejectedError(self.tenant, self.max_in_flight)
        self._counter.value += 1
        self._observe()
        try:
            result = call_next(ctx)
        except Exception:
            self._release()
            raise
        if hasattr(result, "on_complete") and not getattr(result, "is_complete", True):
            result.on_complete(lambda _handle: self._release())
        else:
            self._release()
        return result

    def _release(self) -> None:
        self._counter.value = max(0, self._counter.value - 1)
        self._observe()

    def _observe(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("admission.in_flight").set(float(self._counter.value))
