"""Read-path result cache with commit-event invalidation."""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from contextlib import ExitStack
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.common.errors import CircuitOpenError, NetworkError
from repro.common.events import EventBus
from repro.common.metrics import MetricsRegistry
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context

#: Failures the stale-read fallback may answer for (transport-class only:
#: an application error must always propagate).
UNREACHABLE_ERRORS = (NetworkError, CircuitOpenError)

#: Topic carrying the chaincode event every committed ``set`` emits.
PROVENANCE_RECORDED_TOPIC = "chaincode_event:provenance_recorded"
#: Topic carrying whole delivered blocks (covers deletes and foreign writes).
BLOCK_DELIVERED_TOPIC = "block_delivered"
#: Batched counterparts published once per barrier window when the network
#: runs with ``batch_commit_delivery`` (the parallel executor's mode).
PROVENANCE_RECORDED_BATCH_TOPIC = "chaincode_event_batch:provenance_recorded"
COMMIT_BATCH_TOPIC = "commit_batch"

#: Read functions whose first argument names the single key they depend on
#: (the Fabric chaincode's read set plus the baselines' ``get``/``history``).
KEY_SCOPED_FUNCTIONS = frozenset(
    {"get", "getkeyhistory", "checkhash", "getdependencies", "history"}
)

CacheKey = Tuple[str, str, Tuple[str, ...]]


@dataclass
class CacheEntry:
    """A cached read result plus the keys whose commits stale it."""

    result: Any
    keys: FrozenSet[str]
    #: Broad entries (rich queries, range scans) depend on unknown keys and
    #: are dropped on *any* commit.
    broad: bool


class SharedReadCache:  # repro: thread-shared
    """Thread-safe LRU store usable as a shared cache tier.

    One instance can back many :class:`ReadCacheMiddleware` pipelines —
    the service facade hands the same store to every tenant session so
    repeated reads across sessions hit one cache instead of N private
    dicts.  Entries are keyed on the *namespaced* read arguments (the
    tenant-prefix middleware runs above the cache), so two tenants can
    never observe each other's cached rows.

    All operations take the store's lock: sessions may be driven from
    different threads (the futures-based write path invites that), and an
    LRU's ``move_to_end`` is not atomic on its own.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()

    def get(self, key: CacheKey) -> Optional[CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: CacheKey, entry: CacheEntry) -> int:
        """Store an entry; returns how many LRU entries were evicted."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            return evicted

    def invalidate_key(self, state_key: str) -> int:
        """Drop every entry that may depend on ``state_key``; returns count."""
        with self._lock:
            stale = [
                cache_key
                for cache_key, entry in self._entries.items()
                if entry.broad or state_key in entry.keys
            ]
            for cache_key in stale:
                del self._entries[cache_key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[CacheKey]:
        with self._lock:
            return list(self._entries.keys())


class ReadCacheMiddleware(Middleware):
    """LRU cache for read-only operations, invalidated by commit events.

    A hit short-circuits the rest of the pipeline and returns the cached
    payload with ``hit_latency_s`` as the observed latency (a local lookup
    instead of a network round trip to a peer).  Correctness comes from
    invalidation, not expiry: the middleware subscribes to the network's
    :class:`EventBus` — the ``provenance_recorded`` chaincode event names
    the committed key directly, and delivered blocks are scanned for write
    sets so deletes and writes from other clients also purge stale entries.
    On a sharded network the middleware attaches to every shard's commit
    stream (each channel delivers its own blocks).

    By default each middleware owns a private :class:`SharedReadCache`;
    pass ``store`` to share one cache tier across several pipelines (the
    ``shared_cache`` pipeline knob) — the store then outlives any single
    pipeline and ``close()`` only drops this middleware's subscriptions.

    With ``serve_stale=True`` the middleware additionally keeps a
    *stale archive*: the last successful result per read, LRU-bounded but
    **never** invalidated by commits.  When the authoritative peer is
    unreachable (partition, crashed peer, open circuit) a read that would
    otherwise fail is answered from the archive with ``ctx.stale = True``
    — graceful degradation with an explicit marker, never silently passed
    off as fresh.
    """

    name = "read-cache"

    def __init__(
        self,
        capacity: int = 256,
        hit_latency_s: float = 0.0,
        events: Optional[EventBus] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[SharedReadCache] = None,
        serve_stale: bool = False,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.hit_latency_s = hit_latency_s
        self.metrics = metrics
        self.serve_stale = serve_stale
        self._owns_store = store is None
        self.store = store if store is not None else SharedReadCache(capacity)
        #: Last-known-good results for the stale fallback (commit events
        #: never touch this; only LRU pressure evicts).
        self._stale_archive: "OrderedDict[CacheKey, Any]" = OrderedDict()
        #: Subscriptions are context managers; the stack cancels every one
        #: on close even if an individual cancel raises.
        self._subscriptions = ExitStack()
        if events is not None:
            self.attach(events)

    # -------------------------------------------------------------- wiring
    def attach(self, events: EventBus, batched: bool = False) -> None:
        """Subscribe to one bus whose commit events invalidate entries.

        May be called several times — once per shard event stream on a
        multi-channel network.  ``batched=True`` additionally subscribes to
        the window-batched commit topics, so invalidation keeps working when
        the network defers per-block fan-out to barrier-window flushes
        (``batch_commit_delivery`` / the ``parallel`` pipeline knob).
        """
        stack = self._subscriptions
        stack.enter_context(
            events.subscribe(PROVENANCE_RECORDED_TOPIC, self._on_provenance_recorded)
        )
        stack.enter_context(
            events.subscribe(BLOCK_DELIVERED_TOPIC, self._on_block_delivered)
        )
        if batched:
            stack.enter_context(
                events.subscribe(
                    PROVENANCE_RECORDED_BATCH_TOPIC, self._on_provenance_batch
                )
            )
            stack.enter_context(
                events.subscribe(COMMIT_BATCH_TOPIC, self._on_commit_batch)
            )

    def close(self) -> None:
        self._subscriptions.close()
        if self._owns_store:
            self.store.clear()
        self._stale_archive.clear()

    # ------------------------------------------------------------- pipeline
    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if not ctx.is_read:
            return call_next(ctx)
        key = ctx.cache_key()
        entry = self.store.get(key)
        if entry is not None:
            ctx.cache_hit = True
            ctx.timings["cache_lookup_s"] = self.hit_latency_s
            if self.metrics is not None:
                self.metrics.counter("cache.hits").inc()
            return self._hit_result(entry.result)
        if self.metrics is not None:
            self.metrics.counter("cache.misses").inc()
        if self.serve_stale:
            try:
                result = call_next(ctx)
            except UNREACHABLE_ERRORS:
                archived = self._stale_archive.get(key)
                if archived is None:
                    raise
                self._stale_archive.move_to_end(key)
                ctx.stale = True
                ctx.timings["cache_lookup_s"] = self.hit_latency_s
                if self.metrics is not None:
                    self.metrics.counter("cache.stale_served").inc()
                return self._hit_result(archived)
        else:
            result = call_next(ctx)
        self._store(ctx, key, result)
        return result

    def _hit_result(self, result: Any) -> Any:
        """Rewrite the cached result's latency to the local lookup cost."""
        if isinstance(result, tuple) and len(result) == 2:
            return (result[0], self.hit_latency_s)
        return result

    def _store(self, ctx: Context, key: CacheKey, result: Any) -> None:
        if ctx.function in KEY_SCOPED_FUNCTIONS and ctx.args:
            keys: FrozenSet[str] = frozenset({ctx.args[0]})
            broad = False
        else:
            keys = frozenset()
            broad = True
        evicted = self.store.put(key, CacheEntry(result=result, keys=keys, broad=broad))
        if evicted and self.metrics is not None:
            self.metrics.counter("cache.evictions").inc(evicted)
        if self.serve_stale:
            self._stale_archive[key] = result
            self._stale_archive.move_to_end(key)
            while len(self._stale_archive) > self.capacity:
                self._stale_archive.popitem(last=False)

    # --------------------------------------------------------- invalidation
    def invalidate_key(self, state_key: str) -> int:
        """Drop every entry that may depend on ``state_key``; returns count."""
        stale = self.store.invalidate_key(state_key)
        if stale and self.metrics is not None:
            self.metrics.counter("cache.invalidations").inc(stale)
        return stale

    def clear(self) -> None:
        self.store.clear()

    def _on_provenance_recorded(self, _topic: str, payload: Dict[str, Any]) -> None:
        key = self._event_key(payload)
        if key is not None:
            self.invalidate_key(key)

    @staticmethod
    def _event_key(payload: Dict[str, Any]) -> Optional[str]:
        if not isinstance(payload, dict):
            return None
        if "key" in payload:
            return payload["key"]
        raw = payload.get("payload")
        if isinstance(raw, str):
            try:
                return json.loads(raw).get("key")
            except (ValueError, AttributeError):
                return None
        return None

    def _on_block_delivered(self, _topic: str, payload: Dict[str, Any]) -> None:
        block = payload.get("block") if isinstance(payload, dict) else None
        if block is None:
            return
        for transaction in getattr(block, "transactions", []):
            rw_set = getattr(transaction, "rw_set", None)
            if rw_set is None:
                continue
            for write in rw_set.writes:
                self.invalidate_key(write.key)

    def _on_provenance_batch(self, topic: str, payloads: Any) -> None:
        for payload in payloads if isinstance(payloads, list) else []:
            self._on_provenance_recorded(topic, payload)

    def _on_commit_batch(self, topic: str, entries: Any) -> None:
        for entry in entries if isinstance(entries, list) else []:
            self._on_block_delivered(topic, entry)

    # -------------------------------------------------------- introspection
    def __len__(self) -> int:
        return len(self.store)

    def cached_keys(self) -> List[CacheKey]:
        return self.store.keys()
