"""Shard routing: consistent hashing of provenance keys onto channels.

With the Fabric host running N channels (:class:`~repro.fabric.network.ChannelShard`),
some pipeline link has to decide which channel a given operation belongs
to.  :class:`ShardRouterMiddleware` is that link:

* **Writes and key-scoped reads** route by consistent hashing on the
  provenance key.  The hash ring is tenant-prefix aware: a key living in a
  tenant namespace (``tenant/<name>/…``) hashes on ``tenant/<name>`` alone,
  so all of one tenant's keys co-locate on a single channel — its commits,
  cache invalidations and history stay shard-local.
* **Range scans, rich queries and key history** fan out to every shard and
  merge: range/rich rows are combined in key order (deduplicated on key,
  newest record wins), history entries are merged in commit-timestamp
  order.  History fans out because shard ownership can move when the ring
  is re-sized between runs — old versions of a key may live on the shard
  that owned it under the previous layout.

The router sits at the bottom of the client chain (below the read cache,
so a cached read never pays the fan-out) and communicates the decision to
the terminal through ``ctx.tags["shard"]``; backends without shards simply
ignore the tag.
"""

from __future__ import annotations

import bisect
import hashlib
import json
from dataclasses import replace
from typing import Any, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.metrics import MetricsRegistry
from repro.common.tenancy import TENANT_PREFIX, tenant_of_key
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context

#: Functions whose first argument names the single key they operate on.
KEY_SCOPED_FUNCTIONS = frozenset(
    {"get", "checkhash", "getdependencies", "set", "store_record"}
)

#: Read functions the router fans out to every shard and merges.
FAN_OUT_FUNCTIONS = frozenset({"getbyrange", "query", "getkeyhistory"})


def routing_key(ledger_key: str) -> str:
    """The portion of a ledger key the hash ring sees.

    Tenant-namespaced keys collapse to their ``tenant/<name>`` prefix so a
    tenant's whole keyspace co-locates on one shard.
    """
    tenant = tenant_of_key(ledger_key)
    if tenant:
        return TENANT_PREFIX + tenant
    return ledger_key


class ConsistentHashRing:
    """A classic consistent-hash ring over shard indices.

    Each shard owns ``virtual_nodes`` deterministic points on the ring
    (MD5 of ``shard:<index>:<replica>``), so adding a shard only remaps
    ~1/N of the keyspace instead of reshuffling everything — the property
    that makes growing from 2 to 4 channels an incremental migration.
    """

    def __init__(self, shards: int, virtual_nodes: int = 64) -> None:
        if shards < 1:
            raise ConfigurationError("a hash ring needs at least one shard")
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        self.shards = shards
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(virtual_nodes):
                digest = hashlib.md5(
                    f"shard:{shard}:{replica}".encode("ascii")
                ).hexdigest()
                points.append((int(digest[:16], 16), shard))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _hash(key: str) -> int:
        return int(hashlib.md5(key.encode("utf-8")).hexdigest()[:16], 16)

    def route(self, key: str) -> int:
        """The shard index owning ``key`` (via its routing prefix)."""
        if self.shards == 1:
            return 0
        position = bisect.bisect(self._hashes, self._hash(routing_key(key)))
        if position == len(self._hashes):
            position = 0
        return self._owners[position]


class ShardRouterMiddleware(Middleware):
    """Routes operations onto channel shards (see module docstring)."""

    name = "shard-router"

    def __init__(
        self,
        shards: int,
        virtual_nodes: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.ring = ConsistentHashRing(shards, virtual_nodes=virtual_nodes)
        self.shards = shards
        self.metrics = metrics

    # ------------------------------------------------------------- pipeline
    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if ctx.function in FAN_OUT_FUNCTIONS and ctx.is_read and self.shards > 1:
            return self._fan_out(ctx, call_next)
        shard = self.route_for(ctx)
        ctx.tags["shard"] = shard
        if self.metrics is not None:
            self.metrics.counter(f"router.shard_{shard}").inc()
        return call_next(ctx)

    def route_for(self, ctx: Context) -> int:
        """Single-shard routing decision for one operation."""
        if ctx.args and (ctx.function in KEY_SCOPED_FUNCTIONS or ctx.is_write):
            return self.ring.route(ctx.args[0])
        if ctx.args and ctx.function in FAN_OUT_FUNCTIONS:
            # Single-shard rings short-circuit fan-out to a plain call.
            return self.ring.route(ctx.args[0])
        return 0

    # -------------------------------------------------------------- fan-out
    def _fan_out(self, ctx: Context, call_next: Handler) -> Any:
        """Run the read on every shard and merge the shard results."""
        results = []
        for shard in range(self.shards):
            sub = self._sub_context(ctx, shard)
            results.append(call_next(sub))
        if self.metrics is not None:
            self.metrics.counter("router.fan_outs").inc()
        ok = [result for result in results if self._is_ok(result)]
        if not ok:
            return results[0]
        merged_rows = self._merge_payloads(
            ctx, [self._payload(result) for result in ok]
        )
        latency = max((self._latency(result) for result in ok), default=0.0)
        return self._rebuild(ok[0], merged_rows, latency)

    @staticmethod
    def _sub_context(ctx: Context, shard: int) -> Context:
        sub = replace(ctx, args=list(ctx.args), timings={}, tags=dict(ctx.tags))
        sub.tags["shard"] = shard
        return sub

    # ----------------------------------------------------- result plumbing
    @staticmethod
    def _is_ok(result: Any) -> bool:
        response = result[0] if isinstance(result, tuple) else result
        return bool(getattr(response, "is_ok", False)) and isinstance(
            getattr(response, "payload", None), str
        )

    @staticmethod
    def _payload(result: Any) -> str:
        response = result[0] if isinstance(result, tuple) else result
        return response.payload

    @staticmethod
    def _latency(result: Any) -> float:
        if isinstance(result, tuple) and len(result) == 2:
            return float(result[1])
        return 0.0

    @staticmethod
    def _rebuild(template: Any, payload: str, latency: float) -> Any:
        response = template[0] if isinstance(template, tuple) else template
        merged = replace(response, payload=payload)
        if isinstance(template, tuple):
            return (merged, latency)
        return merged

    # -------------------------------------------------------------- merging
    def _merge_payloads(self, ctx: Context, payloads: List[str]) -> str:
        decoded_payloads: List[Any] = []
        for payload in payloads:
            try:
                decoded_payloads.append(json.loads(payload))
            except ValueError:
                continue
        if ctx.function == "getkeyhistory":
            rows = [
                row
                for decoded in decoded_payloads
                if isinstance(decoded, list)
                for row in decoded
            ]
            return json.dumps(self._merge_history(rows))
        if any(
            isinstance(decoded, dict) and isinstance(decoded.get("records"), list)
            for decoded in decoded_payloads
        ):
            return json.dumps(self._merge_envelopes(ctx, decoded_payloads))
        rows = [
            row
            for decoded in decoded_payloads
            if isinstance(decoded, list)
            for row in decoded
        ]
        return json.dumps(self._merge_keyed_rows(rows))

    def _merge_envelopes(self, ctx: Context, decoded_payloads: List[Any]) -> dict:
        """Merge per-shard pages into one page honouring the request limit.

        Every shard resumed strictly after the same bookmark and returned
        at most one page, so the union (dedup, key order) truncated to the
        limit is exactly the global next page.  The merged bookmark is the
        last returned key whenever any shard signalled more rows or the
        union overflowed the limit — the same "possibly one empty trailing
        page" contract the single-shard path has.  Per-shard plans are
        kept under the merged plan so ``explain`` stays honest about the
        fan-out.
        """
        rows: List[Any] = []
        has_more = False
        plans: List[Any] = []
        for decoded in decoded_payloads:
            if isinstance(decoded, list):  # a legacy-shaped shard response
                rows.extend(decoded)
                continue
            if not isinstance(decoded, dict):
                continue
            records = decoded.get("records")
            if isinstance(records, list):
                rows.extend(records)
            if decoded.get("bookmark"):
                has_more = True
            plan = decoded.get("plan")
            if isinstance(plan, dict):
                plans.append(plan)
        merged = self._merge_keyed_rows(rows)
        limit = self._request_limit(ctx)
        if limit and len(merged) > limit:
            merged = merged[:limit]
            has_more = True
        bookmark = merged[-1]["key"] if has_more and merged else None
        envelope: dict = {"records": merged, "bookmark": bookmark}
        if plans:
            paths = {plan.get("access_path") for plan in plans}
            envelope["plan"] = {
                "access_path": paths.pop() if len(paths) == 1 else "mixed",
                "fan_out": len(plans),
                "shards": plans,
            }
        return envelope

    @staticmethod
    def _request_limit(ctx: Context) -> int:
        """The page limit the caller asked for (0 = unlimited)."""
        try:
            if ctx.function == "query" and ctx.args:
                selector = json.loads(ctx.args[0])
                if isinstance(selector, dict):
                    limit = selector.get("_limit", 0)
                    if isinstance(limit, int) and not isinstance(limit, bool):
                        return max(0, limit)
                return 0
            if ctx.function == "getbyrange" and len(ctx.args) > 2 and ctx.args[2]:
                return max(0, int(ctx.args[2]))
        except (TypeError, ValueError):
            return 0
        return 0

    @staticmethod
    def _merge_history(entries: List[Any]) -> List[Any]:
        """Order history entries from several shards by commit time.

        Block numbers are per-shard (each shard cuts its own chain), so
        cross-shard ordering uses the entry's commit timestamp first and
        only falls back to block/tx ordering to break ties within a shard.
        """
        def sort_key(entry: Any) -> Tuple[float, int]:
            if not isinstance(entry, dict):
                return (0.0, 0)
            timestamp = entry.get("timestamp")
            block = entry.get("block")
            return (
                float(timestamp) if timestamp is not None else 0.0,
                int(block) if block is not None else 0,
            )

        return sorted(entries, key=sort_key)

    @staticmethod
    def _merge_keyed_rows(rows: List[Any]) -> List[Any]:
        """Combine range/rich-query rows: key order, newest record wins."""
        def record_timestamp(row: Any) -> float:
            try:
                return float(json.loads(row["record"]).get("timestamp", 0.0))
            except (KeyError, TypeError, ValueError):
                return 0.0

        by_key = {}
        for row in rows:
            if not isinstance(row, dict) or "key" not in row:
                continue
            key = row["key"]
            current = by_key.get(key)
            if current is None or record_timestamp(row) >= record_timestamp(current):
                by_key[key] = row
        return [by_key[key] for key in sorted(by_key)]
