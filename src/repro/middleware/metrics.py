"""Per-operation and per-stage timing metrics for pipeline operations."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.common.metrics import MetricsRegistry
from repro.fabric.proposal import TransactionHandle
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context

#: Histogram names for the write path's per-stage latency breakdown.
STAGE_ENDORSE = "stage.endorse_s"
STAGE_ORDER = "stage.order_s"
STAGE_COMMIT = "stage.commit_s"
STAGE_NAMES = (STAGE_ENDORSE, STAGE_ORDER, STAGE_COMMIT)
#: Canonical stage label → histogram name, in pipeline order.  The bench
#: reporting/export layers derive their stage lists from this mapping.
STAGES = {
    "endorse": STAGE_ENDORSE,
    "order": STAGE_ORDER,
    "commit": STAGE_COMMIT,
}


class MetricsMiddleware(Middleware):
    """Counts operations and times them, attributing write latency to stages.

    Reads are timed from the ``(response, latency)`` result the terminal
    returns.  Writes return a :class:`TransactionHandle` immediately; the
    middleware registers an ``on_complete`` callback and, once the anchor
    peer commits, decomposes the end-to-end latency into the endorse /
    order / commit phases recorded on the handle — the breakdown
    ``bench.ops_table`` and ``bench.export`` report so the ops benchmark
    can attribute where time goes.
    """

    name = "metrics"

    def __init__(
        self,
        registry: MetricsRegistry,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry
        self.clock = clock or (lambda: 0.0)

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        self.registry.counter(f"ops.{ctx.operation}").inc()
        try:
            result = call_next(ctx)
        except Exception:
            self.registry.counter(f"errors.{ctx.operation}").inc()
            raise
        self._observe(ctx, result)
        return result

    # ------------------------------------------------------------ recording
    def _observe(self, ctx: Context, result: Any) -> None:
        if isinstance(result, TransactionHandle):
            result.on_complete(lambda handle: self._observe_write(ctx, handle))
            return
        latency = self._read_latency(ctx, result)
        if latency is not None:
            self.registry.histogram(f"op.{ctx.operation}.latency_s").observe(latency)
            if ctx.cache_hit:
                self.registry.histogram("cache.hit_latency_s").observe(latency)

    @staticmethod
    def _read_latency(ctx: Context, result: Any) -> Optional[float]:
        if (
            isinstance(result, tuple)
            and len(result) == 2
            and isinstance(result[1], (int, float))
        ):
            return float(result[1])
        latency = ctx.timings.get("latency_s")
        return float(latency) if latency is not None else None

    def _observe_write(self, ctx: Context, handle: TransactionHandle) -> None:
        if not handle.is_complete:
            return
        self.registry.histogram(f"op.{ctx.operation}.latency_s").observe(handle.latency_s)
        if not handle.is_valid:
            self.registry.counter(f"invalidated.{ctx.operation}").inc()
            return
        endorse = handle.timings.get("endorsement_s")
        if endorse is None and handle.endorsed_at:
            endorse = handle.endorsed_at - handle.submitted_at
        order = None
        if handle.ordered_at and handle.endorsed_at:
            order = handle.ordered_at - handle.endorsed_at
        commit = None
        if handle.committed_at and handle.ordered_at:
            commit = handle.committed_at - handle.ordered_at
        for name, value in ((STAGE_ENDORSE, endorse), (STAGE_ORDER, order),
                            (STAGE_COMMIT, commit)):
            if value is not None and value >= 0.0:
                self.registry.histogram(name).observe(value)
