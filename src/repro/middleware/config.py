"""Declarative pipeline configuration.

Benchmarks and the CLI describe a pipeline as data — cache on/off, retry
attempts, batch size — and build it here, so an ablation is a config swap
rather than a code fork.  ``PipelineConfig()`` (all defaults) reproduces
the pre-middleware behaviour exactly: tracing and metrics only observe,
retry makes a single attempt, the cache is off and the batcher passes
every envelope straight through.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ConfigurationError, ValidationError
from repro.common.events import EventBus
from repro.common.ids import DeterministicIdGenerator
from repro.common.metrics import MetricsRegistry
from repro.consensus.scheduler import SCHEDULER_NAMES
from repro.middleware.base import Handler, Middleware, TransactionPipeline
from repro.middleware.cache import ReadCacheMiddleware, SharedReadCache
from repro.middleware.metrics import MetricsMiddleware
from repro.middleware.query import QueryPlannerMiddleware
from repro.middleware.resilience import (
    CircuitBreakerMiddleware,
    DeadlineMiddleware,
    StoreAndForwardMiddleware,
)
from repro.middleware.retry import RetryMiddleware, RetryPolicy
from repro.middleware.sharding import ShardRouterMiddleware
from repro.middleware.tenancy import (
    AdmissionControlMiddleware,
    TenantPrefixMiddleware,
    tenant_namespace,
)
from repro.middleware.tracing import RequestIdMiddleware
from repro.query.indexes import validate_index_fields
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom

#: Seed for the retry-jitter RNG stream (forked per tenant so colocated
#: pipelines decorrelate while every run stays byte-reproducible).
RETRY_JITTER_SEED = 20240807


@dataclass
class PipelineConfig:
    """Which middlewares a client pipeline runs, and how they are tuned."""

    #: Assign request ids and publish trace events.
    tracing: bool = True
    #: Record per-operation and per-stage latency metrics.
    metrics: bool = True
    #: Total attempts per operation (1 = no retry).
    retry_attempts: int = 1
    retry_backoff_s: float = 0.05
    retry_multiplier: float = 2.0
    #: Serve repeated reads from a client-side cache (commit-invalidated).
    cache: bool = False
    cache_capacity: int = 256
    #: Latency charged for a cache hit (a local lookup, not a peer RTT).
    cache_hit_latency_s: float = 0.0
    #: Endorsed envelopes coalesced per orderer submission (fabric-side).
    order_batch_size: int = 1
    #: Tenant whose namespace every key argument is rewritten into
    #: (empty = single-tenant, no rewriting).
    tenant: str = ""
    #: Per-tenant cap on in-flight write submissions (0 = uncapped).
    max_in_flight: int = 0
    #: Channel shards the router spreads keys over (1 = no routing; must
    #: not exceed the deployment's hosted channel count).
    shards: int = 1
    #: Orderer intake scheduling policy (``fifo`` or ``fair-share``),
    #: applied to every shard's ordering service alongside this config.
    #: ``None`` (the default) leaves whatever policy the deployment was
    #: built with untouched.
    scheduler: Optional[str] = None
    #: Back the read cache with the deployment's shared cache tier instead
    #: of a pipeline-private store (needs ``cache=True`` to matter).
    shared_cache: bool = False
    #: The pipeline targets a network running batched commit delivery (the
    #: parallel executor's mode): commit-driven middlewares — today the
    #: read cache — additionally subscribe to the window-batched topics
    #: (``commit_batch`` and ``chaincode_event_batch:*``) so invalidation
    #: keeps working when per-block fan-out is deferred to barrier flushes.
    parallel: bool = False
    #: Field-value secondary indexes maintained on every peer's world state
    #: (record fields, ``metadata.<key>`` or ``metadata.*``; empty = none).
    #: Enables the query-planner middleware and, when the config is applied
    #: to a deployment, ``FabricNetwork.enable_secondary_indexes``.
    indexes: Tuple[str, ...] = ()
    #: Allow sessions built from this config to register standing
    #: commit-fed selectors (``session.subscribe``).
    continuous_queries: bool = False
    #: Per-request virtual-time budget in seconds (0 = no deadline).
    #: Reads finishing past it and writes whose envelope would reach the
    #: orderer past it raise ``DeadlineExceededError``; retry backoffs
    #: never restart an attempt beyond it.
    deadline_s: float = 0.0
    #: Symmetric jitter fraction on retry backoff delays (0 = the
    #: historical deterministic schedule, no RNG draws).
    retry_jitter: float = 0.0
    #: Per-shard closed→open→half-open circuit breaker at the bottom of
    #: the chain (cache hits bypass it).
    circuit_breaker: bool = False
    #: Consecutive transport failures that open one shard's circuit.
    circuit_failure_threshold: int = 5
    #: Virtual seconds an open circuit rejects calls before one half-open
    #: probe is allowed through.
    circuit_cooldown_s: float = 1.0
    #: Queue unreachable writes locally and replay them on a virtual-time
    #: interval (graceful degradation during partitions).
    store_and_forward: bool = False
    saf_replay_interval_s: float = 0.5
    #: Replay attempts per queued write before it is abandoned (bounds
    #: the replay loop when a partition never heals).
    saf_max_replays: int = 64
    #: Serve reads from the last-known-good archive with an explicit
    #: ``stale=True`` marker when the peer is unreachable (needs
    #: ``cache=True``).
    stale_reads: bool = False

    def __post_init__(self) -> None:
        if self.retry_attempts < 1:
            raise ConfigurationError("retry_attempts must be >= 1")
        if self.deadline_s < 0:
            raise ConfigurationError("deadline_s must be >= 0")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ConfigurationError("retry_jitter must be in [0, 1)")
        if self.circuit_failure_threshold < 1:
            raise ConfigurationError("circuit_failure_threshold must be >= 1")
        if self.circuit_cooldown_s <= 0:
            raise ConfigurationError("circuit_cooldown_s must be > 0")
        if self.saf_replay_interval_s <= 0:
            raise ConfigurationError("saf_replay_interval_s must be > 0")
        if self.saf_max_replays < 1:
            raise ConfigurationError("saf_max_replays must be >= 1")
        if self.stale_reads and not self.cache:
            raise ConfigurationError(
                "stale_reads needs cache=True (the stale archive lives in "
                "the read-cache middleware)"
            )
        if self.cache_capacity < 1:
            raise ConfigurationError("cache_capacity must be >= 1")
        if self.order_batch_size < 1:
            raise ConfigurationError("order_batch_size must be >= 1")
        if self.max_in_flight < 0:
            raise ConfigurationError("max_in_flight must be >= 0")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.scheduler is not None and self.scheduler not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r} (choose from {SCHEDULER_NAMES})"
            )
        if self.tenant:
            tenant_namespace(self.tenant)  # validates the name
        if self.indexes:
            try:
                self.indexes = validate_index_fields(self.indexes)
            except ValidationError as error:
                raise ConfigurationError(str(error)) from error
        else:
            self.indexes = ()

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PipelineConfig":
        known = {name for name in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown pipeline config keys: {sorted(unknown)}"
            )
        return cls(**data)

    def middleware_names(self) -> List[str]:
        """Names of the middlewares this config enables, in chain order."""
        names = []
        if self.tracing:
            names.append("request-id")
        if self.metrics:
            names.append("metrics")
        if self.indexes:
            names.append("query-planner")
        if self.max_in_flight > 0:
            names.append("admission-control")
        if self.tenant:
            names.append("tenant-prefix")
        if self.deadline_s > 0:
            names.append("deadline")
        if self.store_and_forward:
            names.append("store-and-forward")
        if self.retry_attempts > 1:
            names.append("retry")
        if self.cache:
            names.append("read-cache")
        if self.shards > 1:
            names.append("shard-router")
        if self.circuit_breaker:
            names.append("circuit-breaker")
        return names


def build_client_middlewares(
    config: PipelineConfig,
    *,
    clock: Optional[Callable[[], float]] = None,
    events: Optional[EventBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    id_generator: Optional[DeterministicIdGenerator] = None,
    cache_events: Optional[List[EventBus]] = None,
    shared_cache_store: Optional[SharedReadCache] = None,
    engine: Optional[SimulationEngine] = None,
) -> List[Middleware]:
    """Instantiate the stock middleware chain a :class:`PipelineConfig` asks for.

    Chain order is fixed: tracing (outermost, so every attempt is visible
    under one request id) → metrics (counts the operation once) →
    admission control (rejects over-cap writes before they consume any
    downstream work) → tenant-prefix (namespaces keys before the cache and
    the terminal ever see them) → deadline (stamps the budget every lower
    layer honours) → store-and-forward (above retry, so a write queues
    only after retry exhausted the transient path) → retry → cache (so a
    retried attempt can still be answered from cache and a hit
    short-circuits everything below it) → shard-router (routing runs per
    attempt and a cache hit never pays the fan-out) → circuit-breaker
    (innermost: keyed on the routed shard, sees every real backend call
    and nothing served from cache).

    ``cache_events`` overrides the cache's invalidation subscription with
    one bus per channel shard; ``shared_cache_store`` backs the cache with
    a cross-pipeline tier instead of a private store (``shared_cache``);
    ``engine`` is required by the store-and-forward replay timer.
    """
    middlewares: List[Middleware] = []
    if config.tracing:
        middlewares.append(RequestIdMiddleware(id_generator=id_generator, events=events))
    if config.metrics and metrics is not None:
        middlewares.append(MetricsMiddleware(registry=metrics, clock=clock))
    if config.indexes:
        middlewares.append(QueryPlannerMiddleware(config.indexes, metrics=metrics))
    if config.max_in_flight > 0:
        middlewares.append(
            AdmissionControlMiddleware(
                max_in_flight=config.max_in_flight,
                tenant=config.tenant,
                metrics=metrics,
            )
        )
    if config.tenant:
        middlewares.append(TenantPrefixMiddleware(config.tenant, metrics=metrics))
    if config.deadline_s > 0:
        middlewares.append(
            DeadlineMiddleware(config.deadline_s, clock=clock, metrics=metrics)
        )
    if config.store_and_forward:
        if engine is None:
            raise ConfigurationError(
                "store_and_forward needs the deployment's simulation engine "
                "(pass engine=... to build_client_middlewares)"
            )
        middlewares.append(
            StoreAndForwardMiddleware(
                engine,
                replay_interval_s=config.saf_replay_interval_s,
                max_replays=config.saf_max_replays,
                metrics=metrics,
            )
        )
    if config.retry_attempts > 1:
        policy = RetryPolicy(
            max_attempts=config.retry_attempts,
            backoff_s=config.retry_backoff_s,
            multiplier=config.retry_multiplier,
            jitter_fraction=config.retry_jitter,
        )
        jitter_rng = (
            DeterministicRandom(RETRY_JITTER_SEED).fork(
                f"retry:{config.tenant or 'default'}"
            )
            if config.retry_jitter > 0
            else None
        )
        middlewares.append(
            RetryMiddleware(policy=policy, clock=clock, metrics=metrics, rng=jitter_rng)
        )
    if config.cache:
        cache = ReadCacheMiddleware(
            capacity=config.cache_capacity,
            hit_latency_s=config.cache_hit_latency_s,
            events=None,
            metrics=metrics,
            store=shared_cache_store if config.shared_cache else None,
            serve_stale=config.stale_reads,
        )
        if cache_events is not None:
            for bus in cache_events:
                cache.attach(bus, batched=config.parallel)
        elif events is not None:
            cache.attach(events, batched=config.parallel)
        middlewares.append(cache)
    if config.shards > 1:
        middlewares.append(ShardRouterMiddleware(config.shards, metrics=metrics))
    if config.circuit_breaker:
        middlewares.append(
            CircuitBreakerMiddleware(
                failure_threshold=config.circuit_failure_threshold,
                cooldown_s=config.circuit_cooldown_s,
                clock=clock,
                metrics=metrics,
            )
        )
    return middlewares


def build_client_pipeline(
    config: PipelineConfig,
    terminal: Handler,
    *,
    clock: Optional[Callable[[], float]] = None,
    events: Optional[EventBus] = None,
    metrics: Optional[MetricsRegistry] = None,
    id_generator: Optional[DeterministicIdGenerator] = None,
    cache_events: Optional[List[EventBus]] = None,
    shared_cache_store: Optional[SharedReadCache] = None,
    engine: Optional[SimulationEngine] = None,
) -> TransactionPipeline:
    """Build a ready-to-run pipeline around ``terminal``."""
    return TransactionPipeline(
        build_client_middlewares(
            config,
            clock=clock,
            events=events,
            metrics=metrics,
            id_generator=id_generator,
            cache_events=cache_events,
            shared_cache_store=shared_cache_store,
            engine=engine,
        ),
        terminal,
    )
