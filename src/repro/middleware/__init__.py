"""Composable transaction-middleware pipeline.

One client operation is modelled as a :class:`~repro.middleware.context.Context`
flowing through an ordered chain of :class:`~repro.middleware.base.Middleware`
objects (``handle(ctx, call_next)``) that terminates in a handler doing the
actual work (a Fabric invoke/query, a baseline store, ...).

The stock middlewares cover the cross-cutting concerns the roadmap calls
for — request-id tracing, per-stage metrics, bounded retry with backoff, a
read-path result cache with commit-event invalidation, and an endorsement
batcher — while :mod:`repro.middleware.stages` holds the Fabric invoke flow
itself (build-proposal → collect-endorsements → submit-to-orderer →
await-commit) decomposed into the same middleware shape.  Pipelines are
assembled declaratively from :class:`~repro.middleware.config.PipelineConfig`
so benchmarks can run ablations (cache on/off, batch size, retry policy) as
configuration swaps instead of code forks.
"""

from repro.middleware.base import Middleware, TransactionPipeline
from repro.middleware.batching import EndorsementBatcher
from repro.middleware.cache import ReadCacheMiddleware, SharedReadCache
from repro.middleware.config import PipelineConfig, build_client_pipeline
from repro.middleware.context import Context, OperationKind
from repro.middleware.metrics import MetricsMiddleware
from repro.middleware.query import QueryPlannerMiddleware
from repro.middleware.retry import RetryMiddleware, RetryPolicy
from repro.middleware.sharding import (
    ConsistentHashRing,
    ShardRouterMiddleware,
    routing_key,
)
from repro.middleware.tenancy import (
    AdmissionControlMiddleware,
    TenantPrefixMiddleware,
    namespace_key,
    strip_namespace,
    tenant_namespace,
)
from repro.middleware.tracing import RequestIdMiddleware

__all__ = [
    "Context",
    "OperationKind",
    "Middleware",
    "TransactionPipeline",
    "RequestIdMiddleware",
    "MetricsMiddleware",
    "RetryMiddleware",
    "RetryPolicy",
    "ReadCacheMiddleware",
    "SharedReadCache",
    "QueryPlannerMiddleware",
    "ShardRouterMiddleware",
    "ConsistentHashRing",
    "routing_key",
    "EndorsementBatcher",
    "AdmissionControlMiddleware",
    "TenantPrefixMiddleware",
    "tenant_namespace",
    "namespace_key",
    "strip_namespace",
    "PipelineConfig",
    "build_client_pipeline",
]
