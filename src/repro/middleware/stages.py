"""The Fabric invoke flow decomposed into pipeline stages.

Historically ``FabricNetwork._run_invoke`` ran the whole
client→endorse→order→commit path as one monolithic method.  Each phase now
lives in its own :class:`~repro.middleware.base.Middleware` so cross-cutting
middlewares (the endorsement batcher, tracing, future admission control)
can be spliced between phases without touching the phases themselves:

    build-proposal → collect-endorsements → [batcher] → submit-to-orderer
    → await-commit

The stages communicate through an :class:`InvokeState` parked under
``ctx.tags["invoke"]`` and hold a reference to the owning ``FabricNetwork``
for topology, devices and the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.common.errors import DeadlineExceededError, PartitionError
from repro.fabric.proposal import Proposal, ProposalResponse, TransactionHandle
from repro.ledger.transaction import Transaction, TxValidationCode
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context


@dataclass
class InvokeState:
    """Mutable per-invocation state shared by the Fabric stages."""

    client_context: Any  # fabric _ClientContext (duck-typed: no import cycle)
    handle: TransactionHandle
    chaincode: str
    function: str
    args: List[str]
    payload_size_bytes: int = 0
    #: The ChannelShard the invoke runs on (duck-typed: no import cycle).
    shard: Any = None
    start: float = 0.0
    proposal: Optional[Proposal] = None
    prep_done: float = 0.0
    responses: List[ProposalResponse] = field(default_factory=list)
    endorsement_done: float = 0.0
    transaction: Optional[Transaction] = None
    assembled_at: float = 0.0


class FabricStage(Middleware):
    """Base class binding a stage to its owning FabricNetwork."""

    def __init__(self, fabric: Any) -> None:
        self.fabric = fabric

    @staticmethod
    def state(ctx: Context) -> InvokeState:
        return ctx.tags["invoke"]


class BuildProposalStage(FabricStage):
    """Client-side preparation: build, marshal and sign the proposal."""

    name = "build-proposal"

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        fabric = self.fabric
        state = self.state(ctx)
        client = state.client_context
        state.start = max(state.handle.submitted_at, fabric.engine.now)
        state.proposal = fabric._build_proposal(
            client, state.handle, state.chaincode, state.function,
            state.args, state.payload_size_bytes,
            channel_name=state.shard.channel.name,
        )
        prep = (
            client.device.sign_time()
            + client.device.serialization_time(state.proposal.size_bytes)
            + fabric.config.client_overhead_s
        )
        _, state.prep_done = client.device.charge_cpu(
            state.start, prep, label=f"prepare:{state.handle.tx_id}"
        )
        return call_next(ctx)


class CollectEndorsementsStage(FabricStage):
    """Phase 1: endorse on every peer, verify agreement, assemble the envelope.

    Short-circuits the pipeline (never calls ``call_next``) when the
    endorsement policy cannot be satisfied, completing the handle with
    ``ENDORSEMENT_POLICY_FAILURE`` exactly as the monolithic path did.
    """

    name = "collect-endorsements"

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        fabric = self.fabric
        state = self.state(ctx)
        client = state.client_context
        handle = state.handle

        responses, endorsement_done, reachable = fabric._collect_endorsements(
            client, state.proposal, state.prep_done, state.shard
        )
        state.responses = responses
        state.endorsement_done = endorsement_done
        handle.endorsed_at = endorsement_done
        handle.timings["endorsement_s"] = endorsement_done - state.start

        if not responses and reachable == 0:
            # Pure transport failure: every endorsing peer is partitioned
            # away or crashed, so no proposal was even attempted.  Raise a
            # retryable network error (never occurs on fault-free runs)
            # instead of completing the handle — retry/store-and-forward
            # middlewares upstream own the recovery decision.
            fabric.metrics.counter("endorsement_unreachable").inc()
            raise PartitionError(
                f"no endorsing peers reachable from {client.host_node!r} "
                f"for tx {handle.tx_id}"
            )

        ok_responses = [r for r in responses if r.is_ok]
        if not ok_responses:
            message = responses[0].message if responses else "no endorsing peers reachable"
            handle.response_payload = None
            handle.complete(endorsement_done, TxValidationCode.ENDORSEMENT_POLICY_FAILURE)
            fabric.metrics.counter("endorsement_failures").inc()
            fabric.events.publish(
                "endorsement_failed", {"tx_id": handle.tx_id, "message": message}
            )
            return handle

        # Fabric requires all endorsements to agree on the read/write set.
        reference = ok_responses[0].rw_set.digest()
        consistent = [r for r in ok_responses if r.rw_set.digest() == reference]

        handle.response_payload = consistent[0].payload

        # Client verifies endorsements and assembles the envelope.
        assemble = client.device.verify_time(len(consistent)) + client.device.sign_time()
        _, state.assembled_at = client.device.charge_cpu(
            endorsement_done, assemble, label=f"assemble:{handle.tx_id}"
        )

        state.transaction = Transaction(
            tx_id=handle.tx_id,
            channel=state.shard.channel.name,
            chaincode=state.chaincode,
            function=state.function,
            args=list(state.args),
            rw_set=consistent[0].rw_set,
            endorsements=[r.endorsement for r in consistent if r.endorsement],
            creator=client.identity.certificate,
            creator_signature=client.identity.sign(state.proposal.signed_bytes()),
            timestamp=state.proposal.timestamp,
            response_payload=consistent[0].payload,
            chaincode_event=consistent[0].chaincode_event,
        )
        # Nothing may change once the envelope is submitted for ordering:
        # seal it so its canonical bytes/digest are computed once and then
        # shared by the cutter, the Merkle build and every validating peer.
        state.transaction.seal()
        return call_next(ctx)


class SubmitToOrdererStage(FabricStage):
    """Phase 2: ship the assembled envelope to the ordering service.

    Honours an ``order_arrival`` tag when the endorsement batcher upstream
    coalesced this envelope into a combined transfer; otherwise the
    envelope pays its own client→orderer transfer time.
    """

    name = "submit-to-orderer"

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        fabric = self.fabric
        state = self.state(ctx)
        arrival = ctx.tags.get("order_arrival")
        if arrival is None:
            transfer = fabric.network.estimate_transfer_time(
                state.client_context.host_node,
                state.shard.orderer_node,
                state.transaction.size_bytes,
            )
            arrival = state.assembled_at + transfer
        state.handle.timings["to_orderer_s"] = arrival - state.assembled_at
        deadline_at = ctx.tags.get("deadline_at")
        if deadline_at is not None and arrival > deadline_at:
            # The envelope would reach the orderer past its budget: fail
            # now, at the deadline, instead of burning ordering/commit work
            # on a transaction the caller has already given up on.
            state.handle.complete(deadline_at, TxValidationCode.INVALID_OTHER_REASON)
            fabric.metrics.counter("deadline_exceeded").inc()
            raise DeadlineExceededError(
                f"tx {state.handle.tx_id} would reach the orderer at "
                f"t={arrival:.4f}s, past its deadline t={deadline_at:.4f}s",
                deadline_at=deadline_at,
            )
        fabric.engine.schedule_at(
            arrival,
            lambda: fabric._submit_to_orderer(state.transaction, state.handle, state.shard),
            label=f"order:{state.handle.tx_id}",
        )
        return call_next(ctx)


class AwaitCommitStage(FabricStage):
    """Register the handle so the anchor peer's commit completes it.

    The commit itself is asynchronous (the orderer cuts a block, the peers
    validate and the network completes pending handles in
    ``_complete_handles``); this stage wires the handle into that path.
    """

    name = "await-commit"

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        state = self.state(ctx)
        self.fabric.register_pending(state.client_context, state.handle)
        return call_next(ctx)
