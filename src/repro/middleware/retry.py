"""Bounded retry with exponential backoff in virtual time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Type

from repro.common.errors import (
    ConfigurationError,
    EndorsementError,
    NetworkError,
    OrderingError,
)
from repro.common.metrics import MetricsRegistry
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context

#: Failures that are plausibly transient on a real Fabric network.
DEFAULT_RETRYABLE: Tuple[Type[Exception], ...] = (
    NetworkError,
    EndorsementError,
    OrderingError,
)


@dataclass
class RetryPolicy:
    """How many attempts to make and how long to back off between them."""

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    retry_on: Tuple[Type[Exception], ...] = field(default=DEFAULT_RETRYABLE)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry policy needs at least one attempt")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise ConfigurationError("backoff must be >= 0 and multiplier >= 1")

    def delay_before(self, attempt: int) -> float:
        """Backoff before the given (2-based) retry attempt."""
        return self.backoff_s * (self.multiplier ** max(0, attempt - 2))


class RetryMiddleware(Middleware):
    """Re-runs the downstream chain on retryable errors, then gives up.

    Backoff is applied by advancing the context's virtual start time, so
    inside the discrete-event simulation a retry costs simulated seconds,
    not wall-clock sleeps.  Once attempts are exhausted the last error
    propagates unchanged (retry-gives-up propagation).
    """

    name = "retry"

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.clock = clock or (lambda: 0.0)
        self.metrics = metrics

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            ctx.attempt = attempt
            if attempt > 1:
                delay = self.policy.delay_before(attempt)
                ctx.at_time = max(ctx.at_time or 0.0, self.clock()) + delay
                ctx.timings[f"retry_backoff_{attempt}_s"] = delay
                if self.metrics is not None:
                    self.metrics.counter("retry.attempts").inc()
            try:
                return call_next(ctx)
            except self.policy.retry_on as exc:
                last_error = exc
        if self.metrics is not None:
            self.metrics.counter("retry.exhausted").inc()
        assert last_error is not None  # max_attempts >= 1 guarantees a raise above
        raise last_error
