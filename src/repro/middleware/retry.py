"""Bounded retry with exponential backoff in virtual time."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, Type

from repro.common.errors import (
    ConfigurationError,
    DeadlineExceededError,
    EndorsementError,
    NetworkError,
    OrderingError,
)
from repro.common.metrics import MetricsRegistry
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context
from repro.simulation.randomness import DeterministicRandom

#: Failures that are plausibly transient on a real Fabric network.
DEFAULT_RETRYABLE: Tuple[Type[Exception], ...] = (
    NetworkError,
    EndorsementError,
    OrderingError,
)


@dataclass
class RetryPolicy:
    """How many attempts to make and how long to back off between them."""

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    retry_on: Tuple[Type[Exception], ...] = field(default=DEFAULT_RETRYABLE)
    #: Symmetric jitter applied to every backoff delay: each delay is
    #: scaled by a factor drawn uniformly from ``[1 - j, 1 + j]``.  0
    #: keeps the historical deterministic schedule (and draws no RNG).
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("retry policy needs at least one attempt")
        if self.backoff_s < 0 or self.multiplier < 1.0:
            raise ConfigurationError("backoff must be >= 0 and multiplier >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")

    def delay_before(
        self, attempt: int, rng: Optional[DeterministicRandom] = None
    ) -> float:
        """Backoff before the given (2-based) retry attempt."""
        delay = self.backoff_s * (self.multiplier ** max(0, attempt - 2))
        if self.jitter_fraction > 0.0 and rng is not None:
            # Decorrelates retry storms from colocated clients while
            # staying byte-reproducible through the forked stream.
            delay *= 1.0 + self.jitter_fraction * (rng.random() * 2.0 - 1.0)
        return delay


class RetryMiddleware(Middleware):
    """Re-runs the downstream chain on retryable errors, then gives up.

    Backoff is applied by advancing the context's virtual start time, so
    inside the discrete-event simulation a retry costs simulated seconds,
    not wall-clock sleeps.  Once attempts are exhausted the last error
    propagates unchanged (retry-gives-up propagation).

    When the context carries a deadline budget (``ctx.tags["deadline_at"]``,
    set by the deadline middleware upstream), a backoff that would restart
    the attempt past the budget is abandoned immediately: the retry raises
    :class:`DeadlineExceededError` chained from the last failure rather
    than burning attempts the caller will never wait for.
    """

    name = "retry"

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[DeterministicRandom] = None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.clock = clock or (lambda: 0.0)
        self.metrics = metrics
        self.rng = rng

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        last_error: Optional[Exception] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            ctx.attempt = attempt
            if attempt > 1:
                delay = self.policy.delay_before(attempt, rng=self.rng)
                restart_at = max(ctx.at_time or 0.0, self.clock()) + delay
                deadline_at = ctx.tags.get("deadline_at")
                if deadline_at is not None and restart_at > deadline_at:
                    if self.metrics is not None:
                        self.metrics.counter("retry.deadline_abandoned").inc()
                    assert last_error is not None
                    raise DeadlineExceededError(
                        f"retry attempt {attempt} would start at "
                        f"t={restart_at:.4f}s, past the deadline "
                        f"t={deadline_at:.4f}s",
                        deadline_at=deadline_at,
                    ) from last_error
                ctx.at_time = restart_at
                ctx.timings[f"retry_backoff_{attempt}_s"] = delay
                if self.metrics is not None:
                    self.metrics.counter("retry.attempts").inc()
            try:
                return call_next(ctx)
            except self.policy.retry_on as exc:
                last_error = exc
        if self.metrics is not None:
            self.metrics.counter("retry.exhausted").inc()
        assert last_error is not None  # max_attempts >= 1 guarantees a raise above
        raise last_error
