"""Request-id assignment and trace events for pipeline operations."""

from __future__ import annotations

from typing import Any, Optional

from repro.common.events import EventBus
from repro.common.ids import DeterministicIdGenerator
from repro.middleware.base import Handler, Middleware
from repro.middleware.context import Context


class RequestIdMiddleware(Middleware):
    """Assigns a deterministic request id and publishes trace events.

    Every operation entering the pipeline gets a stable ``req-N-hash``
    identifier (retries keep the id of the original request so a trace
    groups all attempts).  When an :class:`EventBus` is supplied, a
    ``pipeline.request`` event is published on entry and a
    ``pipeline.response`` / ``pipeline.error`` event on exit, carrying the
    request id — the hook a tracing backend or test can observe the whole
    request path through.
    """

    name = "request-id"

    def __init__(
        self,
        id_generator: Optional[DeterministicIdGenerator] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self._ids = id_generator or DeterministicIdGenerator("req")
        self.events = events

    def handle(self, ctx: Context, call_next: Handler) -> Any:
        if not ctx.request_id:
            ctx.request_id = self._ids.next()
        if self.events is not None:
            self.events.publish(
                "pipeline.request",
                {
                    "request_id": ctx.request_id,
                    "operation": ctx.operation,
                    "function": ctx.function,
                    "attempt": ctx.attempt,
                },
            )
        try:
            result = call_next(ctx)
        except Exception as exc:
            if self.events is not None:
                self.events.publish(
                    "pipeline.error",
                    {
                        "request_id": ctx.request_id,
                        "operation": ctx.operation,
                        "error": type(exc).__name__,
                    },
                )
            raise
        if self.events is not None:
            self.events.publish(
                "pipeline.response",
                {
                    "request_id": ctx.request_id,
                    "operation": ctx.operation,
                    "cache_hit": ctx.cache_hit,
                },
            )
        return result
