"""Continuous queries: standing selectors fed by commit events.

A :class:`ContinuousQueryRegistry` subscribes once to the network's
aggregate commit stream and keeps a registry of standing per-tenant
selectors.  Every *validated* committed write is matched against every
active query and fanned out to the subscriber's callback (or buffered on
the handle when no callback is given) — the realtime push counterpart of
the poll-style rich query, fed by exactly the commit-event topics the
read-cache invalidation already consumes.

Exactly-once delivery falls out of the network's event topology: a block
is published either per-block (``block_delivered``) or once inside a
barrier-window batch (``commit_batch``) — never both — and the aggregate
bus carries every shard's stream, so multi-shard routing needs no extra
work here.  Invalidated transactions (MVCC conflicts and friends) are
filtered out by the per-block validation codes, so subscribers see only
records that actually reached the world state.
"""

from __future__ import annotations

import json
from contextlib import ExitStack
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, Callable, Dict, List, Optional, Type

from repro.common.errors import ValidationError
from repro.common.events import EventBus
from repro.ledger.transaction import TxValidationCode
from repro.query.selectors import (
    RESERVED_SELECTOR_FIELDS,
    Predicate,
    compile_selector,
    matches,
)

#: Commit-stream topics (the same ones ``middleware.cache`` invalidates on).
BLOCK_DELIVERED_TOPIC = "block_delivered"
COMMIT_BATCH_TOPIC = "commit_batch"

#: ``callback(event)`` where ``event`` is the delivery dict below.
DeliveryCallback = Callable[[Dict[str, Any]], None]


@dataclass
class ContinuousQuery:
    """One standing selector registration (cancel via :meth:`cancel`).

    Deliveries are dicts ``{"key", "record", "block_number", "shard",
    "tx_id"}`` with ``key`` tenant-relative for tenant-scoped queries.
    Without a callback they accumulate on the handle; :meth:`pop_events`
    drains them (the pull-style cursor shape).
    """

    query_id: str
    selector: Dict[str, Any]
    tenant: Optional[str]
    callback: Optional[DeliveryCallback]
    registry: "ContinuousQueryRegistry" = field(repr=False)
    prefix: str = ""
    active: bool = True
    delivered_count: int = 0
    _compiled: List[Predicate] = field(default_factory=list, repr=False)
    _pending: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    def cancel(self) -> None:
        """Deregister this standing query (idempotent)."""
        if self.active:
            self.active = False
            self.registry._unregister(self)

    def pop_events(self) -> List[Dict[str, Any]]:
        """Drain deliveries buffered since the last call (callback-less mode)."""
        drained, self._pending = self._pending, []
        return drained

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def __enter__(self) -> "ContinuousQuery":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.cancel()


class ContinuousQueryRegistry:
    """Fan committed records out to matching standing selectors.

    Attach to the network's *aggregate* event bus (``fabric.events``): it
    carries each ordered block exactly once across all shards, via either
    the per-block or the window-batched topic depending on the delivery
    mode — the registry subscribes to both, and the network guarantees
    they are mutually exclusive per block.
    """

    def __init__(self, events: EventBus) -> None:
        self._queries: Dict[str, ContinuousQuery] = {}
        self._counter = 0
        #: Bus subscriptions are context managers; the stack guarantees
        #: both detach on close even if one cancel raises.
        self._subscriptions = ExitStack()
        self._subscriptions.enter_context(
            events.subscribe(BLOCK_DELIVERED_TOPIC, self._on_block_delivered)
        )
        self._subscriptions.enter_context(
            events.subscribe(COMMIT_BATCH_TOPIC, self._on_commit_batch)
        )

    # ----------------------------------------------------------- lifecycle
    def register(
        self,
        selector: Dict[str, Any],
        callback: Optional[DeliveryCallback] = None,
        tenant: Optional[str] = None,
    ) -> ContinuousQuery:
        """Register a standing ``selector``; returns the cancellable handle.

        ``selector`` uses the rich-query syntax (including ``_prefix``
        scoping, tenant-relative for tenant-scoped registrations); the
        pagination/explain reserved fields are meaningless for a push
        stream and rejected.  A tenant-scoped query only observes commits
        under ``tenant/<name>/`` and receives tenant-relative keys.
        """
        if not isinstance(selector, dict) or not selector:
            raise ValidationError("continuous query selector must be a non-empty object")
        body = dict(selector)
        prefix = body.pop("_prefix", "")
        if not isinstance(prefix, str):
            raise ValidationError("_prefix must be a string")
        unsupported = RESERVED_SELECTOR_FIELDS.intersection(body)
        if unsupported:
            raise ValidationError(
                f"continuous queries do not support {sorted(unsupported)}"
            )
        if not body and not prefix:
            raise ValidationError("continuous query selector must be a non-empty object")
        self._counter += 1
        query = ContinuousQuery(
            query_id=f"cq-{self._counter}",
            selector=dict(selector),
            tenant=tenant,
            callback=callback,
            registry=self,
            prefix=prefix,
            _compiled=compile_selector(body),
        )
        self._queries[query.query_id] = query
        return query

    def _unregister(self, query: ContinuousQuery) -> None:
        self._queries.pop(query.query_id, None)

    def close(self) -> None:
        """Cancel every standing query and detach from the commit stream."""
        self._subscriptions.close()
        for query in list(self._queries.values()):
            query.cancel()

    @property
    def active_count(self) -> int:
        return len(self._queries)

    # ------------------------------------------------------------- delivery
    def _on_commit_batch(self, topic: str, entries: Any) -> None:
        for entry in entries if isinstance(entries, list) else []:
            self._on_block_delivered(topic, entry)

    def _on_block_delivered(self, _topic: str, payload: Any) -> None:
        if not self._queries or not isinstance(payload, dict):
            return
        block = payload.get("block")
        commits = payload.get("commits") or {}
        if block is None or not commits:
            return
        shard = payload.get("shard", 0)
        # Every peer reaches the same verdict on the same sealed block;
        # any commit result carries the authoritative validation codes.
        reference = next(iter(commits.values()))
        for tx, code in zip(block.transactions, reference.validation_codes):
            if code is not TxValidationCode.VALID:
                continue
            for write in tx.rw_set.writes:
                if write.is_delete or write.value is None:
                    continue
                self._dispatch(
                    write.key, write.value, block.number, shard, tx.tx_id
                )

    def _dispatch(
        self, key: str, value: str, block_number: int, shard: int, tx_id: str
    ) -> None:
        document: Optional[Dict[str, Any]] = None
        for query in list(self._queries.values()):
            if not query.active:
                continue
            scoped_key = key
            if query.tenant is not None:
                namespace = f"tenant/{query.tenant}/"
                if not key.startswith(namespace):
                    continue
                scoped_key = key[len(namespace):]
            if query.prefix and not scoped_key.startswith(query.prefix):
                continue
            if document is None:
                document = _parse_document(value)
                if document is None:
                    return
            if not matches(document, query._compiled):
                continue
            event = {
                "key": scoped_key,
                "record": document,
                "block_number": block_number,
                "shard": shard,
                "tx_id": tx_id,
            }
            query.delivered_count += 1
            if query.callback is not None:
                query.callback(event)
            else:
                query._pending.append(event)


def _parse_document(value: str) -> Optional[Dict[str, Any]]:
    try:
        document = json.loads(value)
    except (TypeError, ValueError):
        return None
    return document if isinstance(document, dict) else None
