"""Read-side query subsystem: secondary indexes, planner, continuous queries.

Three layers over the ledger's committed state:

* :mod:`repro.query.indexes` — field→value→keys secondary indexes,
  maintained transactionally by :class:`~repro.ledger.world_state.WorldState`
  on every committed put/delete.
* :mod:`repro.query.planner` — a cost-aware planner that picks
  index-intersection vs prefix-scope vs full scan for a multi-field
  selector and returns an explainable :class:`~repro.query.planner.QueryPlan`.
* :mod:`repro.query.continuous` — standing per-tenant selectors fed by the
  same commit-event topics the read-cache invalidation consumes, fanning
  matching committed records out to subscriber callbacks/queues.

Selector compilation (shared by the scan path, the planner's residual
filter and continuous queries) lives in :mod:`repro.query.selectors`.
"""

from repro.query.continuous import ContinuousQuery, ContinuousQueryRegistry
from repro.query.indexes import FieldValueIndex
from repro.query.planner import QueryPlan, build_plan
from repro.query.selectors import (
    RESERVED_SELECTOR_FIELDS,
    SELECTOR_FIELD_DEFAULTS,
    compile_selector,
    split_selector,
)

__all__ = [
    "ContinuousQuery",
    "ContinuousQueryRegistry",
    "FieldValueIndex",
    "QueryPlan",
    "RESERVED_SELECTOR_FIELDS",
    "SELECTOR_FIELD_DEFAULTS",
    "build_plan",
    "compile_selector",
    "split_selector",
]
