"""Field-value secondary indexes over committed record documents.

A :class:`FieldValueIndex` maintains posting lists ``field → value →
{keys}`` over the JSON record documents stored in the world state, plus a
reverse ``key → terms`` map so an overwrite or delete cleans its old
postings in O(terms) — the tombstone handling the sorted-key index gets
from its lazy dead set, done eagerly here because posting sets are cheap
to mutate in place.

The index is attached to a :class:`~repro.ledger.world_state.WorldState`
via ``attach_secondary_index`` and from then on is updated
*transactionally* with every committed put/delete: there is no window in
which a committed record is unreachable through its postings.

Term extraction mirrors the selector semantics in
:mod:`repro.query.selectors` exactly: known scalar record fields are
indexed with their ``from_json`` defaults (a document missing ``creator``
is posted under ``""``), and the ``metadata.*`` wildcard posts every
scalar entry of the custom metadata map under ``metadata.<key>``.
Unhashable values (lists, dicts) are never posted — a selector equality
on them is not index-servable and stays on the residual scan path.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.errors import ValidationError
from repro.query.selectors import SELECTOR_FIELD_DEFAULTS

#: Configuring this pseudo-field indexes every scalar ``metadata.<key>``.
METADATA_WILDCARD = "metadata.*"

#: Exact record fields that may be indexed (scalar-valued per the record
#: schema; ``dependencies``/``metadata`` are containers and excluded).
INDEXABLE_RECORD_FIELDS = frozenset(
    field
    for field, default in SELECTOR_FIELD_DEFAULTS.items()
    if not isinstance(default, (list, dict))
)

#: The field set used when a configuration just says "indexes on".
DEFAULT_INDEX_FIELDS: Tuple[str, ...] = ("checksum", "creator", METADATA_WILDCARD)

_Term = Tuple[str, Any]


def validate_index_fields(fields: Iterable[str]) -> Tuple[str, ...]:
    """Validate and normalize a configured index field list.

    Accepted entries: the scalar record fields (``checksum``, ``creator``,
    ``organization``, …), specific ``metadata.<key>`` paths, or the
    ``metadata.*`` wildcard.  Duplicates collapse, order is preserved.
    """
    normalized: List[str] = []
    for field in fields:
        if not isinstance(field, str) or not field:
            raise ValidationError(f"index field must be a non-empty string, got {field!r}")
        if field == METADATA_WILDCARD:
            pass
        elif field.startswith("metadata."):
            if not field[len("metadata."):]:
                raise ValidationError("metadata. index field needs a key (or use metadata.*)")
        elif field not in INDEXABLE_RECORD_FIELDS:
            raise ValidationError(
                f"cannot index field {field!r}; expected one of "
                f"{sorted(INDEXABLE_RECORD_FIELDS)}, metadata.<key> or {METADATA_WILDCARD}"
            )
        if field not in normalized:
            normalized.append(field)
    if not normalized:
        raise ValidationError("index field list cannot be empty")
    return tuple(normalized)


class FieldValueIndex:
    """Posting-list index satisfying the ledger's ``SecondaryIndex`` protocol."""

    def __init__(self, fields: Iterable[str]) -> None:
        self.fields = validate_index_fields(fields)
        self._wildcard = METADATA_WILDCARD in self.fields
        self._exact = frozenset(f for f in self.fields if f != METADATA_WILDCARD)
        #: field → value → set of keys holding that value.
        self._postings: Dict[str, Dict[Any, Set[str]]] = {}
        #: key → the terms it is currently posted under (overwrite/delete cleanup).
        self._key_terms: Dict[str, Tuple[_Term, ...]] = {}

    # ------------------------------------------------------------- coverage
    def covers(self, field: str) -> bool:
        """Whether equality selectors on ``field`` can be served."""
        if field in self._exact:
            return True
        return (
            self._wildcard
            and field.startswith("metadata.")
            and bool(field[len("metadata."):])
        )

    # ---------------------------------------------------------- maintenance
    def update(self, key: str, value: str) -> None:
        """(Re-)index ``key`` after a committed put of ``value``."""
        old_terms = self._key_terms.get(key)
        terms = self._extract_terms(value)
        if old_terms == terms:
            return
        if old_terms:
            self._drop_terms(key, old_terms)
        for field, token in terms:
            self._postings.setdefault(field, {}).setdefault(token, set()).add(key)
        if terms:
            self._key_terms[key] = terms
        else:
            self._key_terms.pop(key, None)

    def remove(self, key: str) -> None:
        """Drop every posting for ``key`` after a committed delete."""
        terms = self._key_terms.pop(key, None)
        if terms:
            self._drop_terms(key, terms)

    def _drop_terms(self, key: str, terms: Tuple[_Term, ...]) -> None:
        for field, token in terms:
            by_value = self._postings.get(field)
            if by_value is None:
                continue
            keys = by_value.get(token)
            if keys is None:
                continue
            keys.discard(key)
            if not keys:
                del by_value[token]
                if not by_value:
                    del self._postings[field]

    def _extract_terms(self, value: str) -> Tuple[_Term, ...]:
        try:
            document = json.loads(value)
        except (TypeError, ValueError):
            return ()
        if not isinstance(document, dict):
            return ()
        terms: List[_Term] = []
        for field in self._exact:
            if field.startswith("metadata."):
                token = (document.get("metadata") or {}).get(field[len("metadata."):])
            else:
                token = document.get(field, SELECTOR_FIELD_DEFAULTS.get(field))
            if _hashable_scalar(token):
                terms.append((field, token))
        if self._wildcard:
            metadata = document.get("metadata")
            if isinstance(metadata, dict):
                for meta_key, token in metadata.items():
                    field = f"metadata.{meta_key}"
                    if field in self._exact:
                        continue  # already posted by the exact entry above
                    if _hashable_scalar(token):
                        terms.append((field, token))
        return tuple(terms)

    # ---------------------------------------------------------------- reads
    def lookup(self, field: str, expected: Any) -> Optional[Set[str]]:
        """Keys posted under ``(field, expected)``; ``None`` if not covered.

        The returned set is live — callers must not mutate it.
        """
        if not self.covers(field):
            return None
        return self._postings.get(field, {}).get(expected, _EMPTY_KEYS)

    def cardinality(self, field: str, expected: Any) -> int:
        """Posting-list size for ``(field, expected)`` (0 when not covered)."""
        keys = self.lookup(field, expected)
        return len(keys) if keys is not None else 0

    # -------------------------------------------------------- introspection
    @property
    def indexed_key_count(self) -> int:
        """Keys currently holding at least one posting."""
        return len(self._key_terms)

    def posting_sizes(self, field: str) -> Dict[Any, int]:
        """value → posting size for one field (bench/debug tables)."""
        return {
            token: len(keys)
            for token, keys in self._postings.get(field, {}).items()
        }


#: Shared immutable empty result for covered-but-absent lookups.
_EMPTY_KEYS: Set[str] = set()


def _hashable_scalar(token: Any) -> bool:
    return token is not None and not isinstance(token, (list, dict))
