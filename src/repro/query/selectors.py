"""Selector compilation and classification for rich queries.

A selector is a flat JSON object; a record document matches when every
selector field equals the corresponding record field (``metadata.*``
selectors match inside the custom metadata map, ``dependencies`` with a
string expectation is a membership test).  This mirrors the rich queries
HLF offers when the state database supports them.

The compiled form — one predicate callable per field — is shared by the
full-scan match loop in the chaincode, the planner's residual filter and
the continuous-query registry, so all three surfaces agree byte-for-byte
on what "matches" means.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

#: Selector fields with reserved (non-matching) meaning.  ``_prefix``
#: scopes the scan, ``_limit``/``_bookmark`` paginate, ``_explain`` asks
#: for the chosen :class:`~repro.query.planner.QueryPlan` in the response.
RESERVED_SELECTOR_FIELDS = frozenset({"_prefix", "_limit", "_bookmark", "_explain"})

#: Record fields a bare selector field may match, with the same defaults
#: ``ProvenanceRecord.from_json`` fills in for missing document keys —
#: matching on the parsed dict stays behaviourally identical to matching
#: on the reconstructed dataclass.
SELECTOR_FIELD_DEFAULTS: Dict[str, Any] = {
    "key": "", "checksum": "", "location": "", "creator": "",
    "organization": "", "certificate_fingerprint": "",
    "dependencies": [], "metadata": {}, "timestamp": 0.0,
    "size_bytes": 0,
}

Predicate = Callable[[Dict[str, Any]], bool]


def compile_selector(selector: Dict[str, Any]) -> List[Predicate]:
    """Turn a selector into per-document predicate callables."""
    checks: List[Predicate] = []
    for field, expected in selector.items():
        if field.startswith("metadata."):
            meta_key = field[len("metadata."):]
            checks.append(
                lambda doc, k=meta_key, e=expected:
                    (doc.get("metadata") or {}).get(k) == e
            )
        elif field == "dependencies":
            if isinstance(expected, str):
                checks.append(
                    lambda doc, e=expected:
                        e in (doc.get("dependencies") or [])
                )
            else:
                checks.append(
                    lambda doc, e=expected:
                        (doc.get("dependencies") or []) == e
                )
        elif field in SELECTOR_FIELD_DEFAULTS:
            default = SELECTOR_FIELD_DEFAULTS[field]
            checks.append(
                lambda doc, f=field, d=default, e=expected:
                    doc.get(f, d) == e
            )
        else:
            # Unknown field: only an explicit None can ever match
            # (mirrors the dataclass getattr(..., None) behaviour).
            checks.append(lambda doc, e=expected: e is None)
    return checks


def matches(document: Dict[str, Any], compiled: List[Predicate]) -> bool:
    """Whether ``document`` satisfies every compiled predicate."""
    return all(check(document) for check in compiled)


def _index_servable(field: str, expected: Any) -> bool:
    """Whether an equality on ``(field, expected)`` can be answered by a
    posting-list lookup with semantics identical to the scan predicate.

    Scalar equalities only: ``None`` would have to match documents where
    the field is *absent* (postings never hold absent fields), list/dict
    expectations are unhashable, and ``dependencies`` with a string is a
    membership test, not an equality.
    """
    if field == "dependencies" or field == "metadata":
        return False
    if expected is None or isinstance(expected, (list, dict)):
        return False
    if field.startswith("metadata."):
        return bool(field[len("metadata."):])
    return field in SELECTOR_FIELD_DEFAULTS


def split_selector(
    selector: Dict[str, Any], covers: Callable[[str], bool]
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a (reserved-field-free) selector for the planner.

    Returns ``(indexed, residual)``: ``indexed`` holds the equality fields
    a secondary index reported it ``covers`` and whose semantics a posting
    lookup reproduces exactly; everything else stays in ``residual`` and
    is evaluated per-document by the compiled predicates.
    """
    indexed: Dict[str, Any] = {}
    residual: Dict[str, Any] = {}
    for field, expected in selector.items():
        if _index_servable(field, expected) and covers(field):
            indexed[field] = expected
        else:
            residual[field] = expected
    return indexed, residual
