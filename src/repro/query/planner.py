"""Cost-aware access-path planning for rich selector queries.

Given a multi-field selector, the planner chooses between three access
paths using index cardinality estimates:

``index-intersection``
    Intersect the posting lists of the selector's index-served equality
    fields (smallest first) and fetch only the surviving keys.
``prefix``
    Scope the scan to the ``_prefix`` run of the sorted key index.
``scan``
    Walk the whole key space.

Whatever the path, candidates are visited in key order and the residual
predicates are applied per document, so all three paths return the same
rows in the same order — the property the oracle equivalence tests pin.

The plan is explainable: ``QueryPlan.explain()`` is a plain dict the
chaincode embeds in the response when the reserved ``_explain`` selector
field asks for it, so tests and bench tables can assert the chosen path
instead of inferring it from timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.query.indexes import FieldValueIndex
from repro.query.selectors import split_selector

#: Access-path names (pinned by tests; treat as API).
PATH_INDEX = "index-intersection"
PATH_PREFIX = "prefix"
PATH_SCAN = "scan"


@dataclass(frozen=True)
class QueryPlan:
    """The chosen access path for one selector query."""

    access_path: str
    #: Index-served equality fields, in posting-size order (smallest first).
    indexed_fields: Tuple[str, ...] = ()
    #: Selector fields evaluated per document after candidate fetch.
    residual_fields: Tuple[str, ...] = ()
    #: Candidate keys the chosen path expects to visit (cost estimate).
    estimated_candidates: int = 0
    #: Candidate keys a plain scan of the selector scope would visit.
    scan_candidates: int = 0
    prefix: str = ""
    limit: int = 0
    bookmark: str = ""
    #: Per-field posting sizes backing the estimate (explain output).
    cardinalities: Dict[str, int] = field(default_factory=dict)

    def explain(self) -> Dict[str, Any]:
        """JSON-ready description of the plan (embedded on ``_explain``)."""
        plan: Dict[str, Any] = {
            "access_path": self.access_path,
            "estimated_candidates": self.estimated_candidates,
            "scan_candidates": self.scan_candidates,
            "residual_fields": sorted(self.residual_fields),
        }
        if self.indexed_fields:
            plan["indexed_fields"] = list(self.indexed_fields)
            plan["cardinalities"] = {
                name: self.cardinalities[name] for name in sorted(self.cardinalities)
            }
        if self.prefix:
            plan["prefix"] = self.prefix
        if self.limit:
            plan["limit"] = self.limit
        if self.bookmark:
            plan["bookmark"] = self.bookmark
        return plan


def build_plan(
    selector: Dict[str, Any],
    *,
    index: Optional[FieldValueIndex],
    total_keys: int,
    prefix: str = "",
    prefix_keys: Optional[int] = None,
    limit: int = 0,
    bookmark: str = "",
) -> QueryPlan:
    """Choose the cheapest access path for ``selector``.

    ``selector`` must already have its reserved fields stripped.
    ``prefix_keys`` is the scope size of the ``_prefix`` run (estimated by
    the world state's bucket index); ``total_keys`` the full key count.
    The cost model is simply "visit the fewest candidate keys": the
    smallest posting list of the index-served equalities against the
    scan scope — an upper bound on the intersection, which only shrinks.
    """
    scan_scope = prefix_keys if (prefix and prefix_keys is not None) else total_keys
    fallback_path = PATH_PREFIX if prefix else PATH_SCAN

    indexed: Dict[str, Any] = {}
    if index is not None:
        indexed, residual = split_selector(selector, index.covers)
    else:
        residual = dict(selector)

    if not indexed:
        return QueryPlan(
            access_path=fallback_path,
            residual_fields=tuple(residual),
            estimated_candidates=scan_scope,
            scan_candidates=scan_scope,
            prefix=prefix,
            limit=limit,
            bookmark=bookmark,
        )

    cardinalities = {
        name: index.cardinality(name, expected) for name, expected in indexed.items()
    }
    ordered = tuple(sorted(indexed, key=lambda name: (cardinalities[name], name)))
    smallest = cardinalities[ordered[0]]

    if smallest >= scan_scope:
        # The tightest posting list is no better than just scanning the
        # scope; fold the indexed equalities back into the residual check.
        merged_residual = dict(residual)
        merged_residual.update(indexed)
        return QueryPlan(
            access_path=fallback_path,
            residual_fields=tuple(merged_residual),
            estimated_candidates=scan_scope,
            scan_candidates=scan_scope,
            prefix=prefix,
            limit=limit,
            bookmark=bookmark,
            cardinalities=cardinalities,
        )

    return QueryPlan(
        access_path=PATH_INDEX,
        indexed_fields=ordered,
        residual_fields=tuple(residual),
        estimated_candidates=smallest,
        scan_candidates=scan_scope,
        prefix=prefix,
        limit=limit,
        bookmark=bookmark,
        cardinalities=cardinalities,
    )


def intersect_keys(
    index: FieldValueIndex,
    plan: QueryPlan,
    selector: Dict[str, Any],
) -> List[str]:
    """Sorted candidate keys for an ``index-intersection`` plan.

    Intersects posting lists smallest-first (the plan ordered them), then
    applies the prefix scope and bookmark cut, returning keys in the same
    order the scan paths visit them.
    """
    survivors: Optional[Set[str]] = None
    for name in plan.indexed_fields:
        posting = index.lookup(name, selector[name])
        if not posting:
            return []
        if survivors is None:
            survivors = set(posting)
        else:
            survivors &= posting
            if not survivors:
                return []
    assert survivors is not None
    keys = sorted(survivors)
    if plan.prefix:
        keys = [key for key in keys if key.startswith(plan.prefix)]
    if plan.bookmark:
        keys = [key for key in keys if key > plan.bookmark]
    return keys
