"""Shared pipeline wiring for the baseline provenance stores.

Both baselines (central DB, PoW chain) expose the same three operations
— ``store_record`` / ``get`` / ``history`` — and route them through a
:class:`~repro.middleware.base.TransactionPipeline` the same way.  This
mixin holds that wiring once: subclasses implement ``_store_record_impl``,
``_get_impl`` and ``_history_impl`` and call :meth:`_init_pipeline` from
their constructor.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.common.errors import NotFoundError
from repro.common.metrics import MetricsRegistry
from repro.middleware.base import TransactionPipeline
from repro.middleware.cache import ReadCacheMiddleware
from repro.middleware.config import PipelineConfig, build_client_pipeline
from repro.middleware.context import Context, OperationKind


class PipelinedStoreMixin:
    """Routes a baseline's operations through a transaction pipeline."""

    #: Pipeline-context namespace; subclasses override (e.g. ``"centraldb"``).
    chaincode_label = "baseline"

    def as_store(self):
        """This baseline as a unified :class:`repro.api.ProvenanceStore`."""
        adapter = getattr(self, "_store_adapter", None)
        if adapter is None:
            from repro.api.adapters import adapt_store

            adapter = adapt_store(self)
            self._store_adapter = adapter
        return adapter

    def _init_pipeline(
        self,
        pipeline_config: Optional[PipelineConfig],
        metrics: Optional[MetricsRegistry],
        namespace: str,
    ) -> None:
        self.metrics = metrics or MetricsRegistry(namespace)
        self.pipeline_config = pipeline_config or PipelineConfig()
        self.pipeline: TransactionPipeline = build_client_pipeline(
            self.pipeline_config, self._dispatch, metrics=self.metrics
        )

    # ------------------------------------------------------------- dispatch
    def _dispatch(self, ctx: Context) -> Any:
        """Terminal pipeline handler routing on the operation name."""
        if ctx.operation == "store_record":
            return self._store_record_impl(**ctx.tags["store"])
        if ctx.operation == "get":
            return self._get_impl(ctx.args[0])
        if ctx.operation == "history":
            return self._history_impl(ctx.args[0])
        raise NotFoundError(
            f"unknown {self.chaincode_label} operation {ctx.operation!r}"
        )

    def _execute(
        self, operation: str, kind: OperationKind, args: List[str], **store_kwargs
    ) -> Any:
        ctx = Context(
            operation=operation,
            kind=kind,
            chaincode=self.chaincode_label,
            function=operation,
            args=args,
        )
        if store_kwargs:
            ctx.tags["store"] = store_kwargs
        return self.pipeline.execute(ctx)

    # --------------------------------------------------------- invalidation
    def _invalidate_cached_reads(self, key: str) -> None:
        """Purge cached reads for ``key`` after a successful store."""
        cache = self.pipeline.find(ReadCacheMiddleware)
        if cache is not None:
            cache.invalidate_key(key)

    # ------------------------------------------------- subclass obligations
    def _store_record_impl(self, **kwargs: Any) -> Any:
        raise NotImplementedError

    def _get_impl(self, key: str) -> Any:
        raise NotImplementedError

    def _history_impl(self, key: str) -> Any:
        raise NotImplementedError
