"""ProvChain-style Proof-of-Work provenance baseline.

Every provenance record becomes a block mined at a fixed difficulty.  The
mining time is sampled from the PoW engine given the device's hash rate
and the CPU is pegged for the whole duration, so the baseline is both
slower and dramatically more energy-hungry than HyperProv on the same
hardware — the comparison the paper's related-work section appeals to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.pipeline_support import PipelinedStoreMixin
from repro.chaincode.records import ProvenanceRecord
from repro.common.deprecation import warn_deprecated
from repro.common.errors import NotFoundError, ValidationError
from repro.common.hashing import HashChain, checksum_of
from repro.common.metrics import MetricsRegistry
from repro.consensus.pow import ProofOfWorkEngine
from repro.devices.model import DeviceModel
from repro.middleware.config import PipelineConfig
from repro.middleware.context import OperationKind
from repro.simulation.randomness import DeterministicRandom


@dataclass
class PowChainEntry:
    """One mined provenance block."""

    index: int
    record: ProvenanceRecord
    chain_hash: str
    mined_in_s: float
    recorded_at: float
    nonce: int = 0


@dataclass
class PowStoreResult:
    """Client-visible outcome of storing one record on the PoW chain."""

    entry: PowChainEntry
    latency_s: float


class PowProvenanceChain(PipelinedStoreMixin):
    """A single-miner Proof-of-Work provenance ledger."""

    chaincode_label = "provchain"

    def __init__(
        self,
        miner_device: DeviceModel,
        difficulty_bits: int = 20,
        rng: Optional[DeterministicRandom] = None,
        pipeline_config: Optional[PipelineConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.miner_device = miner_device
        self.engine = ProofOfWorkEngine(
            difficulty_bits=difficulty_bits, rng=rng or DeterministicRandom(555)
        )
        self._chain = HashChain()
        self._entries: List[PowChainEntry] = []
        self._latest_by_key: Dict[str, int] = {}
        self._init_pipeline(pipeline_config, metrics, "baseline.provchain")

    # ------------------------------------------------------------------ write
    def store_record(self, record: ProvenanceRecord, at_time: float = 0.0) -> PowStoreResult:
        """Mine a block anchoring ``record``; the miner CPU is busy throughout.

        .. deprecated:: shim over ``ProvenanceStore.submit`` (see ``as_store``).
        """
        warn_deprecated("PowProvenanceChain.store_record", "ProvenanceStore.submit")
        return self._execute(
            "store_record", OperationKind.WRITE, [record.key],
            record=record, at_time=at_time,
        )

    def _store_record_impl(self, record: ProvenanceRecord, at_time: float = 0.0) -> PowStoreResult:
        record.validate()
        # All cores search in parallel, so the wall-clock mining time shrinks
        # by the core count but the whole CPU is pegged for its duration —
        # exactly the energy profile that makes PoW unsuitable at the edge.
        cores = self.miner_device.profile.cores
        hash_rate = self.miner_device.profile.hash_rate_bytes_per_s / 64.0 * cores
        mining_time, _full_util = self.engine.sample_mining_time(hash_rate)
        end = at_time
        for _core in range(cores):
            _, core_end = self.miner_device.charge_cpu(at_time, mining_time, label="pow-mine")
            end = max(end, core_end)
        chain_hash = self._chain.extend(record.to_json())
        entry = PowChainEntry(
            index=len(self._entries),
            record=record,
            chain_hash=chain_hash,
            mined_in_s=mining_time,
            recorded_at=end,
        )
        self._entries.append(entry)
        self._latest_by_key[record.key] = entry.index
        self._invalidate_cached_reads(record.key)
        return PowStoreResult(entry=entry, latency_s=end - at_time)

    def store_data(
        self, key: str, data: bytes, creator: str = "miner", organization: str = "pow-org",
        at_time: float = 0.0,
    ) -> PowStoreResult:
        """Convenience wrapper mirroring HyperProv's ``store_data`` shape.

        .. deprecated:: shim over ``ProvenanceStore.submit`` (see ``as_store``).
        """
        warn_deprecated("PowProvenanceChain.store_data", "ProvenanceStore.submit")
        record = ProvenanceRecord(
            key=key,
            checksum=checksum_of(data),
            location=f"pow://{key}",
            creator=creator,
            organization=organization,
            certificate_fingerprint="",
            size_bytes=len(data),
            timestamp=at_time,
        )
        return self._execute(
            "store_record", OperationKind.WRITE, [record.key],
            record=record, at_time=at_time,
        )

    # ------------------------------------------------------------------- read
    def get(self, key: str) -> PowChainEntry:
        """Latest entry for ``key``.

        .. deprecated:: shim over ``ProvenanceStore.get`` (see ``as_store``).
        """
        warn_deprecated("PowProvenanceChain.get", "ProvenanceStore.get")
        return self._execute("get", OperationKind.READ, [key])

    def _get_impl(self, key: str) -> PowChainEntry:
        index = self._latest_by_key.get(key)
        if index is None:
            raise NotFoundError(f"key {key!r} not recorded on the PoW chain")
        return self._entries[index]

    def history(self, key: str) -> List[PowChainEntry]:
        """Every entry for ``key``, oldest first.

        .. deprecated:: shim over ``ProvenanceStore.history`` (see ``as_store``).
        """
        warn_deprecated("PowProvenanceChain.history", "ProvenanceStore.history")
        return self._execute("history", OperationKind.READ, [key])

    def _history_impl(self, key: str) -> List[PowChainEntry]:
        return [entry for entry in self._entries if entry.record.key == key]

    @property
    def length(self) -> int:
        return len(self._entries)

    # -------------------------------------------------------------- integrity
    def verify_chain(self) -> bool:
        """Re-play the hash chain over all recorded entries."""
        return self._chain.verify(entry.record.to_json() for entry in self._entries)

    def tamper(self, key: str, new_checksum: str) -> None:
        """Attempt to rewrite a committed record in place.

        The rewrite is applied to the local copy but :meth:`verify_chain`
        will subsequently fail — demonstrating tamper evidence.
        """
        entry = self._execute("get", OperationKind.READ, [key])
        tampered = ProvenanceRecord(
            key=entry.record.key,
            checksum=new_checksum,
            location=entry.record.location,
            creator=entry.record.creator,
            organization=entry.record.organization,
            certificate_fingerprint=entry.record.certificate_fingerprint,
            dependencies=list(entry.record.dependencies),
            metadata=dict(entry.record.metadata),
            timestamp=entry.record.timestamp,
            size_bytes=entry.record.size_bytes,
        )
        if len(new_checksum) != 64:
            raise ValidationError("tampered checksum must still look like a SHA-256 digest")
        self._entries[entry.index] = PowChainEntry(
            index=entry.index,
            record=tampered,
            chain_hash=entry.chain_hash,
            mined_in_s=entry.mined_in_s,
            recorded_at=entry.recorded_at,
            nonce=entry.nonce,
        )
