"""Baseline provenance systems used for comparison benchmarks.

The paper positions HyperProv against public-blockchain provenance
systems (ProvChain [9], SmartProvenance [13]) on resource consumption,
and implicitly against centralized provenance databases on trust.  Two
baselines are provided:

* :class:`~repro.baselines.provchain.PowProvenanceChain` — a ProvChain-style
  system that anchors every provenance record by mining a Proof-of-Work
  block, pegging the CPU of the mining device,
* :class:`~repro.baselines.centraldb.CentralProvenanceDatabase` — a
  single-server database with no tamper evidence (fast, but an admin can
  silently rewrite history — the test-suite demonstrates exactly that).
"""

from repro.baselines.provchain import PowProvenanceChain, PowChainEntry
from repro.baselines.centraldb import CentralProvenanceDatabase

__all__ = ["PowProvenanceChain", "PowChainEntry", "CentralProvenanceDatabase"]
