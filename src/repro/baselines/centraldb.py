"""Centralized provenance database baseline.

A single trusted server stores provenance records in an ordinary mutable
database.  It is faster and cheaper than any blockchain, but offers no
tamper evidence: an administrator (or an attacker with server access) can
rewrite history without detection.  The benchmark reports its throughput
alongside HyperProv's; the test-suite demonstrates the silent-tampering
weakness that motivates blockchain-based provenance in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.pipeline_support import PipelinedStoreMixin
from repro.chaincode.records import ProvenanceRecord
from repro.common.deprecation import warn_deprecated
from repro.common.errors import NotFoundError
from repro.common.hashing import checksum_of
from repro.common.metrics import MetricsRegistry
from repro.devices.model import DeviceModel
from repro.middleware.config import PipelineConfig
from repro.middleware.context import OperationKind
from repro.network.fabric import NetworkFabric


@dataclass
class CentralStoreResult:
    """Outcome of one store operation against the central database."""

    record: ProvenanceRecord
    latency_s: float
    completed_at: float


class CentralProvenanceDatabase(PipelinedStoreMixin):
    """Single-server provenance store with request/response over the network."""

    chaincode_label = "centraldb"

    def __init__(
        self,
        server_device: DeviceModel,
        network: Optional[NetworkFabric] = None,
        server_node: str = "provdb",
        request_overhead_s: float = 0.0015,
        pipeline_config: Optional[PipelineConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.server_device = server_device
        self.network = network
        self.server_node = server_node
        self.request_overhead_s = request_overhead_s
        self._records: Dict[str, List[ProvenanceRecord]] = {}
        if network is not None and server_node not in network.nodes:
            network.register_node(server_node, profile=server_device.profile.nic)
        self._init_pipeline(pipeline_config, metrics, "baseline.centraldb")

    # ------------------------------------------------------------------ write
    def store_record(
        self,
        record: ProvenanceRecord,
        at_time: float = 0.0,
        client_node: Optional[str] = None,
        payload_bytes: int = 0,
    ) -> CentralStoreResult:
        """Store a provenance record; costs one round trip plus a disk write.

        .. deprecated:: shim over ``ProvenanceStore.submit`` (see ``as_store``).
        """
        warn_deprecated(
            "CentralProvenanceDatabase.store_record", "ProvenanceStore.submit"
        )
        return self._execute(
            "store_record",
            OperationKind.WRITE,
            [record.key],
            record=record,
            at_time=at_time,
            client_node=client_node,
            payload_bytes=payload_bytes,
        )

    def _store_record_impl(
        self,
        record: ProvenanceRecord,
        at_time: float = 0.0,
        client_node: Optional[str] = None,
        payload_bytes: int = 0,
    ) -> CentralStoreResult:
        record.validate()
        cursor = at_time + self.request_overhead_s
        if self.network is not None and client_node is not None:
            cursor += self.network.estimate_transfer_time(
                client_node, self.server_node, payload_bytes + 1024
            )
        write = self.server_device.disk_write_time(payload_bytes + len(record.to_json()))
        _, cursor = self.server_device.occupy("disk", cursor, write, label="provdb-write")
        self._records.setdefault(record.key, []).append(record)
        self._invalidate_cached_reads(record.key)
        return CentralStoreResult(record=record, latency_s=cursor - at_time, completed_at=cursor)

    def store_data(
        self,
        key: str,
        data: bytes,
        creator: str = "client",
        organization: str = "central",
        at_time: float = 0.0,
        client_node: Optional[str] = None,
    ) -> CentralStoreResult:
        """Convenience wrapper mirroring HyperProv's ``store_data`` shape.

        .. deprecated:: shim over ``ProvenanceStore.submit`` (see ``as_store``).
        """
        warn_deprecated(
            "CentralProvenanceDatabase.store_data", "ProvenanceStore.submit"
        )
        record = ProvenanceRecord(
            key=key,
            checksum=checksum_of(data),
            location=f"db://{self.server_node}/{key}",
            creator=creator,
            organization=organization,
            certificate_fingerprint="",
            size_bytes=len(data),
            timestamp=at_time,
        )
        return self._execute(
            "store_record",
            OperationKind.WRITE,
            [record.key],
            record=record,
            at_time=at_time,
            client_node=client_node,
            payload_bytes=len(data),
        )

    # ------------------------------------------------------------------- read
    def get(self, key: str) -> ProvenanceRecord:
        """Latest record for ``key``.

        .. deprecated:: shim over ``ProvenanceStore.get`` (see ``as_store``).
        """
        warn_deprecated("CentralProvenanceDatabase.get", "ProvenanceStore.get")
        return self._execute("get", OperationKind.READ, [key])

    def _get_impl(self, key: str) -> ProvenanceRecord:
        history = self._records.get(key)
        if not history:
            raise NotFoundError(f"key {key!r} not present in the central database")
        return history[-1]

    def history(self, key: str) -> List[ProvenanceRecord]:
        """Every version of ``key``, oldest first.

        .. deprecated:: shim over ``ProvenanceStore.history`` (see ``as_store``).
        """
        warn_deprecated("CentralProvenanceDatabase.history", "ProvenanceStore.history")
        return self._execute("history", OperationKind.READ, [key])

    def _history_impl(self, key: str) -> List[ProvenanceRecord]:
        return list(self._records.get(key, []))

    @property
    def record_count(self) -> int:
        return sum(len(history) for history in self._records.values())

    # --------------------------------------------------------------- weakness
    def tamper(self, key: str, new_checksum: str) -> ProvenanceRecord:
        """Silently rewrite the latest record for ``key``.

        Succeeds without leaving any trace — there is no hash chain or
        replicated ledger to contradict the rewrite.  This is the property
        HyperProv is designed to prevent.
        """
        current = self._execute("get", OperationKind.READ, [key])
        tampered = ProvenanceRecord(
            key=current.key,
            checksum=new_checksum,
            location=current.location,
            creator=current.creator,
            organization=current.organization,
            certificate_fingerprint=current.certificate_fingerprint,
            dependencies=list(current.dependencies),
            metadata=dict(current.metadata),
            timestamp=current.timestamp,
            size_bytes=current.size_bytes,
        )
        self._records[key][-1] = tampered
        return tampered

    def detect_tampering(self) -> List[str]:
        """The central DB has no integrity record, so detection finds nothing."""
        return []
