"""Layering / import-graph checker: rules A201–A203.

The repo's packages form a declared DAG (:data:`ALLOWED_EDGES`), mined
from the intended architecture rather than the incidental import graph:
``common`` sits at the bottom and imports nothing above it, the
``middleware``/``query``/``faults`` subsystems never reach into
``bench``, and the ``api`` adapters are the only seam crossing between
backend families.  Only **top-level** (module-scope, non-TYPE_CHECKING)
imports count: a function-level deferred import is the sanctioned
cycle-breaker (``api/service.py`` → ``core.client`` is the canonical
example) precisely because it cannot deadlock module initialisation.

* **A201** — package ``X`` imports package ``Y`` but ``X → Y`` is not a
  declared edge.
* **A202** — a cycle exists among *modules* via top-level imports
  (package-level back-edges are legal inside a merged band such as
  ``middleware``/``fabric``, but module-level cycles are always a bug
  waiting for an import-order change).
* **A203** — a restricted package is imported from outside its seam:
  ``bench`` is a leaf (nobody imports it), ``baselines`` is reachable
  only through ``api``/``bench``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.core import AnalysisContext, Finding, SourceFile

#: Declared package DAG: package → packages it may import at top level.
#: ``<root>`` is ``repro/__init__.py``.  ``middleware`` and ``fabric``
#: form one band (they co-evolved as the pipeline seam and its host);
#: module-level cycle detection (A202) keeps the band honest.
ALLOWED_EDGES: Dict[str, FrozenSet[str]] = {
    "<root>": frozenset({"api", "chaincode", "core"}),
    "analysis": frozenset(),  # pure stdlib: imports nothing from repro
    "common": frozenset(),
    "crypto": frozenset({"common"}),
    "ledger": frozenset({"common", "crypto"}),
    "membership": frozenset({"common", "crypto"}),
    "query": frozenset({"common", "ledger"}),
    "simulation": frozenset({"common"}),
    "network": frozenset({"common", "simulation"}),
    "devices": frozenset({"common", "network", "simulation"}),
    "energy": frozenset({"common", "devices"}),
    "storage": frozenset({"common", "devices", "network"}),
    "consensus": frozenset({"common", "ledger", "network", "simulation"}),
    "provenance": frozenset({"chaincode", "common"}),
    "chaincode": frozenset({"common", "crypto", "ledger", "membership", "query"}),
    "middleware": frozenset(
        {"common", "consensus", "fabric", "ledger", "query", "simulation"}
    ),
    "fabric": frozenset(
        {
            "chaincode",
            "common",
            "consensus",
            "crypto",
            "devices",
            "ledger",
            "membership",
            "middleware",
            "network",
            "simulation",
        }
    ),
    "faults": frozenset({"common", "fabric", "simulation"}),
    "api": frozenset({"baselines", "chaincode", "common", "middleware"}),
    "baselines": frozenset(
        {
            "chaincode",
            "common",
            "consensus",
            "devices",
            "middleware",
            "network",
            "simulation",
        }
    ),
    "core": frozenset(
        {
            "api",
            "chaincode",
            "common",
            "consensus",
            "devices",
            "energy",
            "fabric",
            "ledger",
            "membership",
            "middleware",
            "network",
            "provenance",
            "simulation",
            "storage",
        }
    ),
    "workloads": frozenset(
        {
            "api",
            "chaincode",
            "common",
            "consensus",
            "core",
            "devices",
            "fabric",
            "membership",
            "network",
            "simulation",
        }
    ),
    "bench": frozenset(
        {
            "api",
            "baselines",
            "chaincode",
            "common",
            "consensus",
            "core",
            "devices",
            "energy",
            "fabric",
            "faults",
            "ledger",
            "membership",
            "middleware",
            "query",
            "simulation",
            "workloads",
        }
    ),
}

#: Restricted packages: package → the only packages allowed to import it
#: at top level.  ``bench`` is the wall-clock harness — simulation code
#: importing it would smuggle host time behind the D101 allowlist.
RESTRICTED_IMPORTERS: Dict[str, FrozenSet[str]] = {
    "bench": frozenset(),
    "baselines": frozenset({"api", "bench"}),
}


def _top_level_repro_imports(
    source: SourceFile,
) -> List[Tuple[ast.stmt, str]]:
    """(import node, dotted ``repro.x...`` target) for module-scope imports.

    ``if TYPE_CHECKING:`` blocks are skipped — typing-only imports carry
    no runtime coupling.  Relative imports are resolved against the
    module's own package.
    """
    out: List[Tuple[ast.stmt, str]] = []
    module_parts = source.module.split(".")

    def handle(node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                # from .x import y / from ..pkg import z
                anchor = module_parts[: len(module_parts) - node.level]
                if source.relative.endswith("__init__.py"):
                    anchor = module_parts[: len(module_parts) - node.level + 1]
                base = ".".join(anchor + ([node.module] if node.module else []))
            if base == "repro" or base.startswith("repro."):
                out.append((node, base))

    for node in source.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            handle(node)
        elif isinstance(node, ast.If) and _is_type_checking(node.test):
            continue  # typing-only: not a runtime edge
        elif isinstance(node, (ast.If, ast.Try)):
            # Guarded top-level imports (feature gates) still execute at
            # import time on some path — count them.
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    handle(child)
    return out


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
        return True
    return False


def _package_of(dotted: str) -> str:
    parts = dotted.split(".")
    return parts[1] if len(parts) > 1 else "<root>"


def check_layering(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    #: module → set of repro modules it imports at top level (for A202).
    module_edges: Dict[str, Set[str]] = {}
    known_modules = {source.module for source in context.files}

    for source in context.files:
        importer_pkg = source.package
        allowed = ALLOWED_EDGES.get(importer_pkg)
        edges: Set[str] = set()
        for node, target in _top_level_repro_imports(source):
            target_pkg = _package_of(target)

            # A203 first: a restricted import is the sharper diagnosis.
            restricted = RESTRICTED_IMPORTERS.get(target_pkg)
            if (
                restricted is not None
                and importer_pkg != target_pkg
                and importer_pkg not in restricted
            ):
                finding = context.finding(
                    source,
                    node,
                    "A203",
                    f"`{target_pkg}` may only be imported from "
                    f"{sorted(restricted) or 'nowhere'}; "
                    f"`{importer_pkg}` is not on that list",
                    hint=(
                        "move the shared piece below the restricted package "
                        "or reach it through the api seam"
                    ),
                )
                if finding is not None:
                    findings.append(finding)
            elif (
                allowed is not None
                and target_pkg != importer_pkg
                and target_pkg not in allowed
            ):
                finding = context.finding(
                    source,
                    node,
                    "A201",
                    f"`{importer_pkg}` → `{target_pkg}` is not a declared "
                    "layering edge",
                    hint=(
                        "defer the import into the function that needs it, or "
                        "(for a real architectural edge) extend ALLOWED_EDGES "
                        "in repro/analysis/layering.py with a rationale"
                    ),
                )
                if finding is not None:
                    findings.append(finding)

            # Collect module edges for cycle detection.  An import of a
            # package resolves to its __init__ module.
            if target in known_modules:
                edges.add(target)
            else:
                # `from repro.x.y import name` — repro.x.y may be a module
                # or a package re-exporting `name`; try both.
                parent = target.rsplit(".", 1)[0]
                if parent in known_modules:
                    edges.add(parent)
        module_edges[source.module] = edges

    findings.extend(_find_cycles(context, module_edges))
    return findings


def _find_cycles(
    context: AnalysisContext, edges: Dict[str, Set[str]]
) -> List[Finding]:
    """A202 — report each distinct module-level import cycle once."""
    findings: List[Finding] = []
    color: Dict[str, int] = {}  # 0 unvisited / 1 in-stack / 2 done
    stack: List[str] = []
    seen_cycles: Set[FrozenSet[str]] = set()
    by_module = {source.module: source for source in context.files}

    def visit(module: str) -> None:
        color[module] = 1
        stack.append(module)
        for dep in sorted(edges.get(module, ())):
            state = color.get(dep, 0)
            if state == 0:
                visit(dep)
            elif state == 1:
                cycle = stack[stack.index(dep) :] + [dep]
                key = frozenset(cycle)
                if key in seen_cycles:
                    continue
                seen_cycles.add(key)
                source = by_module.get(module)
                if source is None:
                    continue
                finding = context.finding(
                    source,
                    source.tree,
                    "A202",
                    "top-level import cycle: " + " -> ".join(cycle),
                    hint=(
                        "break the cycle by deferring one import into the "
                        "function that uses it"
                    ),
                )
                if finding is not None:
                    findings.append(finding)
        stack.pop()
        color[module] = 2

    for module in sorted(edges):
        if color.get(module, 0) == 0:
            visit(module)
    return findings
