"""Concurrency checker: rules T401–T402.

Almost everything in the simulator is single-threaded by construction —
the event loop owns all state.  The deliberate exceptions are opt-in:

* **T401** — a class annotated ``# repro: thread-shared`` (e.g. the
  shared read-cache tier, which worker threads hit concurrently) must
  perform every attribute mutation inside ``with self.<lock>:``.
  ``__init__`` is exempt: the object is not yet published.
* **T402** — ``EventBus._handlers`` may be structurally mutated only by
  the reentrancy-safe API (``__init__``, ``subscribe``, and the deferred
  compactor) — ``unsubscribe`` during ``publish`` must go through the
  dirty-topic deferral or iteration invalidates mid-publish.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import AnalysisContext, Finding, SourceFile, dotted_name

#: Method names that structurally mutate their receiver.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

#: Methods allowed to touch ``EventBus._handlers`` directly.  Everything
#: else must go through them (``unsubscribe`` marks dirty; the sweep
#: compacts between publishes).
EVENTBUS_SAFE_METHODS = frozenset({"__init__", "subscribe", "_compact_topic"})

#: Variable names treated as "probably an EventBus" outside events.py.
_BUS_NAME_RE = re.compile(r"(^|_)(bus|events?)($|_)")


def _self_attr_root(node: ast.expr) -> Optional[str]:
    """For a ``self.a[...].b``-style chain, the first attribute after
    ``self`` — i.e. which instance attribute this expression touches."""
    attr: Optional[str] = None
    while True:
        if isinstance(node, ast.Attribute):
            attr = node.attr
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name) and node.id == "self":
        return attr
    return None


def _iter_mutations(body: List[ast.stmt]) -> Iterator[Tuple[ast.AST, str]]:
    """(node, instance-attribute) pairs for every mutation of ``self``
    state in ``body`` — assignments, deletions, subscript stores, and
    mutator method calls."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    elements = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for element in elements:
                        attr = _self_attr_root(element)
                        if attr is not None:
                            yield node, attr
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = _self_attr_root(target)
                    if attr is not None:
                        yield node, attr
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    attr = _self_attr_root(node.func.value)
                    if attr is not None:
                        yield node, attr


def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
    """Instance attributes holding locks: assigned a ``threading.*Lock``
    (or Condition/Semaphore) in ``__init__``, or named like a lock."""
    locks: Set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                attr = _self_attr_root(target)
                if attr is None:
                    continue
                if isinstance(node.value, ast.Call):
                    ctor = dotted_name(node.value.func) or ""
                    if ctor.split(".")[-1] in {
                        "Lock",
                        "RLock",
                        "Condition",
                        "Semaphore",
                        "BoundedSemaphore",
                    }:
                        locks.add(attr)
                if "lock" in attr.lower():
                    locks.add(attr)
    return locks


def _locked_line_ranges(
    method: ast.FunctionDef, locks: Set[str]
) -> List[range]:
    """Line ranges lexically inside ``with self.<lock>:`` blocks."""
    ranges: List[range] = []
    for node in ast.walk(method):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            # accept both `with self._lock:` and `with self._lock.acquire_...():`
            attr = _self_attr_root(expr)
            if attr in locks:
                ranges.append(range(node.lineno, (node.end_lineno or node.lineno) + 1))
                break
    return ranges


def check_concurrency(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for source in context.files:
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                if source.has_pragma(node.lineno, "thread-shared"):
                    findings.extend(_check_thread_shared(context, source, node))
                if node.name == "EventBus":
                    findings.extend(_check_eventbus(context, source, node))
        findings.extend(_check_external_bus_mutation(context, source))
    return findings


def _check_thread_shared(
    context: AnalysisContext, source: SourceFile, cls: ast.ClassDef
) -> List[Finding]:
    findings: List[Finding] = []
    locks = _lock_attributes(cls)
    if not locks:
        finding = context.finding(
            source,
            cls,
            "T401",
            f"{cls.name} is marked `# repro: thread-shared` but holds no lock",
            hint="create a threading.Lock/RLock in __init__ and guard mutations",
        )
        if finding is not None:
            findings.append(finding)
        return findings
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef) or method.name == "__init__":
            continue
        locked = _locked_line_ranges(method, locks)
        for mutation, attr in _iter_mutations(method.body):
            if attr in locks:
                continue
            line = getattr(mutation, "lineno", method.lineno)
            if any(line in block for block in locked):
                continue
            finding = context.finding(
                source,
                mutation,
                "T401",
                f"{cls.name}.{method.name} mutates `self.{attr}` outside "
                f"`with self.{sorted(locks)[0]}`",
                hint="wrap the mutation in the instance lock",
            )
            if finding is not None:
                findings.append(finding)
    return findings


def _check_eventbus(
    context: AnalysisContext, source: SourceFile, cls: ast.ClassDef
) -> List[Finding]:
    findings: List[Finding] = []
    for method in cls.body:
        if not isinstance(method, ast.FunctionDef):
            continue
        if method.name in EVENTBUS_SAFE_METHODS:
            continue
        for mutation, attr in _iter_mutations(method.body):
            if attr != "_handlers":
                continue
            finding = context.finding(
                source,
                mutation,
                "T402",
                f"EventBus.{method.name} mutates `_handlers` outside the "
                "reentrancy-safe API",
                hint=(
                    "route removal through the dirty-topic deferral "
                    "(unsubscribe/_compact_topic) so publish iteration "
                    "stays valid"
                ),
            )
            if finding is not None:
                findings.append(finding)
    return findings


def _check_external_bus_mutation(
    context: AnalysisContext, source: SourceFile
) -> List[Finding]:
    """Flag ``bus._handlers.<mutator>(...)`` reach-ins outside the bus
    module itself — subscriber lists are private to the bus."""
    findings: List[Finding] = []
    if source.relative.endswith("common/events.py"):
        return findings
    for node in ast.walk(source.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in MUTATOR_METHODS:
            continue
        receiver = node.func.value
        if not (
            isinstance(receiver, ast.Attribute) and receiver.attr == "_handlers"
        ):
            continue
        owner = receiver.value
        owner_name = owner.attr if isinstance(owner, ast.Attribute) else (
            owner.id if isinstance(owner, ast.Name) else ""
        )
        if not _BUS_NAME_RE.search(owner_name.lower()):
            continue
        finding = context.finding(
            source,
            node,
            "T402",
            f"direct mutation of `{owner_name}._handlers` bypasses the "
            "EventBus reentrancy-safe API",
            hint="use bus.subscribe/bus.unsubscribe instead of reaching in",
        )
        if finding is not None:
            findings.append(finding)
    return findings
