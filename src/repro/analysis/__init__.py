"""Static-analysis pass for the reproduction's determinism and
architecture invariants.

Pure stdlib (``ast``) — this package imports nothing else from
``repro`` so it can analyze a broken tree without importing it.  Run as
``python -m repro.analysis``; see ``docs/determinism.md`` for the rule
catalogue and suppression policy.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cli import CHECKERS, main, run_analysis
from repro.analysis.core import RULES, AnalysisContext, Finding, SourceFile

__all__ = [
    "AnalysisContext",
    "Baseline",
    "CHECKERS",
    "Finding",
    "RULES",
    "SourceFile",
    "main",
    "run_analysis",
]
