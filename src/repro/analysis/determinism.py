"""Determinism lint: rules D101–D104.

The reproduction's headline guarantees — byte-identical virtual-time
anchors across sequential/parallel runs, indexes-on/off query
equivalence, double-pass chaos determinism — all assume simulation code
never consults the host.  These rules flag the four leak classes:

* **D101** wall-clock reads (``time.time``, ``datetime.now``, …)
* **D102** unseeded / process-global randomness (``random.random``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets``)
* **D103** nondeterministic ordering (iterating a ``set`` into an
  order-sensitive sink, ``sorted(..., key=id)``, builtin ``hash()``)
* **D104** environment/platform reads (``os.environ``, ``platform.*``)

``repro/bench/`` is exempt from D101/D104 — the bench harness *measures*
wall-clock and may read the host — but D102/D103 hold everywhere:
benchmarks must still be seeded and ordered or the committed anchors in
``BENCH_PERF.json`` stop reproducing.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import (
    AnalysisContext,
    Finding,
    SourceFile,
    dotted_name,
    import_table,
    resolve_call_target,
)

#: Path prefixes (repo-relative) where D101/D104 do not apply: the bench
#: harness exists to measure wall-clock, and the analysis CLI may read
#: the host.  D102/D103 still apply there.
WALLCLOCK_EXEMPT_PREFIXES = (
    "src/repro/bench/",
    "src/repro/analysis/",
)

#: D101 — calls that read the host clock.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: D102 — process-global / OS-entropy randomness.  ``random.Random`` is
#: handled separately: only the zero-argument form is flagged, a seeded
#: ``random.Random(seed)`` is exactly the sanctioned construction.
UNSEEDED_CALLS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.gauss",
        "random.expovariate",
        "random.normalvariate",
        "random.betavariate",
        "random.getrandbits",
        "random.seed",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "secrets.randbits",
    }
)

#: D104 — reads of ambient host state.
ENV_CALLS = frozenset(
    {
        "os.getenv",
        "os.uname",
        "os.getpid",
        "os.getppid",
        "os.cpu_count",
        "os.getlogin",
        "platform.system",
        "platform.node",
        "platform.machine",
        "platform.platform",
        "platform.processor",
        "platform.python_version",
        "platform.release",
        "platform.uname",
        "socket.gethostname",
        "socket.getfqdn",
        "multiprocessing.cpu_count",
        "getpass.getuser",
    }
)

#: D103 — order-sensitive sinks: iterating an unordered container into
#: any of these call targets makes output depend on hash order.
_ORDER_SENSITIVE_SINKS = frozenset({"list", "tuple", "enumerate"})

_HINTS = {
    "D101": (
        "use the simulation clock (engine.now / ctx virtual time); if this "
        "is genuine host measurement, annotate `# repro: allow-wallclock`"
    ),
    "D102": (
        "derive a stream from the plan-seeded DeterministicRandom "
        "(fork it by label) instead of process-global randomness"
    ),
    "D103": (
        "sort before iterating (sorted(...) with a content key) so output "
        "does not depend on hash order"
    ),
    "D104": (
        "thread host facts in through configuration; if this is genuine "
        "host introspection, annotate `# repro: allow-env`"
    ),
}


def _is_exempt(source: SourceFile, rules: Set[str]) -> Set[str]:
    """Subset of ``rules`` that apply to this file (path allowlist)."""
    if any(source.relative.startswith(p) for p in WALLCLOCK_EXEMPT_PREFIXES):
        return rules - {"D101", "D104"}
    return rules


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(
        self, context: AnalysisContext, source: SourceFile, active: Set[str]
    ) -> None:
        self.context = context
        self.source = source
        self.active = active
        self.imports = import_table(source.tree)
        self.findings: List[Finding] = []
        #: Local names bound to provably-unordered values (``s = set(...)``).
        self._set_vars: Set[str] = set()
        self._hash_depth = 0  # inside a __hash__ method

    # ------------------------------------------------------------ helpers
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if rule not in self.active:
            return
        finding = self.context.finding(
            self.source, node, rule, message, hint=_HINTS[rule]
        )
        if finding is not None:
            self.findings.append(finding)

    def _is_unordered(self, node: ast.expr) -> bool:
        """Whether ``node`` provably evaluates to an unordered container."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name in {"set", "frozenset"}:
                return True
            # d.keys() etc. are insertion-ordered in dicts — fine.  But
            # set ops produce sets: s.union(...), s.intersection(...).
            if isinstance(node.func, ast.Attribute) and node.func.attr in {
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            }:
                return self._is_unordered(node.func.value) or isinstance(
                    node.func.value, ast.Name
                ) and node.func.value.id in self._set_vars
        if isinstance(node, ast.Name) and node.id in self._set_vars:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_unordered(node.left) or self._is_unordered(node.right)
        return False

    # ------------------------------------------------------------- visits
    def visit_Assign(self, node: ast.Assign) -> None:
        # One-level flow tracking: remember local names bound to sets so
        # `for x in s:` two lines later still flags.
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            if self._is_unordered(node.value):
                self._set_vars.add(node.targets[0].id)
            else:
                self._set_vars.discard(node.targets[0].id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        is_hash = node.name == "__hash__"
        if is_hash:
            self._hash_depth += 1
        self.generic_visit(node)
        if is_hash:
            self._hash_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered(node.iter):
            self._emit(
                node.iter,
                "D103",
                "iteration over an unordered set — loop order follows hash order",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            if self._is_unordered(gen.iter):
                self._emit(
                    gen.iter,
                    "D103",
                    "comprehension over an unordered set — element order "
                    "follows hash order",
                )
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        target = resolve_call_target(node, self.imports)
        name = dotted_name(node.func)

        if target in WALLCLOCK_CALLS:
            self._emit(node, "D101", f"wall-clock call `{target}()`")
        elif target in UNSEEDED_CALLS:
            self._emit(node, "D102", f"process-global randomness `{target}()`")
        elif target == "random.Random" and not node.args and not node.keywords:
            self._emit(
                node,
                "D102",
                "`random.Random()` without a seed draws from OS entropy",
            )
        elif target in ENV_CALLS:
            self._emit(node, "D104", f"host environment read `{target}()`")

        # list(a_set) / tuple(a_set) / "".join over a set — ordered sink
        # fed from an unordered source.
        if (
            name in _ORDER_SENSITIVE_SINKS
            and node.args
            and self._is_unordered(node.args[0])
        ):
            self._emit(
                node,
                "D103",
                f"`{name}()` materialises a set in hash order",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and self._is_unordered(node.args[0])
        ):
            self._emit(node, "D103", "`str.join` over a set joins in hash order")

        # sorted(..., key=id) / min/max(..., key=id): id() is an address.
        if name in {"sorted", "min", "max"}:
            for keyword in node.keywords:
                if (
                    keyword.arg == "key"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id == "id"
                ):
                    self._emit(
                        node,
                        "D103",
                        f"`{name}(..., key=id)` orders by memory address",
                    )

        # Builtin hash() outside __hash__: value varies per process under
        # PYTHONHASHSEED for str/bytes.  Inside __hash__ it is the normal
        # delegation idiom and never serialized.
        if (
            name == "hash"
            and isinstance(node.func, ast.Name)
            and self._hash_depth == 0
        ):
            self._emit(
                node,
                "D103",
                "builtin `hash()` is salted per-process for str/bytes "
                "(PYTHONHASHSEED)",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # os.environ access (subscript, .get, membership) — attribute read
        # is the common root of all of them.
        if dotted_name(node) == "os.environ" and "os" in self.imports:
            self._emit(node, "D104", "read of `os.environ`")
        self.generic_visit(node)


def check_determinism(context: AnalysisContext) -> List[Finding]:
    all_rules = {"D101", "D102", "D103", "D104"}
    findings: List[Finding] = []
    for source in context.files:
        active = _is_exempt(source, all_rules)
        visitor = _DeterminismVisitor(context, source, active)
        visitor.visit(source.tree)
        findings.extend(visitor.findings)
    return findings
