"""``python -m repro.analysis`` — run the checkers, gate on the baseline.

Modes:

* default — print every finding (informational; exit 0).
* ``--check`` — exit 1 if any finding is absent from the committed
  baseline.  This is the CI gate.
* ``--update-baseline`` — rewrite the baseline from the current finding
  set (review the diff like code).

``--rules`` narrows to a comma-separated rule/prefix list (``D``,
``A201,C303``); ``--format json`` emits machine-readable findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.concurrency import check_concurrency
from repro.analysis.contracts import check_contracts
from repro.analysis.core import RULES, AnalysisContext, Finding
from repro.analysis.determinism import check_determinism
from repro.analysis.layering import check_layering

Checker = Callable[[AnalysisContext], List[Finding]]

#: Registered checker families, run in order.
CHECKERS: Dict[str, Checker] = {
    "determinism": check_determinism,
    "layering": check_layering,
    "contracts": check_contracts,
    "concurrency": check_concurrency,
}


def run_analysis(
    root: Path,
    source_root: Optional[Path] = None,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run every checker over ``root`` and return sorted findings."""
    context = AnalysisContext.load(root, source_root=source_root)
    findings: List[Finding] = []
    for checker in CHECKERS.values():
        findings.extend(checker(context))
    if rules:
        prefixes = tuple(r.strip().upper() for r in rules if r.strip())
        findings = [f for f in findings if f.rule.startswith(prefixes)]
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & architecture static analysis for repro.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repo root (holds src/, docs/, the baseline); default: cwd",
    )
    parser.add_argument(
        "--source-root",
        type=Path,
        default=None,
        help="override the analyzed tree (default: <root>/src/repro)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on findings not covered by the baseline (CI gate)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current finding set",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids or prefixes to run (e.g. D,A201)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding output format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser.parse_args(argv)


def _print_findings(findings: List[Finding], fmt: str) -> None:
    if fmt == "json":
        print(
            json.dumps(
                [
                    {
                        "rule": f.rule,
                        "path": f.path,
                        "line": f.line,
                        "symbol": f.symbol,
                        "message": f.message,
                        "hint": f.hint,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    if args.list_rules:
        for rule, (family, description) in sorted(RULES.items()):
            print(f"{rule}  [{family:>10}]  {description}")
        return 0

    root = args.root.resolve()
    rules = args.rules.split(",") if args.rules else None
    findings = run_analysis(root, source_root=args.source_root, rules=rules)

    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)
    if args.update_baseline:
        Baseline.from_findings(findings).dump(baseline_path)
        print(
            f"wrote {baseline_path} with {len(findings)} suppression(s)",
            file=sys.stderr,
        )
        return 0

    if not args.check:
        _print_findings(findings, args.format)
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 0

    baseline = Baseline.load(baseline_path)
    fresh = baseline.new_findings(findings)
    _print_findings(fresh, args.format)
    stale = baseline.stale_entries(findings)
    if stale:
        print(
            f"note: {len(stale)} stale baseline entr(y/ies) no longer fire; "
            "run --update-baseline to drop them",
            file=sys.stderr,
        )
    if fresh:
        print(
            f"FAIL: {len(fresh)} new finding(s) not covered by "
            f"{baseline_path.name}",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {len(findings)} finding(s), all covered by the baseline",
        file=sys.stderr,
    )
    return 0
