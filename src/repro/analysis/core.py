"""Shared infrastructure for the static-analysis framework.

The analyzers are pure-stdlib AST passes: a :class:`SourceFile` bundles a
parsed module with its pragma map, a :class:`Finding` is one rule
violation with a stable fingerprint, and :class:`AnalysisContext` holds
the file set one run covers.  Checkers are callables ``(context) ->
List[Finding]`` registered in :data:`repro.analysis.cli.CHECKERS`.

Suppression has two layers, checked in this order:

* **Inline pragmas** — ``# repro: allow-<family>`` on the flagged line or
  the line directly above silences one site permanently; this is the
  sanctioned form for *intentional* violations (a wall-clock utilization
  counter, a deliberately terminal middleware).  Class-scoped pragmas
  (``# repro: thread-shared``) instead opt a class *into* a checker.
* **The committed baseline** (``analysis-baseline.json``) — grandfathers
  known findings so the CI gate only fails on *new* violations; see
  :mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: ``# repro: tag-one, tag-two`` — trailing or whole-line comment form.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*([a-z][a-z0-9_,\s-]*)")

#: Rule id → (family tag, one-line description).  The family tag doubles
#: as the inline-pragma suffix: rule D101 is silenced by
#: ``# repro: allow-wallclock``.
RULES: Dict[str, Tuple[str, str]] = {
    "D101": ("wallclock", "wall-clock read in a simulation path"),
    "D102": ("unseeded", "unseeded / process-global randomness"),
    "D103": ("ordering", "nondeterministic ordering source"),
    "D104": ("env", "environment or platform read in a simulation path"),
    "A201": ("layering", "package import outside the declared layering DAG"),
    "A202": ("layering", "module-level import cycle"),
    "A203": ("layering", "restricted package imported outside its seam"),
    "C301": ("contract", "PipelineConfig knob consumed by no middleware/stage"),
    "C302": ("contract", "PipelineConfig knob missing from the docs config table"),
    "C303": ("contract", "middleware neither forwards nor terminates the chain"),
    "T401": ("threading", "thread-shared attribute mutated outside the lock"),
    "T402": ("threading", "EventBus handler list mutated outside the safe API"),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one site."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    message: str
    hint: str = ""
    #: Enclosing symbol (``Class.method`` / function / ``<module>``); part
    #: of the baseline fingerprint so suppressions survive line drift.
    symbol: str = "<module>"

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} [{self.symbol}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def parse_pragmas(text: str) -> Dict[int, Set[str]]:
    """Line number → set of ``# repro:`` pragma tags on that line."""
    pragmas: Dict[int, Set[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if "#" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        tags = {tag.strip() for tag in match.group(1).split(",")}
        tags.discard("")
        if tags:
            pragmas[number] = tags
    return pragmas


@dataclass
class SourceFile:
    """One parsed Python module plus its pragma and symbol maps."""

    path: Path  # absolute
    relative: str  # repo-relative POSIX path
    text: str
    tree: ast.Module
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return cls(
            path=path,
            relative=path.relative_to(root).as_posix(),
            text=text,
            tree=tree,
            pragmas=parse_pragmas(text),
        )

    # ------------------------------------------------------------- pragmas
    def has_pragma(self, line: int, tag: str) -> bool:
        """Whether ``tag`` appears on ``line`` or the line directly above."""
        return tag in self.pragmas.get(line, ()) or tag in self.pragmas.get(line - 1, ())

    def allows(self, line: int, rule: str) -> bool:
        """Whether an ``allow-<family>`` pragma covers ``rule`` at ``line``."""
        family = RULES[rule][0]
        return self.has_pragma(line, f"allow-{family}")

    # -------------------------------------------------------------- naming
    @property
    def module(self) -> str:
        """Dotted module name relative to the source root (``repro.x.y``)."""
        parts = list(Path(self.relative).parts)
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        return ".".join(parts)

    @property
    def package(self) -> str:
        """First package segment under ``repro`` (``repro/__init__.py`` →
        ``<root>``)."""
        segments = self.module.split(".")
        return segments[1] if len(segments) > 1 else "<root>"


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Line number → dotted enclosing symbol, for fingerprinting findings."""
    symbols: Dict[int, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
                for line in range(child.lineno, (child.end_lineno or child.lineno) + 1):
                    symbols[line] = name
                visit(child, name)
            else:
                visit(child, prefix)

    visit(tree, "")
    return symbols


@dataclass
class AnalysisContext:
    """Everything one analysis run sees: the file set and repo layout."""

    root: Path  # repo root (holds src/, docs/, analysis-baseline.json)
    files: List[SourceFile]
    #: docs/architecture.md text, empty when absent (contract checker).
    architecture_doc: str = ""
    _symbols: Dict[str, Dict[int, str]] = field(default_factory=dict)

    @classmethod
    def load(
        cls, root: Path, source_root: Optional[Path] = None
    ) -> "AnalysisContext":
        source_root = source_root or (root / "src" / "repro")
        files = [
            SourceFile.load(path, root)
            for path in sorted(source_root.rglob("*.py"))
            if "__pycache__" not in path.parts
        ]
        doc_path = root / "docs" / "architecture.md"
        doc = doc_path.read_text(encoding="utf-8") if doc_path.exists() else ""
        return cls(root=root, files=files, architecture_doc=doc)

    def symbol_at(self, source: SourceFile, line: int) -> str:
        table = self._symbols.get(source.relative)
        if table is None:
            table = enclosing_symbols(source.tree)
            self._symbols[source.relative] = table
        return table.get(line, "<module>")

    def finding(
        self,
        source: SourceFile,
        node: ast.AST,
        rule: str,
        message: str,
        hint: str = "",
    ) -> Optional[Finding]:
        """Build a :class:`Finding` unless an inline pragma allows it."""
        line = getattr(node, "lineno", 1)
        if source.allows(line, rule):
            return None
        return Finding(
            rule=rule,
            path=source.relative,
            line=line,
            message=message,
            hint=hint,
            symbol=self.symbol_at(source, line),
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_table(tree: ast.Module) -> Dict[str, str]:
    """Local name → fully-qualified dotted path, from a module's imports.

    ``import time`` → ``{"time": "time"}``; ``from datetime import
    datetime as dt`` → ``{"dt": "datetime.datetime"}``.  Imports at any
    nesting depth are included — a wall-clock read is no less wall-clock
    for having imported ``time`` inside the function.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                table[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def resolve_call_target(call: ast.Call, imports: Dict[str, str]) -> Optional[str]:
    """Fully-qualified name of a call target, via the import table.

    ``time.time()`` → ``time.time``; with ``from datetime import
    datetime``, ``datetime.now()`` → ``datetime.datetime.now``.  Returns
    ``None`` for calls on local objects (``self._rng.random()``).
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    resolved_head = imports.get(head)
    if resolved_head is None:
        return None
    return f"{resolved_head}.{rest}" if rest else resolved_head


def iter_files(context: AnalysisContext, prefix: str = "") -> Iterable[SourceFile]:
    """Context files whose repo-relative path starts with ``prefix``."""
    for source in context.files:
        if source.relative.startswith(prefix):
            yield source
