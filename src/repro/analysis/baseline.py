"""Suppression baseline: grandfather known findings, gate new ones.

``analysis-baseline.json`` (committed at the repo root) records the
fingerprints of accepted findings.  The gate (``--check``) fails only on
findings *not* in the baseline, so the analyzer can be adopted — and its
rules tightened — without a flag-day cleanup.  The file is regenerated
with ``--update-baseline`` and reviewed like any other diff; the goal
state, enforced by the acceptance tests, is an *empty* suppression list
for the determinism rules: real fixes and inline pragmas, not baseline
debt.

Fingerprints are ``(rule, path, symbol)`` with a count, not line
numbers: edits elsewhere in a file must not churn the baseline, but a
*second* violation of the same rule in the same function is new.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

Fingerprint = Tuple[str, str, str]


@dataclass
class Baseline:
    """Accepted-finding fingerprints with per-fingerprint counts."""

    suppressions: Dict[Fingerprint, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        return cls(suppressions=dict(Counter(f.fingerprint for f in findings)))

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        suppressions: Dict[Fingerprint, int] = {}
        for entry in payload.get("suppressions", []):
            key = (entry["rule"], entry["path"], entry["symbol"])
            suppressions[key] = int(entry.get("count", 1))
        return cls(suppressions=suppressions)

    def dump(self, path: Path) -> None:
        entries = [
            {"rule": rule, "path": rel, "symbol": symbol, "count": count}
            for (rule, rel, symbol), count in sorted(self.suppressions.items())
        ]
        payload = {"version": BASELINE_VERSION, "suppressions": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def new_findings(self, findings: List[Finding]) -> List[Finding]:
        """Findings beyond the baselined count per fingerprint, in
        deterministic (path, line, rule) order."""
        budget = dict(self.suppressions)
        fresh: List[Finding] = []
        for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            remaining = budget.get(finding.fingerprint, 0)
            if remaining > 0:
                budget[finding.fingerprint] = remaining - 1
            else:
                fresh.append(finding)
        return fresh

    def stale_entries(self, findings: List[Finding]) -> List[Fingerprint]:
        """Baselined fingerprints that no longer fire (candidates for
        removal via ``--update-baseline``)."""
        live = Counter(f.fingerprint for f in findings)
        return sorted(
            key for key, count in self.suppressions.items() if live[key] < count
        )
