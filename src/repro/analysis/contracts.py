"""Pipeline-contract checker: rules C301–C303.

``PipelineConfig`` is the single ablation surface — every experiment in
``bench`` is a config swap — so a knob that nothing consumes is a silent
no-op ablation, and an undocumented knob is invisible to the person
designing the experiment.  Similarly, a middleware that neither calls
``call_next`` nor declares itself terminal quietly swallows every
request behind it in the chain.

* **C301** — a ``PipelineConfig`` field is consumed by no code outside
  the dataclass definition itself.
* **C302** — a ``PipelineConfig`` field does not appear (in backticks)
  in ``docs/architecture.md``'s config table.
* **C303** — a ``Middleware.handle`` override never references its
  ``call_next`` parameter and is not annotated
  ``# repro: terminal-middleware``.  *Referencing* (not just calling)
  counts: batching middlewares legitimately store ``call_next`` for a
  later flush.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.core import AnalysisContext, Finding, SourceFile

CONFIG_MODULE = "src/repro/middleware/config.py"
CONFIG_CLASS = "PipelineConfig"


def _find_class(source: SourceFile, name: str) -> Optional[ast.ClassDef]:
    for node in source.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Annotated field name → line, skipping ClassVar pseudo-fields."""
    fields: Dict[str, int] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            annotation = ast.dump(node.annotation)
            if "ClassVar" in annotation:
                continue
            fields[node.target.id] = node.lineno
    return fields


def _attribute_reads(
    source: SourceFile, skip: Optional[ast.ClassDef]
) -> Set[str]:
    """All ``<expr>.attr`` attribute names read in a file, excluding one
    class body (the dataclass defining the fields)."""
    skip_range = (
        range(skip.lineno, (skip.end_lineno or skip.lineno) + 1)
        if skip is not None
        else range(0)
    )
    reads: Set[str] = set()
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Attribute) and node.lineno not in skip_range:
            reads.add(node.attr)
    return reads


def check_contracts(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_check_config_knobs(context))
    findings.extend(_check_middleware_forwarding(context))
    return findings


def _check_config_knobs(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    config_source = next(
        (s for s in context.files if s.relative == CONFIG_MODULE), None
    )
    if config_source is None:
        return findings
    config_class = _find_class(config_source, CONFIG_CLASS)
    if config_class is None:
        return findings
    fields = _dataclass_fields(config_class)

    consumed: Set[str] = set()
    for source in context.files:
        skip = config_class if source is config_source else None
        consumed |= _attribute_reads(source, skip)

    for name, line in sorted(fields.items()):
        marker = ast.copy_location(ast.Pass(), config_class)
        marker.lineno = line
        if name not in consumed:
            finding = context.finding(
                config_source,
                marker,
                "C301",
                f"PipelineConfig.{name} is consumed by no middleware or stage",
                hint=(
                    "wire the knob into build_client_middlewares / a stage, "
                    "or delete it — dead config is a silent no-op ablation"
                ),
            )
            if finding is not None:
                findings.append(finding)
        if context.architecture_doc and f"`{name}`" not in context.architecture_doc:
            finding = context.finding(
                config_source,
                marker,
                "C302",
                f"PipelineConfig.{name} is missing from the config table in "
                "docs/architecture.md",
                hint="add a row describing the knob and which middleware reads it",
            )
            if finding is not None:
                findings.append(finding)
    return findings


def _middleware_base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _check_middleware_forwarding(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    for source in context.files:
        if not source.relative.startswith("src/repro/middleware/"):
            continue
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if "Middleware" not in _middleware_base_names(node):
                continue
            handle = next(
                (
                    item
                    for item in node.body
                    if isinstance(item, ast.FunctionDef) and item.name == "handle"
                ),
                None,
            )
            if handle is None:
                continue  # inherits the base implementation
            args = handle.args.posonlyargs + handle.args.args
            if len(args) < 3:
                continue  # not the (self, ctx, call_next) signature
            forward_param = args[2].arg
            referenced = any(
                isinstance(inner, ast.Name) and inner.id == forward_param
                for stmt in handle.body
                for inner in ast.walk(stmt)
            )
            terminal = source.has_pragma(
                node.lineno, "terminal-middleware"
            ) or source.has_pragma(handle.lineno, "terminal-middleware")
            if referenced or terminal:
                continue
            finding = context.finding(
                source,
                handle,
                "C303",
                f"{node.name}.handle never references `{forward_param}` — the "
                "chain behind it is unreachable",
                hint=(
                    "forward via `return call_next(ctx)` (or store it for a "
                    "deferred flush); a deliberate sink gets "
                    "`# repro: terminal-middleware` on the class"
                ),
            )
            if finding is not None:
                findings.append(finding)
    return findings
