"""Transactions, read/write sets and endorsements."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.hashing import sha256_hex
from repro.common.serialization import canonical_json
from repro.crypto.certificates import Certificate

#: A key version is (block_number, tx_number) exactly like Fabric's height-based versions.
Version = Tuple[int, int]


class TxValidationCode(enum.Enum):
    """Validation outcome recorded for each transaction in a block.

    A subset of Fabric's ``TxValidationCode`` enum — the codes the
    reproduction can actually produce.
    """

    VALID = "VALID"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"
    BAD_SIGNATURE = "BAD_SIGNATURE"
    DUPLICATE_TXID = "DUPLICATE_TXID"
    INVALID_OTHER_REASON = "INVALID_OTHER_REASON"


@dataclass(frozen=True)
class ReadSetEntry:
    """A key read during simulation together with the version observed."""

    key: str
    version: Optional[Version]


@dataclass(frozen=True)
class WriteSetEntry:
    """A key written during simulation; ``is_delete`` marks deletions."""

    key: str
    value: Optional[str]
    is_delete: bool = False


@dataclass
class ReadWriteSet:
    """The read/write set produced by simulating a chaincode invocation."""

    reads: List[ReadSetEntry] = field(default_factory=list)
    writes: List[WriteSetEntry] = field(default_factory=list)

    def add_read(self, key: str, version: Optional[Version]) -> None:
        self.reads.append(ReadSetEntry(key=key, version=version))

    def add_write(self, key: str, value: Optional[str], is_delete: bool = False) -> None:
        self.writes.append(WriteSetEntry(key=key, value=value, is_delete=is_delete))

    def to_dict(self) -> Dict[str, object]:
        return {
            "reads": [
                {"key": entry.key, "version": list(entry.version) if entry.version else None}
                for entry in self.reads
            ],
            "writes": [
                {"key": entry.key, "value": entry.value, "is_delete": entry.is_delete}
                for entry in self.writes
            ],
        }

    def digest(self) -> str:
        """Stable digest of the read/write set (what endorsers sign)."""
        return sha256_hex(canonical_json(self.to_dict()))


@dataclass
class Endorsement:
    """A peer's signature over a proposal response."""

    endorser: str
    organization: str
    certificate: Certificate
    signature: str
    response_digest: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "endorser": self.endorser,
            "organization": self.organization,
            "certificate": self.certificate.to_dict(),
            "signature": self.signature,
            "response_digest": self.response_digest,
        }


@dataclass
class Transaction:
    """A fully assembled transaction ready for ordering.

    Carries the chaincode invocation, the read/write set produced during
    endorsement, the collected endorsements and the submitting client's
    certificate — the same envelope content Fabric's orderer receives.
    """

    tx_id: str
    channel: str
    chaincode: str
    function: str
    args: List[str]
    rw_set: ReadWriteSet
    endorsements: List[Endorsement] = field(default_factory=list)
    creator: Optional[Certificate] = None
    creator_signature: str = ""
    timestamp: float = 0.0
    response_payload: Optional[str] = None
    #: Chaincode event emitted during endorsement, as ``(name, payload)``.
    chaincode_event: Optional[Tuple[str, str]] = None
    validation_code: TxValidationCode = TxValidationCode.VALID

    @property
    def is_valid(self) -> bool:
        return self.validation_code is TxValidationCode.VALID

    def proposal_bytes(self) -> bytes:
        """The canonical bytes of the original proposal (what the client signs)."""
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": self.args,
            }
        )

    def envelope_bytes(self) -> bytes:
        """Canonical bytes of the full transaction envelope (hashed into blocks)."""
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": self.args,
                "rw_set": self.rw_set.to_dict(),
                "endorsements": [e.to_dict() for e in self.endorsements],
                "creator": self.creator.to_dict() if self.creator else None,
                "timestamp": self.timestamp,
            }
        )

    def digest(self) -> str:
        return sha256_hex(self.envelope_bytes())

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the transaction envelope."""
        return len(self.envelope_bytes())

    def endorsing_organizations(self) -> List[str]:
        """Distinct organizations that endorsed this transaction."""
        return sorted({e.organization for e in self.endorsements})
