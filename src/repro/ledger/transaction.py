"""Transactions, read/write sets and endorsements.

Envelope serialization (``envelope_bytes``/``digest``/``size_bytes``) and
rw-set digests are on the simulator's hottest path: every block cut, every
Merkle build and every per-peer validation touches them.  Both classes
therefore cache their canonical bytes.  The cache contract is explicit:

* mutations go through the mutation API (``add_read``/``add_write``),
  which invalidates the cache;
* ``seal()`` freezes the envelope (the client seals after assembling it,
  before ordering) — after that the cached bytes are reused forever and
  mutation attempts fail loudly;
* ``tamper()`` returns a private, unsealed copy-on-write clone for
  tamper-evidence experiments, so structurally shared envelopes on other
  peers stay untouched.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import ClassVar, Dict, List, NamedTuple, Optional, Tuple

from repro.common.caching import BoundedMemo
from repro.common.errors import SealedEnvelopeError
from repro.common.hashing import sha256_hex
from repro.common.serialization import canonical_json
from repro.crypto.certificates import Certificate

#: A key version is (block_number, tx_number) exactly like Fabric's height-based versions.
Version = Tuple[int, int]


class TxValidationCode(enum.Enum):
    """Validation outcome recorded for each transaction in a block.

    A subset of Fabric's ``TxValidationCode`` enum — the codes the
    reproduction can actually produce.
    """

    VALID = "VALID"
    MVCC_READ_CONFLICT = "MVCC_READ_CONFLICT"
    ENDORSEMENT_POLICY_FAILURE = "ENDORSEMENT_POLICY_FAILURE"
    BAD_SIGNATURE = "BAD_SIGNATURE"
    DUPLICATE_TXID = "DUPLICATE_TXID"
    INVALID_OTHER_REASON = "INVALID_OTHER_REASON"


class ReadSetEntry(NamedTuple):
    """A key read during simulation together with the version observed.

    A ``NamedTuple`` rather than a frozen dataclass: range scans record
    one entry per returned key, and namedtuple construction is several
    times cheaper while staying immutable and value-compared.
    """

    key: str
    version: Optional[Version]


class WriteSetEntry(NamedTuple):
    """A key written during simulation; ``is_delete`` marks deletions."""

    key: str
    value: Optional[str]
    is_delete: bool = False


@dataclass
class ReadWriteSet:
    """The read/write set produced by simulating a chaincode invocation."""

    reads: List[ReadSetEntry] = field(default_factory=list)
    writes: List[WriteSetEntry] = field(default_factory=list)
    _digest: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sealed: bool = field(default=False, init=False, repr=False, compare=False)

    def __setattr__(self, name: str, value: object) -> None:
        if name in ("reads", "writes") and getattr(self, "_sealed", False):
            raise SealedEnvelopeError(f"cannot rebind {name!r} on a sealed rw-set")
        object.__setattr__(self, name, value)

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> "ReadWriteSet":
        """Freeze the rw-set; further ``add_read``/``add_write`` calls raise."""
        if not self._sealed:
            object.__setattr__(self, "reads", tuple(self.reads))
            object.__setattr__(self, "writes", tuple(self.writes))
            self._sealed = True
        return self

    def copy(self) -> "ReadWriteSet":
        """A private, unsealed clone (entries are immutable and shared)."""
        clone = ReadWriteSet(reads=list(self.reads), writes=list(self.writes))
        return clone

    def add_read(self, key: str, version: Optional[Version]) -> None:
        if self._sealed:
            raise SealedEnvelopeError("cannot add a read to a sealed rw-set")
        self._digest = None
        self.reads.append(ReadSetEntry(key=key, version=version))

    def extend_reads(self, pairs: List[Tuple[str, Optional[Version]]]) -> None:
        """Record many reads at once (range/prefix scans)."""
        if self._sealed:
            raise SealedEnvelopeError("cannot add a read to a sealed rw-set")
        self._digest = None
        self.reads.extend(
            ReadSetEntry(key=key, version=version) for key, version in pairs
        )

    def add_write(self, key: str, value: Optional[str], is_delete: bool = False) -> None:
        if self._sealed:
            raise SealedEnvelopeError("cannot add a write to a sealed rw-set")
        self._digest = None
        self.writes.append(WriteSetEntry(key=key, value=value, is_delete=is_delete))

    def to_dict(self) -> Dict[str, object]:
        return {
            "reads": [
                {"key": entry.key, "version": list(entry.version) if entry.version else None}
                for entry in self.reads
            ],
            "writes": [
                {"key": entry.key, "value": entry.value, "is_delete": entry.is_delete}
                for entry in self.writes
            ],
        }

    #: Cross-object digest memo for small rw-sets: every endorsing peer
    #: simulates the same invocation and produces an identical rw-set in
    #: its own object, so the serialized digest can be shared by content.
    #: Large (range-scan) rw-sets skip the memo — they are one-shot per
    #: query and tupling hundreds of entries buys nothing.
    _DIGEST_MEMO: ClassVar[BoundedMemo] = BoundedMemo(50_000)
    _DIGEST_MEMO_ENTRY_LIMIT = 64

    def digest(self) -> str:
        """Stable digest of the read/write set (what endorsers sign).

        Computed once and cached per object; the cache is dropped whenever
        the mutation API adds an entry.  Small rw-sets additionally share
        digests across objects with identical content.
        """
        if self._digest is not None:
            return self._digest
        memo_key = None
        if len(self.reads) + len(self.writes) <= self._DIGEST_MEMO_ENTRY_LIMIT:
            memo_key = (tuple(self.reads), tuple(self.writes))
            shared = self._DIGEST_MEMO.get(memo_key)
            if shared is not None:
                self._digest = shared
                return shared
        digest = sha256_hex(canonical_json(self.to_dict()))
        if memo_key is not None:
            self._DIGEST_MEMO[memo_key] = digest
        self._digest = digest
        return digest


@dataclass
class Endorsement:
    """A peer's signature over a proposal response."""

    endorser: str
    organization: str
    certificate: Certificate
    signature: str
    response_digest: str
    _sealed: bool = field(default=False, init=False, repr=False, compare=False)

    def __setattr__(self, name: str, value: object) -> None:
        if getattr(self, "_sealed", False) and name != "_sealed":
            raise SealedEnvelopeError(
                "cannot modify an endorsement inside a sealed envelope"
            )
        object.__setattr__(self, name, value)

    def _seal(self) -> None:
        self._sealed = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "endorser": self.endorser,
            "organization": self.organization,
            "certificate": self.certificate.to_dict(),
            "signature": self.signature,
            "response_digest": self.response_digest,
        }


@dataclass
class Transaction:
    """A fully assembled transaction ready for ordering.

    Carries the chaincode invocation, the read/write set produced during
    endorsement, the collected endorsements and the submitting client's
    certificate — the same envelope content Fabric's orderer receives.
    """

    tx_id: str
    channel: str
    chaincode: str
    function: str
    args: List[str]
    rw_set: ReadWriteSet
    endorsements: List[Endorsement] = field(default_factory=list)
    creator: Optional[Certificate] = None
    creator_signature: str = ""
    timestamp: float = 0.0
    response_payload: Optional[str] = None
    #: Chaincode event emitted during endorsement, as ``(name, payload)``.
    chaincode_event: Optional[Tuple[str, str]] = None
    validation_code: TxValidationCode = TxValidationCode.VALID
    _envelope: Optional[bytes] = field(
        default=None, init=False, repr=False, compare=False
    )
    _envelope_digest: Optional[str] = field(
        default=None, init=False, repr=False, compare=False
    )
    _sealed: bool = field(default=False, init=False, repr=False, compare=False)

    def __setattr__(self, name: str, value: object) -> None:
        # Sealed envelopes are structurally shared across peers: rebinding
        # any envelope field (scalar or container) would mutate every
        # peer's ledger at once while the cached bytes keep verifying.
        # Only commit metadata (``validation_code``) and the private cache
        # slots stay assignable after seal().
        if (
            getattr(self, "_sealed", False)
            and name != "validation_code"
            and not name.startswith("_")
        ):
            raise SealedEnvelopeError(
                f"cannot assign {name!r} on a sealed transaction; "
                "mutate a tamper() clone instead"
            )
        object.__setattr__(self, name, value)

    @property
    def is_valid(self) -> bool:
        return self.validation_code is TxValidationCode.VALID

    # ------------------------------------------------------------ seal/tamper
    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> "Transaction":
        """Freeze the envelope so its canonical bytes can be cached forever.

        The client seals right after assembling the envelope (nothing may
        change once it is submitted for ordering); sealing converts the
        mutable containers to tuples so accidental in-place edits fail
        loudly instead of silently diverging from the cached bytes.
        ``validation_code`` stays assignable — it is commit metadata, not
        part of the envelope.
        """
        if not self._sealed:
            object.__setattr__(self, "args", tuple(self.args))
            object.__setattr__(self, "endorsements", tuple(self.endorsements))
            for endorsement in self.endorsements:
                endorsement._seal()
            self.rw_set.seal()
            self._sealed = True
        return self

    def tamper(self) -> "Transaction":
        """Copy-on-write hook: a private, *unsealed* clone of this envelope.

        Sealed envelopes are structurally shared between the orderer and
        every peer, so tamper-evidence experiments must not edit them in
        place.  The clone recomputes its canonical bytes on demand, so any
        mutation is visible to hash verification — exactly what the
        tamper-evidence guarantee requires.
        """
        clone = Transaction(
            tx_id=self.tx_id,
            channel=self.channel,
            chaincode=self.chaincode,
            function=self.function,
            args=list(self.args),
            rw_set=self.rw_set.copy(),
            endorsements=[replace(e) for e in self.endorsements],
            creator=self.creator,
            creator_signature=self.creator_signature,
            timestamp=self.timestamp,
            response_payload=self.response_payload,
            chaincode_event=self.chaincode_event,
            validation_code=self.validation_code,
        )
        return clone

    def proposal_bytes(self) -> bytes:
        """The canonical bytes of the original proposal (what the client signs)."""
        return canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": self.args,
            }
        )

    def envelope_bytes(self) -> bytes:
        """Canonical bytes of the full transaction envelope (hashed into blocks).

        Sealed envelopes serialize exactly once and reuse the bytes;
        unsealed ones (test fixtures, tampered clones) recompute per call
        so in-place edits remain hash-visible.
        """
        if self._envelope is not None:
            return self._envelope
        envelope = canonical_json(
            {
                "tx_id": self.tx_id,
                "channel": self.channel,
                "chaincode": self.chaincode,
                "function": self.function,
                "args": list(self.args),
                "rw_set": self.rw_set.to_dict(),
                "endorsements": [e.to_dict() for e in self.endorsements],
                "creator": self.creator.to_dict() if self.creator else None,
                "timestamp": self.timestamp,
            }
        )
        if self._sealed:
            self._envelope = envelope
        return envelope

    def digest(self) -> str:
        if self._envelope_digest is not None:
            return self._envelope_digest
        digest = sha256_hex(self.envelope_bytes())
        if self._sealed:
            self._envelope_digest = digest
        return digest

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the transaction envelope."""
        return len(self.envelope_bytes())

    def endorsing_organizations(self) -> List[str]:
        """Distinct organizations that endorsed this transaction."""
        return sorted({e.organization for e in self.endorsements})
