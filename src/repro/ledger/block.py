"""Blocks: header, transaction list and hash chaining."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.hashing import sha256_hex
from repro.common.serialization import canonical_json
from repro.crypto.merkle import MerkleTree
from repro.ledger.transaction import Transaction, TxValidationCode


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header (number, previous hash, data hash)."""

    number: int
    previous_hash: str
    data_hash: str
    timestamp: float

    def digest(self) -> str:
        """Hash of the header; this is "the block hash" referenced by children.

        Memoized — the header is frozen, and the chain link check recomputes
        the previous block's hash on every append otherwise.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = sha256_hex(
                canonical_json(
                    {
                        "number": self.number,
                        "previous_hash": self.previous_hash,
                        "data_hash": self.data_hash,
                        "timestamp": self.timestamp,
                    }
                )
            )
            object.__setattr__(self, "_digest", cached)
        return cached


@dataclass
class Block:
    """An ordered batch of transactions plus validation metadata.

    ``validation_flags`` is filled in by the committing peer (one code per
    transaction), mirroring Fabric's block metadata; the orderer leaves it
    empty.
    """

    header: BlockHeader
    transactions: List[Transaction]
    validation_flags: List[TxValidationCode] = field(default_factory=list)
    orderer: str = ""
    _size: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    @classmethod
    def build(
        cls,
        number: int,
        previous_hash: str,
        transactions: List[Transaction],
        timestamp: float,
        orderer: str = "",
    ) -> "Block":
        """Assemble a block, computing the Merkle data hash over the txs."""
        tree = MerkleTree.from_leaf_hashes([tx.digest() for tx in transactions])
        header = BlockHeader(
            number=number,
            previous_hash=previous_hash,
            data_hash=tree.root,
            timestamp=timestamp,
        )
        return cls(header=header, transactions=transactions, orderer=orderer)

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def hash(self) -> str:
        return self.header.digest()

    @property
    def tx_count(self) -> int:
        return len(self.transactions)

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the block.

        Cached: the orderer and every peer charge serialization, transfer
        and disk time from this value several times per delivery, and the
        transaction list is fixed after ordering (``tamper`` — the one
        sanctioned mutation — drops the cache).
        """
        if self._size is None:
            self._size = sum(tx.size_bytes for tx in self.transactions) + 256
        return self._size

    def merkle_tree(self) -> MerkleTree:
        """(Re)build the Merkle tree over the block's transactions.

        Leaf hashes are the transaction digests (``sha256(envelope)``), so
        sealed envelopes contribute their cached digest while tampered
        (unsealed) clones are re-serialized and re-hashed — mutations stay
        visible to :meth:`verify_data_hash`.
        """
        return MerkleTree.from_leaf_hashes([tx.digest() for tx in self.transactions])

    def verify_data_hash(self) -> bool:
        """Check that the header's data hash matches the transactions."""
        return self.merkle_tree().root == self.header.data_hash

    def transaction_ids(self) -> List[str]:
        return [tx.tx_id for tx in self.transactions]

    def valid_transactions(self) -> List[Transaction]:
        """Transactions marked VALID by the committer (all, if not yet validated)."""
        if not self.validation_flags:
            return list(self.transactions)
        return [
            tx
            for tx, flag in zip(self.transactions, self.validation_flags)
            if flag is TxValidationCode.VALID
        ]

    def validation_summary(self) -> Dict[str, int]:
        """Count of transactions per validation code."""
        summary: Dict[str, int] = {}
        for flag in self.validation_flags:
            summary[flag.value] = summary.get(flag.value, 0) + 1
        return summary

    def find_transaction(self, tx_id: str) -> Optional[Transaction]:
        for tx in self.transactions:
            if tx.tx_id == tx_id:
                return tx
        return None

    def tamper(self, tx_position: int) -> Transaction:
        """Copy-on-write hook: make one transaction of *this* block mutable.

        Peers share sealed transaction objects structurally instead of
        deep-copying every block; a tamper-evidence experiment therefore
        swaps in a private :meth:`Transaction.tamper` clone (and a private
        transaction list) before mutating, so only this block's copy — one
        peer's ledger — diverges.  Returns the mutable clone; the header's
        data hash is intentionally left untouched so verification detects
        the rewrite.
        """
        transactions = list(self.transactions)
        transactions[tx_position] = transactions[tx_position].tamper()
        self.transactions = transactions
        self._size = None  # clone edits may change the serialized size
        return transactions[tx_position]
