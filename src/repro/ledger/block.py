"""Blocks: header, transaction list and hash chaining."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.hashing import sha256_hex
from repro.common.serialization import canonical_json
from repro.crypto.merkle import MerkleTree
from repro.ledger.transaction import Transaction, TxValidationCode


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header (number, previous hash, data hash)."""

    number: int
    previous_hash: str
    data_hash: str
    timestamp: float

    def digest(self) -> str:
        """Hash of the header; this is "the block hash" referenced by children."""
        return sha256_hex(
            canonical_json(
                {
                    "number": self.number,
                    "previous_hash": self.previous_hash,
                    "data_hash": self.data_hash,
                    "timestamp": self.timestamp,
                }
            )
        )


@dataclass
class Block:
    """An ordered batch of transactions plus validation metadata.

    ``validation_flags`` is filled in by the committing peer (one code per
    transaction), mirroring Fabric's block metadata; the orderer leaves it
    empty.
    """

    header: BlockHeader
    transactions: List[Transaction]
    validation_flags: List[TxValidationCode] = field(default_factory=list)
    orderer: str = ""

    @classmethod
    def build(
        cls,
        number: int,
        previous_hash: str,
        transactions: List[Transaction],
        timestamp: float,
        orderer: str = "",
    ) -> "Block":
        """Assemble a block, computing the Merkle data hash over the txs."""
        tree = MerkleTree([tx.envelope_bytes() for tx in transactions])
        header = BlockHeader(
            number=number,
            previous_hash=previous_hash,
            data_hash=tree.root,
            timestamp=timestamp,
        )
        return cls(header=header, transactions=transactions, orderer=orderer)

    @property
    def number(self) -> int:
        return self.header.number

    @property
    def hash(self) -> str:
        return self.header.digest()

    @property
    def tx_count(self) -> int:
        return len(self.transactions)

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the block."""
        return sum(tx.size_bytes for tx in self.transactions) + 256

    def merkle_tree(self) -> MerkleTree:
        """(Re)build the Merkle tree over the block's transactions."""
        return MerkleTree([tx.envelope_bytes() for tx in self.transactions])

    def verify_data_hash(self) -> bool:
        """Check that the header's data hash matches the transactions."""
        return self.merkle_tree().root == self.header.data_hash

    def transaction_ids(self) -> List[str]:
        return [tx.tx_id for tx in self.transactions]

    def valid_transactions(self) -> List[Transaction]:
        """Transactions marked VALID by the committer (all, if not yet validated)."""
        if not self.validation_flags:
            return list(self.transactions)
        return [
            tx
            for tx, flag in zip(self.transactions, self.validation_flags)
            if flag is TxValidationCode.VALID
        ]

    def validation_summary(self) -> Dict[str, int]:
        """Count of transactions per validation code."""
        summary: Dict[str, int] = {}
        for flag in self.validation_flags:
            summary[flag.value] = summary.get(flag.value, 0) + 1
        return summary

    def find_transaction(self, tx_id: str) -> Optional[Transaction]:
        for tx in self.transactions:
            if tx.tx_id == tx_id:
                return tx
        return None
