"""Ledger data structures.

Mirrors Hyperledger Fabric's ledger layout: an append-only chain of blocks
(each carrying ordered transactions and a hash link to its predecessor), a
*world state* — the latest value and version of every key — and a history
index that records every committed write to a key so chaincode can serve
``GetHistoryForKey`` queries, which is how HyperProv retrieves the
operation history of a data item.
"""

from repro.ledger.transaction import (
    ReadSetEntry,
    WriteSetEntry,
    ReadWriteSet,
    Endorsement,
    Transaction,
    TxValidationCode,
)
from repro.ledger.block import Block, BlockHeader
from repro.ledger.world_state import WorldState, VersionedValue
from repro.ledger.history import HistoryDatabase, HistoryEntry
from repro.ledger.blockchain import BlockStore

__all__ = [
    "ReadSetEntry",
    "WriteSetEntry",
    "ReadWriteSet",
    "Endorsement",
    "Transaction",
    "TxValidationCode",
    "Block",
    "BlockHeader",
    "WorldState",
    "VersionedValue",
    "HistoryDatabase",
    "HistoryEntry",
    "BlockStore",
]
