"""Append-only block store with chain-integrity verification."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.ledger.block import Block
from repro.ledger.transaction import Transaction

GENESIS_PREVIOUS_HASH = "0" * 64


class BlockStore:
    """The ordered, hash-linked sequence of blocks held by one peer."""

    def __init__(self) -> None:
        self._blocks: List[Block] = []
        self._tx_index: Dict[str, Tuple[int, int]] = {}

    # ------------------------------------------------------------------ write
    def append(self, block: Block) -> None:
        """Append ``block`` after verifying number, hash link and data hash."""
        expected_number = len(self._blocks)
        if block.number != expected_number:
            raise ValidationError(
                f"expected block number {expected_number}, got {block.number}"
            )
        expected_previous = (
            self._blocks[-1].hash if self._blocks else GENESIS_PREVIOUS_HASH
        )
        if block.header.previous_hash != expected_previous:
            raise ValidationError(
                f"block {block.number} previous-hash mismatch: "
                f"expected {expected_previous[:12]}…, got {block.header.previous_hash[:12]}…"
            )
        if not block.verify_data_hash():
            raise ValidationError(f"block {block.number} data hash does not match its transactions")
        for position, tx in enumerate(block.transactions):
            self._tx_index[tx.tx_id] = (block.number, position)
        self._blocks.append(block)

    # ------------------------------------------------------------------- read
    @property
    def height(self) -> int:
        """Number of blocks in the chain."""
        return len(self._blocks)

    @property
    def latest_hash(self) -> str:
        return self._blocks[-1].hash if self._blocks else GENESIS_PREVIOUS_HASH

    def block(self, number: int) -> Block:
        if not 0 <= number < len(self._blocks):
            raise NotFoundError(f"block {number} does not exist (height={self.height})")
        return self._blocks[number]

    def latest_block(self) -> Optional[Block]:
        return self._blocks[-1] if self._blocks else None

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def blocks(self) -> List[Block]:
        return list(self._blocks)

    def find_transaction(self, tx_id: str) -> Optional[Transaction]:
        """Locate a transaction anywhere in the chain by its id."""
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        block_number, position = location
        return self._blocks[block_number].transactions[position]

    def transaction_location(self, tx_id: str) -> Optional[Tuple[int, int]]:
        """``(block_number, tx_position)`` of a committed transaction."""
        return self._tx_index.get(tx_id)

    @property
    def total_transactions(self) -> int:
        return len(self._tx_index)

    # ------------------------------------------------------------ verification
    def verify_chain(self) -> bool:
        """Re-check every hash link and data hash in the chain."""
        previous = GENESIS_PREVIOUS_HASH
        for index, block in enumerate(self._blocks):
            if block.number != index:
                return False
            if block.header.previous_hash != previous:
                return False
            if not block.verify_data_hash():
                return False
            previous = block.hash
        return True
