"""World state: the latest value and version of every key.

Fabric stores the world state in LevelDB/CouchDB; the version of a key is
the height (block number, tx number) of the transaction that last wrote
it.  MVCC validation compares the versions recorded in a transaction's
read set against the current world-state versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.ledger.transaction import Version


@dataclass(frozen=True)
class VersionedValue:
    """A committed value together with the version that wrote it."""

    value: str
    version: Version


class WorldState:
    """Versioned key/value store with range and composite-key queries."""

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        self.writes_applied = 0

    def get(self, key: str) -> Optional[VersionedValue]:
        """The latest committed value for ``key``, or ``None``."""
        return self._data.get(key)

    def get_value(self, key: str) -> Optional[str]:
        entry = self._data.get(key)
        return entry.value if entry else None

    def get_version(self, key: str) -> Optional[Version]:
        entry = self._data.get(key)
        return entry.version if entry else None

    def put(self, key: str, value: str, version: Version) -> None:
        """Commit a write (only the committing peer calls this)."""
        self._data[key] = VersionedValue(value=value, version=version)
        self.writes_applied += 1

    def delete(self, key: str, version: Version) -> None:
        """Remove a key from the world state."""
        self._data.pop(key, None)
        self.writes_applied += 1

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[str]:
        return sorted(self._data)

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        for key in sorted(self._data):
            yield key, self._data[key]

    def range_query(self, start_key: str, end_key: str) -> List[Tuple[str, str]]:
        """All ``(key, value)`` pairs with ``start_key <= key < end_key``.

        An empty ``end_key`` means "to the end of the key space", matching
        Fabric's ``GetStateByRange`` semantics.
        """
        results: List[Tuple[str, str]] = []
        for key in sorted(self._data):
            if key < start_key:
                continue
            if end_key and key >= end_key:
                break
            results.append((key, self._data[key].value))
        return results

    def query_by_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """All pairs whose key starts with ``prefix`` (composite-key lookups)."""
        return [
            (key, entry.value)
            for key, entry in self.items()
            if key.startswith(prefix)
        ]

    def snapshot(self) -> Dict[str, str]:
        """Plain ``{key: value}`` copy of the current state."""
        return {key: entry.value for key, entry in self._data.items()}
