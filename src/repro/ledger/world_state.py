"""World state: the latest value and version of every key.

Fabric stores the world state in LevelDB/CouchDB; the version of a key is
the height (block number, tx number) of the transaction that last wrote
it.  MVCC validation compares the versions recorded in a transaction's
read set against the current world-state versions.

The key space is kept in a maintained sorted index (``bisect``-based
insort on insert, a lazily compacted tombstone set on delete) so range
and prefix scans cost O(log n + k) instead of re-sorting the whole key
space per call.  An optional secondary prefix index additionally buckets
keys by their first ``/``-separated segment, which lets prefix-scoped
rich queries fetch their candidate keys without touching the rest of the
key space.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Protocol, Set, Tuple

from repro.ledger.transaction import Version

#: Compact the sorted index once tombstones outnumber this floor *and*
#: half of the live keys (amortizes rebuilds over many deletes).
_COMPACT_MIN_TOMBSTONES = 16


@dataclass(frozen=True)
class VersionedValue:
    """A committed value together with the version that wrote it."""

    value: str
    version: Version


class _SortedKeyIndex:
    """A sorted key list maintained incrementally with lazy deletions.

    Inserts use ``insort`` (O(log n) search + memmove); deletions only
    record a tombstone, and scans skip dead entries until a compaction
    rebuilds the list.  Re-inserting a tombstoned key simply clears the
    tombstone, so the list never holds duplicates.
    """

    def __init__(self) -> None:
        self._keys: List[str] = []
        self._dead: Set[str] = set()

    def __len__(self) -> int:
        return len(self._keys) - len(self._dead)

    def add(self, key: str) -> None:
        if key in self._dead:
            self._dead.discard(key)
            return
        insort(self._keys, key)

    def discard(self, key: str) -> None:
        self._dead.add(key)
        if len(self._dead) >= _COMPACT_MIN_TOMBSTONES and \
                len(self._dead) * 2 >= len(self._keys):
            self.compact()

    def compact(self) -> None:
        """Drop tombstoned entries from the sorted list.

        Rebinds (never mutates) both the key list and the tombstone set:
        in-flight scans hold references to the old objects and keep
        iterating a consistent snapshot.
        """
        if self._dead:
            dead = self._dead
            self._keys = [key for key in self._keys if key not in dead]
            self._dead = set()

    def scan(self, start_key: str = "", end_key: str = "") -> Iterator[str]:
        """Live keys with ``start_key <= key`` and (if set) ``key < end_key``.

        Iterates a stable snapshot: deletions during iteration hide keys
        not yet yielded, and a concurrent compaction cannot shift
        positions under the scan (see :meth:`compact`).
        """
        keys = self._keys
        dead = self._dead
        index = bisect_left(keys, start_key) if start_key else 0
        for position in range(index, len(keys)):
            key = keys[position]
            if end_key and key >= end_key:
                return
            if key not in dead:
                yield key

    def scan_prefix(self, prefix: str, start_after: str = "") -> Iterator[str]:
        """Live keys starting with ``prefix`` (a contiguous sorted run).

        ``start_after`` resumes a paginated scan strictly *after* the
        given key — the bookmark contract: pages never overlap even when
        the bookmark key itself was deleted between pages.
        """
        keys = self._keys
        dead = self._dead
        if start_after and start_after >= prefix:
            index = bisect_right(keys, start_after)
        else:
            index = bisect_left(keys, prefix) if prefix else 0
        for position in range(index, len(keys)):
            key = keys[position]
            if prefix and not key.startswith(prefix):
                return
            if key not in dead:
                yield key


class SecondaryIndex(Protocol):
    """What :class:`WorldState` needs from an attached field-value index.

    The concrete implementation lives in :mod:`repro.query.indexes`; the
    ledger only requires the maintenance half of the contract so the
    dependency arrow keeps pointing query → ledger, never back.
    """

    def update(self, key: str, value: str) -> None:
        """(Re-)index ``key`` after a committed put of ``value``."""

    def remove(self, key: str) -> None:
        """Drop every posting for ``key`` after a committed delete."""


class WorldState:
    """Versioned key/value store with range and composite-key queries."""

    #: Separator used by the optional secondary prefix index to bucket
    #: keys by their first path segment (``tenant/...``, ``perf/...``).
    PREFIX_SEPARATOR = "/"

    def __init__(self, prefix_index: bool = True) -> None:
        self._data: Dict[str, VersionedValue] = {}
        self._index = _SortedKeyIndex()
        #: first-segment bucket → sorted sub-index (secondary prefix index).
        self._buckets: Optional[Dict[str, _SortedKeyIndex]] = (
            {} if prefix_index else None
        )
        #: optional field-value secondary index, maintained transactionally
        #: with every committed put/delete (see ``attach_secondary_index``).
        self._secondary: Optional[SecondaryIndex] = None
        self.writes_applied = 0

    @property
    def secondary_index(self) -> Optional[SecondaryIndex]:
        """The attached field-value index, if any (read path introspection)."""
        return self._secondary

    def attach_secondary_index(self, index: Optional[SecondaryIndex]) -> None:
        """Attach (or detach, with ``None``) a field-value secondary index.

        Existing committed state is reindexed immediately, so an index
        enabled mid-run answers for keys committed before it existed.
        """
        self._secondary = index
        if index is not None:
            for key, entry in self._data.items():
                index.update(key, entry.value)

    def get(self, key: str) -> Optional[VersionedValue]:
        """The latest committed value for ``key``, or ``None``."""
        return self._data.get(key)

    def get_value(self, key: str) -> Optional[str]:
        entry = self._data.get(key)
        return entry.value if entry else None

    def get_version(self, key: str) -> Optional[Version]:
        entry = self._data.get(key)
        return entry.version if entry else None

    def put(self, key: str, value: str, version: Version) -> None:
        """Commit a write (only the committing peer calls this)."""
        if key not in self._data:
            self._index.add(key)
            bucket = self._bucket_for(key)
            if bucket is not None:
                bucket.add(key)
        self._data[key] = VersionedValue(value=value, version=version)
        if self._secondary is not None:
            self._secondary.update(key, value)
        self.writes_applied += 1

    def delete(self, key: str, version: Version) -> None:
        """Remove a key from the world state."""
        if self._data.pop(key, None) is not None:
            self._index.discard(key)
            bucket = self._bucket_for(key)
            if bucket is not None:
                bucket.discard(key)
            if self._secondary is not None:
                self._secondary.remove(key)
        self.writes_applied += 1

    def _bucket_for(self, key: str) -> Optional[_SortedKeyIndex]:
        if self._buckets is None:
            return None
        segment = key.split(self.PREFIX_SEPARATOR, 1)[0]
        bucket = self._buckets.get(segment)
        if bucket is None:
            bucket = self._buckets[segment] = _SortedKeyIndex()
        return bucket

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> List[str]:
        return list(self._index.scan())

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        data = self._data
        for key in self._index.scan():
            entry = data.get(key)
            if entry is not None:  # deleted while iterating
                yield key, entry

    def range_query(self, start_key: str, end_key: str) -> List[Tuple[str, str]]:
        """All ``(key, value)`` pairs with ``start_key <= key < end_key``.

        An empty ``end_key`` means "to the end of the key space", matching
        Fabric's ``GetStateByRange`` semantics.
        """
        return [
            (key, self._data[key].value)
            for key in self._index.scan(start_key, end_key)
        ]

    def range_query_versioned(
        self, start_key: str, end_key: str
    ) -> List[Tuple[str, VersionedValue]]:
        """Range query returning the full versioned entries in one pass.

        The shim records a read (key + version) for every returned pair;
        fetching the :class:`VersionedValue` directly avoids a second
        per-key lookup for the version.
        """
        data = self._data
        return [(key, data[key]) for key in self._index.scan(start_key, end_key)]

    def query_by_prefix(self, prefix: str) -> List[Tuple[str, str]]:
        """All pairs whose key starts with ``prefix`` (composite-key lookups).

        Served from the secondary prefix index when the queried prefix is
        contained in a single first-segment bucket, otherwise from the
        main sorted index (same complexity, larger constant).
        """
        return [
            (key, entry.value)
            for key, entry in self.query_by_prefix_versioned(prefix)
        ]

    def query_by_prefix_versioned(
        self, prefix: str
    ) -> List[Tuple[str, VersionedValue]]:
        """Prefix query returning the full versioned entries in one pass."""
        index: _SortedKeyIndex = self._index
        if self._buckets is not None and prefix:
            segment, separator, _rest = prefix.partition(self.PREFIX_SEPARATOR)
            if separator:  # the prefix names one complete bucket
                bucket = self._buckets.get(segment)
                if bucket is None:
                    return []
                index = bucket
        data = self._data
        return [(key, data[key]) for key in index.scan_prefix(prefix)]

    def prefix_key_estimate(self, prefix: str) -> int:
        """Cheap upper bound on the keys under ``prefix``.

        The planner's cost input: the bucket size when the prefix names a
        single first-segment bucket, the full key count otherwise.  O(1),
        never scans.
        """
        if self._buckets is not None and prefix:
            segment, separator, _rest = prefix.partition(self.PREFIX_SEPARATOR)
            if separator:
                bucket = self._buckets.get(segment)
                return len(bucket) if bucket is not None else 0
        return len(self._data)

    def iter_by_range_versioned(
        self, start_key: str, end_key: str, start_after: str = ""
    ) -> Iterator[Tuple[str, VersionedValue]]:
        """Lazy range scan, optionally resuming strictly after a bookmark."""
        effective_start = start_key
        if start_after and start_after >= start_key:
            effective_start = start_after
        data = self._data
        for key in self._index.scan(effective_start, end_key):
            if start_after and key <= start_after:
                continue
            entry = data.get(key)
            if entry is not None:  # deleted while iterating
                yield key, entry

    def iter_by_prefix_versioned(
        self, prefix: str, start_after: str = ""
    ) -> Iterator[Tuple[str, VersionedValue]]:
        """Lazy variant of :meth:`query_by_prefix_versioned`.

        Yields entries in key order without materialising the full match
        list, optionally resuming strictly after ``start_after`` — the
        building block for bookmark pagination: a caller wanting the
        first page of *k* rows touches O(log n + k) work instead of the
        whole prefix run.
        """
        index: _SortedKeyIndex = self._index
        if self._buckets is not None and prefix:
            segment, separator, _rest = prefix.partition(self.PREFIX_SEPARATOR)
            if separator:  # the prefix names one complete bucket
                bucket = self._buckets.get(segment)
                if bucket is None:
                    return
                index = bucket
        data = self._data
        for key in index.scan_prefix(prefix, start_after):
            entry = data.get(key)
            if entry is not None:  # deleted while iterating
                yield key, entry

    def snapshot(self) -> Dict[str, str]:
        """Plain ``{key: value}`` copy of the current state."""
        return {key: entry.value for key, entry in self._data.items()}
