"""Per-key history index (Fabric's history database).

HyperProv's core query — "show me the full operation history / lineage of
this data item" — is served by the chaincode calling
``GetHistoryForKey``, which walks this index.  Every committed write
appends an entry recording the transaction, block height, timestamp and
value written.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class HistoryEntry:
    """One committed modification of a key."""

    key: str
    tx_id: str
    block_number: int
    tx_number: int
    timestamp: float
    value: Optional[str]
    is_delete: bool = False


class HistoryDatabase:
    """Append-only index of every committed write, grouped by key."""

    def __init__(self) -> None:
        self._entries: Dict[str, List[HistoryEntry]] = {}
        # Maintained sorted key list: the index is append-only (keys are
        # never removed, matching Fabric's history database), so one
        # insort per *new* key replaces a full re-sort per ``keys()`` call.
        self._sorted_keys: List[str] = []
        self.total_entries = 0

    def record(
        self,
        key: str,
        tx_id: str,
        block_number: int,
        tx_number: int,
        timestamp: float,
        value: Optional[str],
        is_delete: bool = False,
    ) -> HistoryEntry:
        """Append a history entry for ``key`` and return it."""
        entry = HistoryEntry(
            key=key,
            tx_id=tx_id,
            block_number=block_number,
            tx_number=tx_number,
            timestamp=timestamp,
            value=value,
            is_delete=is_delete,
        )
        existing = self._entries.get(key)
        if existing is None:
            self._entries[key] = [entry]
            insort(self._sorted_keys, key)
        else:
            existing.append(entry)
        self.total_entries += 1
        return entry

    def history_for_key(self, key: str) -> List[HistoryEntry]:
        """All modifications of ``key`` in commit order (oldest first)."""
        return list(self._entries.get(key, []))

    def latest(self, key: str) -> Optional[HistoryEntry]:
        """The most recent modification of ``key``."""
        entries = self._entries.get(key)
        return entries[-1] if entries else None

    def version_count(self, key: str) -> int:
        """How many times ``key`` has been written."""
        return len(self._entries.get(key, []))

    def keys(self) -> List[str]:
        return list(self._sorted_keys)
