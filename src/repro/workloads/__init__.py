"""Workload generation for benchmarks and examples.

Provides deterministic payload generators for the IoT-at-the-edge use case
the paper motivates (sensor readings, camera images, processed derivative
files) and arrival processes (closed-loop and open-loop Poisson) that
drive the benchmark harness.
"""

from repro.workloads.payloads import (
    PayloadGenerator,
    SensorReadingGenerator,
    ImagePayloadGenerator,
    DataItem,
)
from repro.workloads.arrivals import ArrivalProcess, ClosedLoopSchedule, PoissonSchedule
from repro.workloads.scenarios import (
    IoTPipelineWorkload,
    PipelineStage,
    SkewedTenantWorkload,
    TenantLoadResult,
)

__all__ = [
    "PayloadGenerator",
    "SensorReadingGenerator",
    "ImagePayloadGenerator",
    "DataItem",
    "ArrivalProcess",
    "ClosedLoopSchedule",
    "PoissonSchedule",
    "IoTPipelineWorkload",
    "PipelineStage",
    "SkewedTenantWorkload",
    "TenantLoadResult",
]
