"""Deterministic payload generators."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.common.hashing import checksum_of
from repro.simulation.randomness import DeterministicRandom


@dataclass
class DataItem:
    """A generated data item ready to be stored through HyperProv."""

    key: str
    data: bytes
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    @property
    def checksum(self) -> str:
        return checksum_of(self.data)


class PayloadGenerator:
    """Base generator producing fixed-size pseudo-random payloads."""

    def __init__(self, size_bytes: int, seed: int = 42, prefix: str = "item") -> None:
        if size_bytes < 0:
            raise ValueError("payload size cannot be negative")
        self.size_bytes = size_bytes
        self.prefix = prefix
        self._rng = DeterministicRandom(seed)
        self._counter = 0

    def _payload(self, size: int) -> bytes:
        # A repeated deterministic block keeps generation cheap for large
        # payloads while still making every item unique (counter suffix).
        block = self._rng.bytes(min(size, 4096)) if size else b""
        if size <= len(block):
            body = block[:size]
        else:
            repeats = size // max(1, len(block)) + 1
            body = (block * repeats)[:size]
        return body

    def next_item(self) -> DataItem:
        """Generate the next data item."""
        self._counter += 1
        key = f"{self.prefix}/{self._counter:06d}"
        suffix = f"#{self._counter}".encode("ascii")
        data = self._payload(max(0, self.size_bytes - len(suffix))) + suffix
        return DataItem(key=key, data=data, metadata={"sequence": self._counter})

    def next_key(self) -> str:
        """Advance the sequence and return only the next item's key.

        Metadata-only workloads (provenance posts whose payload lives
        elsewhere) never touch the payload bytes; skipping their
        generation keeps the benchmark driver off the simulator's
        wall-clock profile.  The key sequence is identical to the one
        :meth:`next_item` produces.
        """
        self._counter += 1
        return f"{self.prefix}/{self._counter:06d}"

    def items(self, count: int) -> Iterator[DataItem]:
        """Generate ``count`` items lazily."""
        for _ in range(count):
            yield self.next_item()


class SensorReadingGenerator(PayloadGenerator):
    """Small JSON sensor readings (temperature/humidity/air quality)."""

    def __init__(self, sensor_id: str = "sensor-1", seed: int = 42) -> None:
        super().__init__(size_bytes=0, seed=seed, prefix=f"sensors/{sensor_id}")
        self.sensor_id = sensor_id

    def next_item(self) -> DataItem:
        self._counter += 1
        reading = {
            "sensor": self.sensor_id,
            "sequence": self._counter,
            "temperature_c": round(self._rng.uniform(-20.0, 35.0), 2),
            "humidity_pct": round(self._rng.uniform(10.0, 95.0), 1),
            "pm25_ugm3": round(self._rng.uniform(1.0, 80.0), 1),
        }
        data = json.dumps(reading, sort_keys=True).encode("utf-8")
        key = f"{self.prefix}/reading-{self._counter:06d}"
        return DataItem(key=key, data=data, metadata={"type": "sensor-reading"})


class ImagePayloadGenerator(PayloadGenerator):
    """Camera-image-sized binary payloads (hundreds of KB to a few MB)."""

    def __init__(
        self,
        camera_id: str = "camera-1",
        size_bytes: int = 2 * 1024 * 1024,
        size_jitter: float = 0.2,
        seed: int = 42,
    ) -> None:
        super().__init__(size_bytes=size_bytes, seed=seed, prefix=f"cameras/{camera_id}")
        self.camera_id = camera_id
        self.size_jitter = size_jitter

    def next_item(self) -> DataItem:
        self._counter += 1
        size = int(self._rng.gaussian_jitter(self.size_bytes, self.size_jitter)) or 1
        data = self._payload(size) + f"#frame-{self._counter}".encode("ascii")
        key = f"{self.prefix}/frame-{self._counter:06d}"
        return DataItem(
            key=key,
            data=data,
            metadata={"type": "camera-frame", "camera": self.camera_id},
        )
