"""End-to-end workload scenarios for examples, benches and integration tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.protocol import SubmitHandle
from repro.api.service import ProvenanceSession
from repro.common.hashing import checksum_of
from repro.common.metrics import percentile
from repro.core.client import HyperProvClient
from repro.workloads.payloads import DataItem, ImagePayloadGenerator, SensorReadingGenerator


@dataclass
class PipelineStage:
    """One stage of a derivation pipeline (e.g. raw image → thumbnail)."""

    name: str
    #: Output size as a fraction of the combined input size.
    reduction_factor: float = 0.25
    metadata: Dict[str, object] = field(default_factory=dict)


class IoTPipelineWorkload:
    """The IoT edge scenario the paper's introduction motivates.

    Edge sensors and cameras produce raw data items; edge-processing
    stages derive aggregated or reduced artifacts from them (thumbnails,
    anomaly summaries).  Every item and every derivation is recorded
    through the unified :class:`~repro.api.ProvenanceSession` API —
    submissions are futures that complete when the recording transaction
    commits — giving a multi-level lineage graph to query.

    Accepts either a session or a bare :class:`HyperProvClient` (wrapped
    in a default session for backward compatibility).
    """

    def __init__(
        self,
        client: Union[HyperProvClient, ProvenanceSession],
        sensor_count: int = 2,
        camera_count: int = 1,
        image_size_bytes: int = 256 * 1024,
        seed: int = 42,
    ) -> None:
        if isinstance(client, ProvenanceSession):
            self.session = client
        else:
            self.session = ProvenanceSession(client.as_store())
        self.sensors = [
            SensorReadingGenerator(sensor_id=f"sensor-{i + 1}", seed=seed + i)
            for i in range(sensor_count)
        ]
        self.cameras = [
            ImagePayloadGenerator(
                camera_id=f"camera-{i + 1}", size_bytes=image_size_bytes, seed=seed + 100 + i
            )
            for i in range(camera_count)
        ]
        self.raw_posts: List[SubmitHandle] = []
        self.derived_posts: List[SubmitHandle] = []

    # ----------------------------------------------------------- ingestion
    def ingest_round(self) -> List[SubmitHandle]:
        """Produce one reading per sensor and one frame per camera, store all.

        Submissions are non-blocking: the returned handles complete when
        the caller drains the deployment (or the session).
        """
        posts: List[SubmitHandle] = []
        for generator in [*self.sensors, *self.cameras]:
            item: DataItem = generator.next_item()
            post = self.session.submit(
                item.key, item.data, metadata=dict(item.metadata)
            )
            posts.append(post)
        self.raw_posts.extend(posts)
        return posts

    # ---------------------------------------------------------- derivation
    def derive(
        self,
        stage: PipelineStage,
        source_posts: Optional[List[SubmitHandle]] = None,
        output_key: Optional[str] = None,
    ) -> SubmitHandle:
        """Create a derived artifact from previously stored items.

        The derived payload is a deterministic reduction of the inputs and
        its on-chain record lists every input key as a dependency, which is
        what makes lineage queries meaningful.
        """
        sources = source_posts if source_posts is not None else self.raw_posts
        if not sources:
            raise ValueError("cannot derive from an empty source set")
        combined = b"".join(post.record.checksum.encode("ascii") for post in sources)
        output_size = max(16, int(len(combined) * stage.reduction_factor))
        derived_data = (combined * (output_size // max(1, len(combined)) + 1))[:output_size]
        key = output_key or f"derived/{stage.name}/{len(self.derived_posts) + 1:04d}"
        post = self.session.submit(
            key,
            derived_data,
            dependencies=tuple(p.request.key for p in sources),
            metadata={"stage": stage.name, **stage.metadata},
        )
        self.derived_posts.append(post)
        return post

    # ------------------------------------------------------------- checking
    def verify_all(self) -> Dict[str, bool]:
        """Re-fetch every stored item and verify its checksum on chain."""
        storage = getattr(self.session.backend, "storage", None)
        results: Dict[str, bool] = {}
        for post in [*self.raw_posts, *self.derived_posts]:
            key = post.request.key
            obj = storage.get_object(post.record.checksum) if storage else None
            if obj is None:
                results[key] = False
                continue
            results[key] = (
                checksum_of(obj.data) == post.record.checksum
                and bool(self.session.verify(key, obj.data))
            )
        return results

    @property
    def total_items(self) -> int:
        return len(self.raw_posts) + len(self.derived_posts)


# --------------------------------------------------------------------------
# Skewed multi-tenant load (tenant-isolation benches and fairness tests)
# --------------------------------------------------------------------------
@dataclass
class TenantLoadResult:
    """Per-tenant outcome of one skewed-load run."""

    tenant: str
    submitted: int
    committed: int
    response_times_s: List[float] = field(default_factory=list)

    @property
    def mean_response_s(self) -> float:
        if not self.response_times_s:
            return float("nan")
        return sum(self.response_times_s) / len(self.response_times_s)

    def response_percentile_s(self, pct: float) -> float:
        if not self.response_times_s:
            return float("nan")
        return percentile(self.response_times_s, pct)

    @property
    def p95_response_s(self) -> float:
        return self.response_percentile_s(95)


class SkewedTenantWorkload:
    """Open-loop load from tenants submitting at very different rates.

    The scenario behind tenant-aware scheduling: a *heavy* tenant floods
    the ordering path while a *light* tenant trickles requests in.  Every
    submission is a metadata-only provenance post (no off-chain payload),
    so the measured response times isolate the ordering/commit path where
    the intake scheduler acts.  ``run()`` schedules both tenants' arrivals
    on the deployment's virtual clock, drains, and reports per-tenant
    commit latencies — compare the light tenant's p95 under ``fifo`` vs
    ``fair-share`` (or vs its solo run) to quantify starvation.
    """

    def __init__(
        self,
        service: Any,
        light_requests: int = 10,
        skew: int = 10,
        light_interval_s: float = 0.05,
        heavy_interval_s: Optional[float] = None,
        light_tenant: str = "light",
        heavy_tenant: str = "heavy",
        payload_checksum: str = "ab" * 32,
    ) -> None:
        if light_requests < 1:
            raise ValueError("light_requests must be >= 1")
        if skew < 1:
            raise ValueError("skew must be >= 1")
        self.service = service
        self.light_requests = light_requests
        self.heavy_requests = light_requests * skew
        self.light_interval_s = light_interval_s
        #: Heavy arrivals default to the same window as the light tenant's.
        self.heavy_interval_s = (
            heavy_interval_s
            if heavy_interval_s is not None
            else light_interval_s / skew
        )
        self.light_tenant = light_tenant
        self.heavy_tenant = heavy_tenant
        self.payload_checksum = payload_checksum

    def _submit_all(
        self, session: ProvenanceSession, tenant: str, count: int, interval_s: float
    ) -> List[Tuple[SubmitHandle, float]]:
        start = self.service.deployment.engine.now
        submissions: List[Tuple[SubmitHandle, float]] = []
        for index in range(count):
            at_time = start + index * interval_s
            handle = session.submit(
                f"{tenant}/item-{index:05d}",
                checksum=self.payload_checksum,
                location=f"ext://{tenant}/{index}",
                at_time=at_time,
            )
            submissions.append((handle, at_time))
        return submissions

    @staticmethod
    def _collect(tenant: str, submissions: List[Tuple[SubmitHandle, float]]) -> TenantLoadResult:
        result = TenantLoadResult(
            tenant=tenant, submitted=len(submissions), committed=0
        )
        for handle, at_time in submissions:
            if handle.done and handle.ok:
                result.committed += 1
                result.response_times_s.append(handle.committed_at - at_time)
        return result

    def run(self, only_light: bool = False) -> Dict[str, TenantLoadResult]:
        """Run the skewed load; ``only_light`` measures the light tenant solo."""
        results: Dict[str, TenantLoadResult] = {}
        with self.service.session(tenant=self.light_tenant) as light:
            light_submissions = self._submit_all(
                light, self.light_tenant, self.light_requests, self.light_interval_s
            )
            if not only_light:
                with self.service.session(tenant=self.heavy_tenant) as heavy:
                    heavy_submissions = self._submit_all(
                        heavy, self.heavy_tenant, self.heavy_requests,
                        self.heavy_interval_s,
                    )
                    self.service.drain()
                    results[self.heavy_tenant] = self._collect(
                        self.heavy_tenant, heavy_submissions
                    )
            self.service.drain()
            results[self.light_tenant] = self._collect(
                self.light_tenant, light_submissions
            )
        return results
