"""End-to-end workload scenarios for examples and integration tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.api.protocol import SubmitHandle
from repro.api.service import ProvenanceSession
from repro.common.hashing import checksum_of
from repro.core.client import HyperProvClient
from repro.workloads.payloads import DataItem, ImagePayloadGenerator, SensorReadingGenerator


@dataclass
class PipelineStage:
    """One stage of a derivation pipeline (e.g. raw image → thumbnail)."""

    name: str
    #: Output size as a fraction of the combined input size.
    reduction_factor: float = 0.25
    metadata: Dict[str, object] = field(default_factory=dict)


class IoTPipelineWorkload:
    """The IoT edge scenario the paper's introduction motivates.

    Edge sensors and cameras produce raw data items; edge-processing
    stages derive aggregated or reduced artifacts from them (thumbnails,
    anomaly summaries).  Every item and every derivation is recorded
    through the unified :class:`~repro.api.ProvenanceSession` API —
    submissions are futures that complete when the recording transaction
    commits — giving a multi-level lineage graph to query.

    Accepts either a session or a bare :class:`HyperProvClient` (wrapped
    in a default session for backward compatibility).
    """

    def __init__(
        self,
        client: Union[HyperProvClient, ProvenanceSession],
        sensor_count: int = 2,
        camera_count: int = 1,
        image_size_bytes: int = 256 * 1024,
        seed: int = 42,
    ) -> None:
        if isinstance(client, ProvenanceSession):
            self.session = client
        else:
            self.session = ProvenanceSession(client.as_store())
        self.sensors = [
            SensorReadingGenerator(sensor_id=f"sensor-{i + 1}", seed=seed + i)
            for i in range(sensor_count)
        ]
        self.cameras = [
            ImagePayloadGenerator(
                camera_id=f"camera-{i + 1}", size_bytes=image_size_bytes, seed=seed + 100 + i
            )
            for i in range(camera_count)
        ]
        self.raw_posts: List[SubmitHandle] = []
        self.derived_posts: List[SubmitHandle] = []

    # ----------------------------------------------------------- ingestion
    def ingest_round(self) -> List[SubmitHandle]:
        """Produce one reading per sensor and one frame per camera, store all.

        Submissions are non-blocking: the returned handles complete when
        the caller drains the deployment (or the session).
        """
        posts: List[SubmitHandle] = []
        for generator in [*self.sensors, *self.cameras]:
            item: DataItem = generator.next_item()
            post = self.session.submit(
                item.key, item.data, metadata=dict(item.metadata)
            )
            posts.append(post)
        self.raw_posts.extend(posts)
        return posts

    # ---------------------------------------------------------- derivation
    def derive(
        self,
        stage: PipelineStage,
        source_posts: Optional[List[SubmitHandle]] = None,
        output_key: Optional[str] = None,
    ) -> SubmitHandle:
        """Create a derived artifact from previously stored items.

        The derived payload is a deterministic reduction of the inputs and
        its on-chain record lists every input key as a dependency, which is
        what makes lineage queries meaningful.
        """
        sources = source_posts if source_posts is not None else self.raw_posts
        if not sources:
            raise ValueError("cannot derive from an empty source set")
        combined = b"".join(post.record.checksum.encode("ascii") for post in sources)
        output_size = max(16, int(len(combined) * stage.reduction_factor))
        derived_data = (combined * (output_size // max(1, len(combined)) + 1))[:output_size]
        key = output_key or f"derived/{stage.name}/{len(self.derived_posts) + 1:04d}"
        post = self.session.submit(
            key,
            derived_data,
            dependencies=tuple(p.request.key for p in sources),
            metadata={"stage": stage.name, **stage.metadata},
        )
        self.derived_posts.append(post)
        return post

    # ------------------------------------------------------------- checking
    def verify_all(self) -> Dict[str, bool]:
        """Re-fetch every stored item and verify its checksum on chain."""
        storage = getattr(self.session.backend, "storage", None)
        results: Dict[str, bool] = {}
        for post in [*self.raw_posts, *self.derived_posts]:
            key = post.request.key
            obj = storage.get_object(post.record.checksum) if storage else None
            if obj is None:
                results[key] = False
                continue
            results[key] = (
                checksum_of(obj.data) == post.record.checksum
                and bool(self.session.verify(key, obj.data))
            )
        return results

    @property
    def total_items(self) -> int:
        return len(self.raw_posts) + len(self.derived_posts)
