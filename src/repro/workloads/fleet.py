"""Fleet-scale shard-disjoint topology and metadata-post workload.

The paper's testbeds are four-machine networks; this module scales the
simulator itself to a *fleet*: thousands of devices posting provenance
metadata across several independent sites.  Each site is one
:class:`~repro.fabric.network.ChannelShard` — its own channel, ordering
service, peers and device population — and sites share **nothing**: no
peer, no link, no RNG stream, no transaction-id namespace.

That disjointness is the load-bearing property.  A site produces exactly
the same virtual-time behaviour whether it runs

* next to its siblings on one engine (``build_fleet(spec)`` — the
  sequential baseline), or
* alone in a worker process (``build_fleet(spec, sites=[s])`` — what the
  parallel executor forks), because

  - every RNG stream is label-forked (stateless: seed + label) so link
    jitter and device draws never depend on construction or draw order
    across sites,
  - transaction ids come from a per-site namespace (``tx-s{site}-N``), so
    id lengths — which feed proposal ``size_bytes`` and therefore virtual
    transfer times — never depend on cross-site submission interleaving,
  - per-site event chains only schedule per-site events, so the engine's
    (timestamp, insertion) order preserves each site's relative order
    under any interleaving, and
  - fault injection is site-local: partition windows isolate one replica
    *per site* at fleet-wide virtual times, and churn is cut out of the
    arrival schedules themselves (:class:`~repro.workloads.arrivals.CohortArrivalPlan`).

The commit log (one line per submitted post, in submission order) plus its
SHA-256 anchor digest is how equivalence is checked — byte-identical
between the sequential engine and the parallel executor.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaincode.hyperprov import HyperProvChaincode
from repro.common.errors import ConfigurationError
from repro.common.hashing import checksum_of
from repro.consensus.batching import BatchConfig
from repro.consensus.solo import SoloOrderingService
from repro.devices.model import DeviceModel
from repro.devices.profiles import DESKTOP_PROFILES, RPI_PROFILES, XEON_E5_1603
from repro.fabric.channel import Channel
from repro.fabric.network import FabricNetwork, FabricNetworkConfig
from repro.fabric.peer import Peer
from repro.fabric.proposal import TransactionHandle
from repro.membership.identity import Organization
from repro.membership.msp import MSP
from repro.membership.policies import majority_of
from repro.network.fabric import NetworkFabric
from repro.simulation.engine import SimulationEngine
from repro.simulation.randomness import DeterministicRandom
from repro.workloads.arrivals import CohortArrivalPlan


def site_peer_name(site: int, replica: int) -> str:
    return f"s{site}-peer{replica}"


def site_orderer_name(site: int) -> str:
    return f"s{site}-orderer"


def device_name(index: int) -> str:
    return f"dev{index}"


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of a fleet run (pickleable: crosses the worker boundary).

    Workers rebuild their site locally from this spec instead of receiving
    topologies or 10k arrival timelines over a pipe — the command boundary
    between the coordinator and a shard worker is this object plus the
    site index.
    """

    devices: int = 1000
    shards: int = 2
    #: Per-device metadata-post rate (posts/second of virtual time).
    rate_per_device_s: float = 0.02
    duration_s: float = 300.0
    seed: int = 42
    #: Fraction of devices that leave mid-run and rejoin (schedule gaps).
    churn_fraction: float = 0.0
    churn_offline_fraction: float = 0.25
    #: ``(start_s, end_s)`` windows during which each site's last peer
    #: replica is partitioned away (it catches up after the heal).
    partition_windows: Tuple[Tuple[float, float], ...] = ()
    payload_size_bytes: int = 1024
    peers_per_site: int = 2
    batch_config: BatchConfig = field(default_factory=BatchConfig)
    #: Per-envelope orderer intake pacing (also the barrier lookahead floor).
    orderer_intake_interval_s: float = 0.0

    def validate(self) -> None:
        if self.devices < 1:
            raise ConfigurationError("a fleet needs at least one device")
        if self.shards < 1:
            raise ConfigurationError("a fleet needs at least one shard")
        if self.devices < self.shards:
            raise ConfigurationError("a fleet needs at least one device per shard")
        if self.rate_per_device_s < 0:
            raise ConfigurationError("per-device rate cannot be negative")
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.peers_per_site < 1:
            raise ConfigurationError("each site needs at least one peer")
        if self.payload_size_bytes < 0:
            raise ConfigurationError("payload size cannot be negative")
        if self.orderer_intake_interval_s < 0:
            raise ConfigurationError("intake interval cannot be negative")
        self.batch_config.validate()
        previous_end = 0.0
        for start, end in self.partition_windows:
            if start < previous_end:
                raise ConfigurationError(
                    "partition windows must be sorted and non-overlapping"
                )
            if end <= start:
                raise ConfigurationError("partition window must end after it starts")
            previous_end = end

    def arrival_plan(self) -> CohortArrivalPlan:
        """The fleet's (deterministic) arrival schedules, churn gaps cut."""
        return CohortArrivalPlan(
            devices=self.devices,
            shards=self.shards,
            rate_per_device_s=self.rate_per_device_s,
            duration_s=self.duration_s,
            seed=self.seed,
            churn_fraction=self.churn_fraction,
            churn_offline_fraction=self.churn_offline_fraction,
        )

    def site_of_device(self, index: int) -> int:
        return index % self.shards


@dataclass
class FleetDeployment:
    """One built fleet: all sites on one engine, or a single-site slice."""

    spec: FleetSpec
    #: Sites hosted by this build, in shard-index order.
    sites: List[int]
    engine: SimulationEngine
    network: NetworkFabric
    fabric: FabricNetwork
    #: site → shard index on ``fabric`` (identity for combined builds).
    shard_of_site: Dict[int, int]
    #: Submission-ordered ``(device_index, handle)`` pairs per site,
    #: populated by :func:`submit_fleet`.
    handles: Dict[int, List[Tuple[int, TransactionHandle]]] = field(
        default_factory=dict
    )

    def drain(self, max_events: int = 50_000_000) -> None:
        self.fabric.flush_and_drain(max_events=max_events)


def build_fleet(
    spec: FleetSpec,
    sites: Optional[Sequence[int]] = None,
    batch_commit_delivery: bool = False,
) -> FleetDeployment:
    """Assemble fleet sites on one engine.

    ``sites=None`` builds every site (the combined/sequential deployment);
    ``sites=[s]`` builds one site alone — the shard-worker build.  Both
    derive every stream and namespace from per-site labels, so the builds
    are virtual-time interchangeable.
    """
    spec.validate()
    selected = list(range(spec.shards)) if sites is None else sorted(set(sites))
    for site in selected:
        if not 0 <= site < spec.shards:
            raise ConfigurationError(f"site {site} is out of range for {spec.shards} shards")
    if not selected:
        raise ConfigurationError("at least one site must be built")

    engine = SimulationEngine()
    rng = DeterministicRandom(spec.seed)
    network = NetworkFabric(engine=engine, rng=rng.fork("network"))

    fabric: Optional[FabricNetwork] = None
    shard_of_site: Dict[int, int] = {}
    site_orgs: Dict[int, Organization] = {}
    for site in selected:
        org = Organization(f"org-s{site}")
        site_orgs[site] = org
        msp = MSP([org])
        channel = Channel(
            name=f"fleet-channel-{site}", msp=msp, batch_config=spec.batch_config
        )
        orderer_node = site_orderer_name(site)
        orderer_device = DeviceModel(
            name=orderer_node,
            profile=XEON_E5_1603,
            rng=rng.fork(f"device:{orderer_node}"),
        )
        network.register_node(orderer_node, profile=XEON_E5_1603.nic)
        orderer = SoloOrderingService(
            name=orderer_node,
            engine=engine,
            batch_config=spec.batch_config,
            intake_interval_s=spec.orderer_intake_interval_s,
        )
        peers: List[Peer] = []
        for replica in range(spec.peers_per_site):
            peer_node = site_peer_name(site, replica)
            profile = DESKTOP_PROFILES[replica % len(DESKTOP_PROFILES)]
            device = DeviceModel(
                name=peer_node, profile=profile, rng=rng.fork(f"device:{peer_node}")
            )
            identity = org.enroll(f"peer{replica}-s{site}", role="peer")
            peers.append(
                Peer(name=peer_node, identity=identity, device=device, channel=channel)
            )
        if fabric is None:
            fabric = FabricNetwork(
                engine=engine,
                network=network,
                channel=channel,
                orderer=orderer,
                orderer_node=orderer_node,
                orderer_device=orderer_device,
                config=FabricNetworkConfig(
                    batch_commit_delivery=batch_commit_delivery
                ),
            )
            index = 0
        else:
            index = fabric.add_channel(
                channel,
                orderer=orderer,
                orderer_node=orderer_node,
                orderer_device=orderer_device,
            )
        fabric.set_tx_namespace(index, f"tx-s{site}")
        for peer in peers:
            fabric.add_peer(peer, shard=index)
        channel.instantiate_chaincode(
            HyperProvChaincode(), endorsement_policy=majority_of([org.name])
        )
        shard_of_site[site] = index

    assert fabric is not None
    built = set(selected)
    for index in range(spec.devices):
        site = spec.site_of_device(index)
        if site not in built:
            continue
        name = device_name(index)
        org = site_orgs[site]
        identity = org.enroll(name, role="client")
        device = DeviceModel(
            name=name,
            profile=RPI_PROFILES[index % len(RPI_PROFILES)],
            rng=rng.fork(f"device:{name}"),
        )
        fabric.add_client(
            name,
            identity=identity,
            device=device,
            host_node=name,
            anchor_peer=site_peer_name(site, 0),
        )

    deployment = FleetDeployment(
        spec=spec,
        sites=selected,
        engine=engine,
        network=network,
        fabric=fabric,
        shard_of_site=shard_of_site,
    )
    _schedule_partition_windows(deployment)
    return deployment


def _schedule_partition_windows(deployment: FleetDeployment) -> None:
    """Install the spec's partition windows as simulation events.

    Each window isolates the *last* peer replica of every built site (the
    anchor replica and orderer stay connected, so commits keep flowing and
    the isolated replica catches up from the ordered-block log after the
    heal).  Window times are fleet-wide, so the groups a solo build
    installs are exactly the site-local slice of the combined groups —
    intra-site reachability is identical either way.
    """
    spec = deployment.spec
    if not spec.partition_windows or spec.peers_per_site < 2:
        return
    partitions = deployment.network.partitions
    groups = [
        [site_peer_name(site, spec.peers_per_site - 1)] for site in deployment.sites
    ]
    for start, end in spec.partition_windows:
        deployment.engine.schedule_at(
            start,
            lambda g=groups: partitions.partition(g),
            label="fleet:partition",
        )
        deployment.engine.schedule_at(end, partitions.heal, label="fleet:heal")


def submit_fleet(
    deployment: FleetDeployment, plan: Optional[CohortArrivalPlan] = None
) -> int:
    """Schedule every metadata post of the deployment's sites.

    Submissions happen in merged ``(time, device)`` order; a solo build's
    order is exactly the site-local subsequence of the combined order, so
    per-site handle minting (and therefore tx ids) match.  Returns the
    number of posts scheduled.
    """
    spec = deployment.spec
    plan = plan or spec.arrival_plan()
    built = set(deployment.sites)
    post_counts: Dict[int, int] = {}
    submitted = 0
    for site in deployment.sites:
        deployment.handles.setdefault(site, [])
    for at_time, index in plan.merged():
        site = spec.site_of_device(index)
        if site not in built:
            continue
        sequence = post_counts.get(index, 0)
        post_counts[index] = sequence + 1
        key = f"fleet/{device_name(index)}/r{sequence}"
        args = [
            key,
            checksum_of(key.encode("utf-8")),
            f"ext://{key}",
            "[]",
            "{}",
            str(spec.payload_size_bytes),
        ]
        handle = deployment.fabric.submit_transaction(
            device_name(index),
            "hyperprov",
            "set",
            args,
            at_time=at_time,
            payload_size_bytes=spec.payload_size_bytes,
            shard=deployment.shard_of_site[site],
        )
        deployment.handles[site].append((index, handle))
        submitted += 1
    return submitted


def commit_log_lines(deployment: FleetDeployment, site: int) -> List[str]:
    """One line per post of one site, in submission order.

    Lines carry everything virtual-time-observable about a post — tx id,
    submit/commit times (``repr`` so float identity is exact), validation
    code and block number — so equal logs mean equal simulations.
    """
    lines: List[str] = []
    for index, handle in deployment.handles.get(site, []):
        if handle.is_complete:
            status = handle.validation_code.name
            committed = repr(handle.committed_at)
            block = str(handle.commit_block)
        else:
            status = "PENDING"
            committed = "-"
            block = "-"
        lines.append(
            f"s{site};{device_name(index)};{handle.tx_id};"
            f"{handle.submitted_at!r};{status};{committed};{block}"
        )
    return lines


def commit_anchor(lines_by_site: Dict[int, List[str]]) -> str:
    """SHA-256 over every site's commit log, in site order.

    The determinism anchor committed to ``BENCH_PERF.json`` and gated in
    CI: the sequential engine and the parallel executor must produce the
    same digest.
    """
    digest = hashlib.sha256()
    for site in sorted(lines_by_site):
        for line in lines_by_site[site]:
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
    return digest.hexdigest()


def commit_counts(deployment: FleetDeployment, site: int) -> Dict[str, int]:
    """Committed / failed / pending post counts for one site."""
    committed = failed = pending = 0
    for _, handle in deployment.handles.get(site, []):
        if not handle.is_complete:
            pending += 1
        elif handle.is_valid:
            committed += 1
        else:
            failed += 1
    return {"committed": committed, "failed": failed, "pending": pending}
