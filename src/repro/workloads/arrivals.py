"""Arrival processes: when transactions are submitted.

Two models are provided:

* :class:`ClosedLoopSchedule` — a fixed number of outstanding clients,
  each submitting its next request as soon as the previous one finishes
  (this is how the paper's custom benchmarking program drives load), and
* :class:`PoissonSchedule` — open-loop arrivals at a target rate, used by
  the energy benchmark to hold a load level for a measurement interval.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, List

from repro.common.errors import ConfigurationError
from repro.simulation.randomness import DeterministicRandom


class ArrivalProcess(ABC):
    """Produces the virtual-time points at which requests are issued."""

    @abstractmethod
    def arrival_times(self) -> Iterator[float]:
        """Yield absolute submission times, in non-decreasing order."""


class ClosedLoopSchedule(ArrivalProcess):
    """Back-to-back submissions from ``concurrency`` logical clients.

    The discrete-event flow completes each transaction asynchronously, so
    the closed loop is approximated by pacing each logical client at its
    measured service time; the harness refines the pacing iteratively.
    """

    def __init__(
        self,
        total_requests: int,
        concurrency: int = 1,
        think_time_s: float = 0.0,
        estimated_service_time_s: float = 0.05,
    ) -> None:
        if total_requests < 1:
            raise ConfigurationError("total_requests must be >= 1")
        if concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        self.total_requests = total_requests
        self.concurrency = concurrency
        self.think_time_s = think_time_s
        self.estimated_service_time_s = estimated_service_time_s

    def arrival_times(self) -> Iterator[float]:
        period = self.estimated_service_time_s + self.think_time_s
        issued = 0
        round_index = 0
        while issued < self.total_requests:
            base = round_index * period
            for lane in range(self.concurrency):
                if issued >= self.total_requests:
                    break
                # Stagger lanes slightly so they do not collide on the client CPU.
                yield base + lane * (period / max(1, self.concurrency) / 10.0)
                issued += 1
            round_index += 1


class PoissonSchedule(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate_per_s`` for ``duration_s``."""

    def __init__(self, rate_per_s: float, duration_s: float, seed: int = 42,
                 start_time_s: float = 0.0) -> None:
        if rate_per_s < 0:
            raise ConfigurationError("arrival rate cannot be negative")
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self.rate_per_s = rate_per_s
        self.duration_s = duration_s
        self.start_time_s = start_time_s
        self._rng = DeterministicRandom(seed)

    def arrival_times(self) -> Iterator[float]:
        if self.rate_per_s == 0:
            return
        cursor = self.start_time_s
        end = self.start_time_s + self.duration_s
        mean_gap = 1.0 / self.rate_per_s
        while True:
            cursor += self._rng.exponential(mean_gap)
            if cursor >= end:
                return
            yield cursor

    def expected_count(self) -> int:
        """Expected number of arrivals over the schedule."""
        return int(self.rate_per_s * self.duration_s)


def merge_schedules(schedules: List[ArrivalProcess]) -> List[float]:
    """Merge several arrival processes into one sorted submission list."""
    times: List[float] = []
    for schedule in schedules:
        times.extend(schedule.arrival_times())
    return sorted(times)
