"""Arrival processes: when transactions are submitted.

Three models are provided:

* :class:`ClosedLoopSchedule` — a fixed number of outstanding clients,
  each submitting its next request as soon as the previous one finishes
  (this is how the paper's custom benchmarking program drives load),
* :class:`PoissonSchedule` — open-loop arrivals at a target rate, used by
  the energy benchmark to hold a load level for a measurement interval, and
* :class:`CohortArrivalPlan` — a *vectorized* plan for fleet-scale runs:
  whole per-device arrival schedules are pre-sampled in one pass (with
  optional churn gaps) instead of resuming a generator per event, so a
  10k-device fleet materializes its submission timeline in milliseconds
  and the plan can be sliced per shard without re-sampling.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.simulation.randomness import DeterministicRandom


class ArrivalProcess(ABC):
    """Produces the virtual-time points at which requests are issued."""

    @abstractmethod
    def arrival_times(self) -> Iterator[float]:
        """Yield absolute submission times, in non-decreasing order."""


class ClosedLoopSchedule(ArrivalProcess):
    """Back-to-back submissions from ``concurrency`` logical clients.

    The discrete-event flow completes each transaction asynchronously, so
    the closed loop is approximated by pacing each logical client at its
    measured service time; the harness refines the pacing iteratively.
    """

    def __init__(
        self,
        total_requests: int,
        concurrency: int = 1,
        think_time_s: float = 0.0,
        estimated_service_time_s: float = 0.05,
    ) -> None:
        if total_requests < 1:
            raise ConfigurationError("total_requests must be >= 1")
        if concurrency < 1:
            raise ConfigurationError("concurrency must be >= 1")
        self.total_requests = total_requests
        self.concurrency = concurrency
        self.think_time_s = think_time_s
        self.estimated_service_time_s = estimated_service_time_s

    def arrival_times(self) -> Iterator[float]:
        period = self.estimated_service_time_s + self.think_time_s
        issued = 0
        round_index = 0
        while issued < self.total_requests:
            base = round_index * period
            for lane in range(self.concurrency):
                if issued >= self.total_requests:
                    break
                # Stagger lanes slightly so they do not collide on the client CPU.
                yield base + lane * (period / max(1, self.concurrency) / 10.0)
                issued += 1
            round_index += 1


class PoissonSchedule(ArrivalProcess):
    """Open-loop Poisson arrivals at ``rate_per_s`` for ``duration_s``."""

    def __init__(self, rate_per_s: float, duration_s: float, seed: int = 42,
                 start_time_s: float = 0.0) -> None:
        if rate_per_s < 0:
            raise ConfigurationError("arrival rate cannot be negative")
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        self.rate_per_s = rate_per_s
        self.duration_s = duration_s
        self.start_time_s = start_time_s
        self._rng = DeterministicRandom(seed)

    def arrival_times(self) -> Iterator[float]:
        if self.rate_per_s == 0:
            return
        cursor = self.start_time_s
        end = self.start_time_s + self.duration_s
        mean_gap = 1.0 / self.rate_per_s
        while True:
            cursor += self._rng.exponential(mean_gap)
            if cursor >= end:
                return
            yield cursor

    def expected_count(self) -> int:
        """Expected number of arrivals over the schedule."""
        return int(self.rate_per_s * self.duration_s)

    def sample(self) -> List[float]:
        """Pre-sample the whole schedule into one list (vectorized form).

        Draws are taken in the same order as :meth:`arrival_times`, so a
        freshly constructed schedule produces the identical timeline either
        way; the list form avoids resuming a generator per scheduled event.
        """
        return sample_poisson_times(
            self._rng, self.rate_per_s, self.duration_s, self.start_time_s
        )


def sample_poisson_times(
    rng: DeterministicRandom,
    rate_per_s: float,
    duration_s: float,
    start_time_s: float = 0.0,
) -> List[float]:
    """Pre-sample a whole Poisson arrival timeline in one tight pass.

    The per-event generator protocol costs a frame resume per arrival; at
    fleet scale (10k+ devices) that shows up on the wall-clock hot path, so
    this samples every gap in one loop with the RNG method bound to a local.
    """
    if rate_per_s < 0:
        raise ConfigurationError("arrival rate cannot be negative")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if rate_per_s == 0:
        return []
    times: List[float] = []
    append = times.append
    exponential = rng.exponential
    mean_gap = 1.0 / rate_per_s
    cursor = start_time_s
    end = start_time_s + duration_s
    while True:
        cursor += exponential(mean_gap)
        if cursor >= end:
            return times
        append(cursor)


@dataclass(frozen=True)
class DeviceArrivals:
    """One device's pre-sampled submission times (churn gaps already cut)."""

    device_index: int
    shard: int
    times: Tuple[float, ...]
    #: ``(leave, rejoin)`` churn window that was cut out, if any.
    offline_window: Optional[Tuple[float, float]] = None


@dataclass
class CohortArrivalPlan:
    """Vectorized arrival schedules for a whole device fleet.

    Every device gets its own deterministic Poisson stream (forked from the
    cohort seed by device index, never by construction order), pre-sampled
    into a flat list.  Churned devices get an offline window cut out of
    their timeline — the join/leave model is a schedule property, so the
    same plan drives the sequential engine and the per-shard workers bit
    for bit.

    The plan is cheap to slice: :meth:`for_shard` filters the materialized
    schedules without re-sampling, which is what keeps the worker-process
    command boundary thin (workers rebuild the plan locally from the spec
    instead of receiving 10k timelines over a pipe).
    """

    devices: int
    shards: int
    rate_per_device_s: float
    duration_s: float
    seed: int = 42
    #: Fraction of devices that leave mid-run and rejoin later (churn).
    churn_fraction: float = 0.0
    #: Churned devices are offline for this fraction of the run, centred
    #: deterministically per device.
    churn_offline_fraction: float = 0.25
    _schedules: List[DeviceArrivals] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError("a cohort needs at least one device")
        if self.shards < 1:
            raise ConfigurationError("a cohort needs at least one shard")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ConfigurationError("churn_fraction must be in [0, 1]")
        if not 0.0 < self.churn_offline_fraction <= 0.8:
            raise ConfigurationError("churn_offline_fraction must be in (0, 0.8]")
        root = DeterministicRandom(self.seed)
        churn_period = (
            int(1.0 / self.churn_fraction) if self.churn_fraction > 0 else 0
        )
        for index in range(self.devices):
            rng = root.fork(f"arrivals:{index}")
            times = sample_poisson_times(
                rng, self.rate_per_device_s, self.duration_s
            )
            offline: Optional[Tuple[float, float]] = None
            if churn_period and index % churn_period == churn_period - 1:
                # Deterministic per-device offline window, jittered by the
                # device's own stream so the fleet does not churn in lockstep.
                width = self.duration_s * self.churn_offline_fraction
                start = rng.uniform(0.1, 0.9 - self.churn_offline_fraction)
                leave = start * self.duration_s
                rejoin = leave + width
                times = [t for t in times if not leave <= t < rejoin]
                offline = (leave, rejoin)
            self._schedules.append(
                DeviceArrivals(
                    device_index=index,
                    shard=index % self.shards,
                    times=tuple(times),
                    offline_window=offline,
                )
            )

    @property
    def schedules(self) -> List[DeviceArrivals]:
        return list(self._schedules)

    def for_shard(self, shard: int) -> List[DeviceArrivals]:
        """Schedules of the devices homed on one shard (plan order)."""
        return [s for s in self._schedules if s.shard == shard]

    def total_arrivals(self, shard: Optional[int] = None) -> int:
        selected = self._schedules if shard is None else self.for_shard(shard)
        return sum(len(s.times) for s in selected)

    def horizon_s(self) -> float:
        """Latest arrival across the fleet (0.0 for an empty plan)."""
        latest = 0.0
        for schedule in self._schedules:
            if schedule.times:
                latest = max(latest, schedule.times[-1])
        return latest

    def merged(self, shard: Optional[int] = None) -> List[Tuple[float, int]]:
        """``(time, device_index)`` pairs sorted by time (ties by device).

        This is the submission order both executors use, so per-shard
        relative order is identical whether the fleet runs on one engine or
        on per-shard workers.
        """
        selected = self._schedules if shard is None else self.for_shard(shard)
        pairs = [
            (time, schedule.device_index)
            for schedule in selected
            for time in schedule.times
        ]
        pairs.sort()
        return pairs


def merge_schedules(schedules: List[ArrivalProcess]) -> List[float]:
    """Merge several arrival processes into one sorted submission list."""
    times: List[float] = []
    for schedule in schedules:
        times.extend(schedule.arrival_times())
    return sorted(times)
