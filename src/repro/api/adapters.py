"""``ProvenanceStore`` adapters for the three provenance backends.

Each adapter translates the protocol's typed envelopes onto one backend's
internal machinery — the HyperProv client pipeline, the central database,
or the PoW chain — so callers never touch the three historical ad-hoc
surfaces.  The adapters call the backends' *internal* implementations
(`_store_data_impl`, `_execute`, …), which is what lets the legacy public
methods shrink to deprecated shims without double-dispatching.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.baselines.centraldb import CentralProvenanceDatabase
from repro.baselines.provchain import PowProvenanceChain
from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import ConfigurationError, ValidationError
from repro.common.hashing import checksum_of
from repro.api.protocol import (
    HistoryEntryView,
    HistoryView,
    QueryPage,
    RecordView,
    StoreRequest,
    SubmitHandle,
    VerifyResult,
)
from repro.middleware.context import OperationKind


class _StoreBase:
    """Shared conveniences: blocking ``store`` and lifecycle no-ops."""

    backend_name = "store"

    def submit(self, request: StoreRequest, at_time: Optional[float] = None) -> SubmitHandle:
        raise NotImplementedError

    def store(self, request: StoreRequest, at_time: Optional[float] = None) -> SubmitHandle:
        """Blocking write: submit, then drain until the handle completes."""
        handle = self.submit(request, at_time=at_time)
        if not handle.done:
            self.drain()
        return handle

    def drain(self) -> None:
        """Synchronous backends have nothing in flight."""

    def query(
        self,
        selector: Dict[str, Any],
        at_time: Optional[float] = None,
        limit: Optional[int] = None,
        bookmark: Optional[str] = None,
        explain: bool = False,
    ) -> QueryPage:
        """Rich queries need a selector-capable backend (HyperProv only)."""
        raise ConfigurationError(
            f"the {self.backend_name} backend does not support rich queries"
        )

    def subscribe(
        self,
        selector: Dict[str, Any],
        callback: Optional[Callable[[Dict[str, Any]], None]] = None,
        tenant: Optional[str] = None,
    ) -> Any:
        """Continuous queries need a commit stream (HyperProv only)."""
        raise ConfigurationError(
            f"the {self.backend_name} backend does not support continuous queries"
        )

    def close(self) -> None:
        pipeline = getattr(getattr(self, "backend", None), "pipeline", None)
        if pipeline is not None:
            pipeline.close()


class HyperProvStore(_StoreBase):
    """The HyperProv client behind the unified protocol.

    Writes are genuinely non-blocking: ``submit`` returns while the
    endorsed envelope may still sit in the client-side endorsement
    batcher or the orderer's block cutter; ``drain`` flushes both and
    runs the simulation until every handle completes.
    """

    backend_name = "hyperprov"

    def __init__(self, client: Any) -> None:
        # ``Any`` instead of HyperProvClient: the client imports this
        # module lazily (as_store), a type import would be circular.
        self.client = client
        #: Lazily created continuous-query registry on the network's
        #: aggregate commit stream (see :meth:`subscribe`).
        self._query_registry: Optional[Any] = None

    # -------------------------------------------------------------- attrs
    @property
    def backend(self) -> Any:
        return self.client

    @property
    def storage(self):
        """The client's off-chain content store (``None`` if detached)."""
        return self.client.storage

    # -------------------------------------------------------------- writes
    def submit(self, request: StoreRequest, at_time: Optional[float] = None) -> SubmitHandle:
        if request.is_metadata_only:
            if not request.checksum or not request.location:
                raise ValidationError(
                    "metadata-only StoreRequest needs both checksum and location"
                )
            post = self.client._post(
                "post",
                key=request.key,
                checksum=request.checksum,
                location=request.location,
                dependencies=list(request.dependencies),
                metadata=dict(request.metadata),
                size_bytes=request.size_bytes,
                at_time=at_time,
            )
        else:
            post = self.client._store_data_impl(
                request.key,
                request.data,
                dependencies=list(request.dependencies),
                metadata=dict(request.metadata),
                at_time=at_time,
            )
        return SubmitHandle(
            request=request,
            backend=self.backend_name,
            record=post.record,
            handle=post.handle,
            storage_receipt=post.storage_receipt,
            raw=post,
        )

    # --------------------------------------------------------------- reads
    def get(self, key: str, at_time: Optional[float] = None) -> RecordView:
        query = self.client._get_impl(key, at_time=at_time)
        return RecordView.from_record(
            query.payload, latency_s=query.latency_s, stale=query.stale
        )

    def history(self, key: str, at_time: Optional[float] = None) -> HistoryView:
        query = self.client._get_key_history_impl(key, at_time=at_time)
        entries = []
        for row in query.payload:
            if row.get("deleted"):
                entries.append(HistoryEntryView(view=None, tx_id=row.get("tx_id"), deleted=True))
            else:
                entries.append(
                    HistoryEntryView(
                        view=RecordView.from_record(row["record"]),
                        tx_id=row.get("tx_id"),
                        block=row.get("block"),
                    )
                )
        return HistoryView(key=key, entries=tuple(entries), latency_s=query.latency_s)

    def verify(
        self,
        key: str,
        data_or_checksum: Union[bytes, bytearray, str],
        at_time: Optional[float] = None,
    ) -> VerifyResult:
        query = self.client._check_hash_impl(key, data_or_checksum, at_time=at_time)
        return VerifyResult(key=key, matches=bool(query.payload), latency_s=query.latency_s)

    def query(
        self,
        selector: Dict[str, Any],
        at_time: Optional[float] = None,
        limit: Optional[int] = None,
        bookmark: Optional[str] = None,
        explain: bool = False,
    ) -> QueryPage:
        result = self.client.query_records(
            selector,
            at_time=at_time,
            limit=limit,
            bookmark=bookmark,
            explain=explain,
        )
        records = tuple(
            RecordView.from_record(row["record"]) for row in result.payload
        )
        return QueryPage(
            records=records,
            bookmark=result.bookmark,
            plan=result.plan,
            latency_s=result.latency_s,
        )

    def subscribe(
        self,
        selector: Dict[str, Any],
        callback: Optional[Callable[[Dict[str, Any]], None]] = None,
        tenant: Optional[str] = None,
    ) -> Any:
        """Register a standing selector on the deployment's commit stream.

        The registry attaches to the network's *aggregate* event bus, so
        it observes every shard's commits regardless of how the router
        spread the writes.  It is created on first use and torn down with
        the store (``close``), cancelling every outstanding registration.
        """
        if self._query_registry is None:
            from repro.query.continuous import ContinuousQueryRegistry

            self._query_registry = ContinuousQueryRegistry(self.client.network.events)
        return self._query_registry.register(selector, callback=callback, tenant=tenant)

    def audit(self) -> bool:
        """Every peer's block chain verifies and all heights agree."""
        peers = self.client.network.peers
        heights = {peer.ledger_height for peer in peers}
        return len(heights) <= 1 and all(
            peer.block_store.verify_chain() for peer in peers
        )

    # ------------------------------------------------------------ lifecycle
    def drain(self) -> None:
        self.client.network.flush_and_drain()

    def close(self) -> None:
        if self._query_registry is not None:
            self._query_registry.close()
            self._query_registry = None
        super().close()


class CentralDbStore(_StoreBase):
    """The centralized-database baseline behind the unified protocol."""

    backend_name = "central-db"

    def __init__(self, database: CentralProvenanceDatabase) -> None:
        self.backend = database

    def submit(self, request: StoreRequest, at_time: Optional[float] = None) -> SubmitHandle:
        start = at_time or 0.0
        record = self._record_for(request, start)
        result = self.backend._execute(
            "store_record",
            OperationKind.WRITE,
            [record.key],
            record=record,
            at_time=start,
            payload_bytes=len(request.data or b""),
        )
        return SubmitHandle(
            request=request,
            backend=self.backend_name,
            record=result.record,
            raw=result,
            latency_s=result.latency_s,
            completed_at=result.completed_at,
        )

    def _record_for(self, request: StoreRequest, at_time: float) -> ProvenanceRecord:
        checksum = request.checksum or checksum_of(request.data or b"")
        return ProvenanceRecord(
            key=request.key,
            checksum=checksum,
            location=request.location or f"db://{self.backend.server_node}/{request.key}",
            creator=request.creator or "client",
            organization="central",
            certificate_fingerprint="",
            dependencies=list(request.dependencies),
            metadata=dict(request.metadata),
            size_bytes=request.size_bytes or len(request.data or b""),
            timestamp=at_time,
        )

    def get(self, key: str, at_time: Optional[float] = None) -> RecordView:
        record = self.backend._execute("get", OperationKind.READ, [key])
        return RecordView.from_record(record)

    def history(self, key: str, at_time: Optional[float] = None) -> HistoryView:
        records = self.backend._execute("history", OperationKind.READ, [key])
        entries = tuple(
            HistoryEntryView(view=RecordView.from_record(record), tx_id=str(index))
            for index, record in enumerate(records)
        )
        return HistoryView(key=key, entries=entries)

    def verify(
        self,
        key: str,
        data_or_checksum: Union[bytes, bytearray, str],
        at_time: Optional[float] = None,
    ) -> VerifyResult:
        checksum = _as_checksum(data_or_checksum)
        record = self.backend._execute("get", OperationKind.READ, [key])
        return VerifyResult(key=key, matches=record.checksum == checksum)

    def audit(self) -> bool:
        """No integrity record exists, so an audit always looks clean."""
        return not self.backend.detect_tampering()


class PowChainStore(_StoreBase):
    """The ProvChain-style PoW baseline behind the unified protocol."""

    backend_name = "provchain-pow"

    def __init__(self, chain: PowProvenanceChain) -> None:
        self.backend = chain

    def submit(self, request: StoreRequest, at_time: Optional[float] = None) -> SubmitHandle:
        start = at_time or 0.0
        record = self._record_for(request, start)
        result = self.backend._execute(
            "store_record",
            OperationKind.WRITE,
            [record.key],
            record=record,
            at_time=start,
        )
        return SubmitHandle(
            request=request,
            backend=self.backend_name,
            record=result.entry.record,
            raw=result,
            latency_s=result.latency_s,
            completed_at=result.entry.recorded_at,
        )

    def _record_for(self, request: StoreRequest, at_time: float) -> ProvenanceRecord:
        checksum = request.checksum or checksum_of(request.data or b"")
        return ProvenanceRecord(
            key=request.key,
            checksum=checksum,
            location=request.location or f"pow://{request.key}",
            creator=request.creator or "miner",
            organization="pow-org",
            certificate_fingerprint="",
            dependencies=list(request.dependencies),
            metadata=dict(request.metadata),
            size_bytes=request.size_bytes or len(request.data or b""),
            timestamp=at_time,
        )

    def get(self, key: str, at_time: Optional[float] = None) -> RecordView:
        entry = self.backend._execute("get", OperationKind.READ, [key])
        return RecordView.from_record(entry.record)

    def history(self, key: str, at_time: Optional[float] = None) -> HistoryView:
        entries = self.backend._execute("history", OperationKind.READ, [key])
        views = tuple(
            HistoryEntryView(
                view=RecordView.from_record(entry.record),
                tx_id=entry.chain_hash,
                block=entry.index,
            )
            for entry in entries
        )
        return HistoryView(key=key, entries=views)

    def verify(
        self,
        key: str,
        data_or_checksum: Union[bytes, bytearray, str],
        at_time: Optional[float] = None,
    ) -> VerifyResult:
        checksum = _as_checksum(data_or_checksum)
        entry = self.backend._execute("get", OperationKind.READ, [key])
        return VerifyResult(key=key, matches=entry.record.checksum == checksum)

    def audit(self) -> bool:
        """Re-play the hash chain: tampered entries break it."""
        return self.backend.verify_chain()


def _as_checksum(data_or_checksum: Union[bytes, bytearray, str]) -> str:
    if isinstance(data_or_checksum, (bytes, bytearray)):
        return checksum_of(data_or_checksum)
    return str(data_or_checksum)


def adapt_store(backend: Any):
    """Wrap any known backend in its :class:`ProvenanceStore` adapter."""
    if hasattr(backend, "as_store") and getattr(backend, "_store_adapter", None):
        return backend._store_adapter
    if isinstance(backend, CentralProvenanceDatabase):
        return CentralDbStore(backend)
    if isinstance(backend, PowProvenanceChain):
        return PowChainStore(backend)
    if hasattr(backend, "_store_data_impl"):  # HyperProvClient (lazy import cycle)
        return HyperProvStore(backend)
    raise ConfigurationError(
        f"{type(backend).__name__} is not a known provenance backend"
    )
