"""Sessioned service facade over a HyperProv deployment.

:class:`HyperProvService` turns a deployment into a multi-tenant service:
each :meth:`~HyperProvService.session` hands out a
:class:`ProvenanceSession` bound to one tenant namespace with its own
middleware pipeline (tenant key-prefixing, optional per-tenant in-flight
admission cap).  The session's write path is non-blocking — ``submit()``
returns a :class:`~repro.api.protocol.SubmitHandle` future and multiple
endorsed envelopes stay in flight through the endorsement batcher —
while ``drain()`` (or leaving the session's ``with`` block) awaits
commits.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.api.protocol import (
    HistoryView,
    ProvenanceStore,
    QueryPage,
    RecordView,
    StoreRequest,
    SubmitHandle,
    VerifyResult,
)
from repro.common.errors import ConfigurationError
from repro.middleware.cache import ReadCacheMiddleware, SharedReadCache
from repro.middleware.config import PipelineConfig
from repro.middleware.tenancy import (
    AdmissionControlMiddleware,
    InFlightCounter,
    strip_namespace,
)


class ProvenanceSession:
    """One tenant's handle on a provenance store.

    All keys are tenant-relative: the pipeline's tenant-prefix middleware
    maps them into ``tenant/<name>/…`` on the way down and the session
    strips the namespace from every returned view, so application code is
    identical in single- and multi-tenant deployments.
    """

    def __init__(
        self,
        store: ProvenanceStore,
        tenant: str = "",
        owns_store: bool = False,
    ) -> None:
        #: The underlying :class:`ProvenanceStore` adapter.
        self.backend = store
        self.tenant = tenant
        self._owns_store = owns_store
        self._handles: List[SubmitHandle] = []
        self._subscriptions: List[Any] = []
        self._submitted = 0
        self._closed = False

    # ------------------------------------------------------------ utilities
    def _strip(self, key: str) -> str:
        return strip_namespace(self.tenant, key) if self.tenant else key

    @property
    def in_flight(self) -> int:
        """Submissions not yet committed."""
        return sum(1 for handle in self._handles if not handle.done)

    @property
    def submitted(self) -> int:
        """Total submissions made through this session (never resets)."""
        return self._submitted

    # -------------------------------------------------------------- writes
    def submit(
        self,
        key: str,
        data: Optional[bytes] = None,
        *,
        checksum: Optional[str] = None,
        location: Optional[str] = None,
        dependencies: Tuple[str, ...] = (),
        metadata: Optional[Dict[str, Any]] = None,
        size_bytes: int = 0,
        at_time: Optional[float] = None,
    ) -> SubmitHandle:
        """Non-blocking write; the returned future completes at commit.

        Raises :class:`~repro.common.errors.AdmissionRejectedError` when
        the session's tenant is at its in-flight cap.
        """
        request = StoreRequest(
            key=key,
            data=data,
            checksum=checksum,
            location=location,
            dependencies=tuple(dependencies),
            metadata=dict(metadata or {}),
            size_bytes=size_bytes,
        )
        handle = self.backend.submit(request, at_time=at_time)
        self._submitted += 1
        self._handles.append(handle)
        return handle

    def store(self, key: str, data: Optional[bytes] = None, **kwargs: Any) -> SubmitHandle:
        """Blocking write: ``submit`` then ``drain``."""
        handle = self.submit(key, data, **kwargs)
        if not handle.done:
            self.drain()
        return handle

    # --------------------------------------------------------------- reads
    def get(self, key: str, at_time: Optional[float] = None) -> RecordView:
        view = self.backend.get(key, at_time=at_time)
        return view.relative_to(self._strip)

    def history(self, key: str, at_time: Optional[float] = None) -> HistoryView:
        history = self.backend.history(key, at_time=at_time)
        entries = tuple(
            replace(entry, view=entry.view.relative_to(self._strip))
            if entry.view is not None
            else entry
            for entry in history.entries
        )
        return HistoryView(key=key, entries=entries, latency_s=history.latency_s)

    def verify(
        self,
        key: str,
        data_or_checksum: Union[bytes, bytearray, str],
        at_time: Optional[float] = None,
    ) -> VerifyResult:
        return self.backend.verify(key, data_or_checksum, at_time=at_time)

    def audit(self) -> bool:
        return self.backend.audit()

    def query(
        self,
        selector: Dict[str, Any],
        at_time: Optional[float] = None,
        limit: Optional[int] = None,
        bookmark: Optional[str] = None,
        explain: bool = False,
    ) -> QueryPage:
        """Rich query scoped to this session's tenant namespace.

        Selectors match record fields (``docs/api.md`` has the syntax);
        ``limit``/``bookmark`` page through the matches — pass the
        returned :attr:`QueryPage.bookmark` back to resume — and
        ``explain=True`` surfaces the planner's access-path report.
        Returned keys and bookmarks are tenant-relative.
        """
        page = self.backend.query(
            selector,
            at_time=at_time,
            limit=limit,
            bookmark=bookmark,
            explain=explain,
        )
        if self.tenant:
            page = replace(
                page,
                records=tuple(
                    view.relative_to(self._strip) for view in page.records
                ),
            )
        return page

    def subscribe(
        self,
        selector: Dict[str, Any],
        callback: Optional[Any] = None,
    ) -> Any:
        """Standing continuous query: matching commits are pushed as they land.

        ``selector`` uses the rich-query syntax (``_prefix`` scoping
        allowed, pagination fields rejected).  With a ``callback`` every
        matching committed record is delivered immediately; without one,
        deliveries buffer on the returned handle (``pop_events()``).
        Handles are cancelled automatically when the session closes.
        Requires a pipeline built with ``continuous_queries=True``.
        """
        config = getattr(
            getattr(self.backend, "client", None), "pipeline_config", None
        )
        if config is not None and not config.continuous_queries:
            raise ConfigurationError(
                "this session's pipeline was not built with continuous_queries=True"
            )
        handle = self.backend.subscribe(
            selector, callback=callback, tenant=self.tenant or None
        )
        self._subscriptions.append(handle)
        return handle

    # ------------------------------------------------------------ lifecycle
    def drain(self) -> None:
        """Await every in-flight submission made through this session.

        Always drains the backend — closed-loop callers schedule future
        submissions on the simulation engine, so there can be work pending
        even when no handle is currently in flight.
        """
        self.backend.drain()
        # Completed handles no longer need tracking.
        self._handles = [handle for handle in self._handles if not handle.done]

    def close(self) -> None:
        """Drain, then release the session's pipeline (if it owns one).

        Standing continuous queries registered through this session are
        cancelled here, whether or not the session owns its store — a
        closed session must never receive further deliveries.
        """
        if self._closed:
            return
        self.drain()
        for subscription in self._subscriptions:
            subscription.cancel()
        self._subscriptions.clear()
        if self._owns_store:
            self.backend.close()
        self._closed = True

    def __enter__(self) -> "ProvenanceSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tenant = self.tenant or "<default>"
        return (
            f"<ProvenanceSession tenant={tenant} backend={self.backend.backend_name} "
            f"in_flight={self.in_flight}>"
        )


class HyperProvService:
    """Service facade: tenant sessions over one HyperProv deployment."""

    def __init__(self, deployment: Any) -> None:
        self.deployment = deployment
        #: One in-flight counter per tenant, shared across its sessions,
        #: so the admission cap is per tenant rather than per session.
        self._admission_counters: Dict[str, InFlightCounter] = {}
        #: Lazily created shared read-cache tier (``shared_cache`` knob):
        #: every session asking for it gets the same thread-safe LRU, so
        #: repeated reads across tenant sessions hit one store.  Entries
        #: are keyed on namespaced args, so tenants stay isolated.
        self._shared_cache: Optional[SharedReadCache] = None
        self._shared_cache_invalidator: Optional[ReadCacheMiddleware] = None

    def shared_cache(self, capacity: int = 1024) -> SharedReadCache:
        """The deployment-wide cache tier (created on first use).

        The tier outlives any single session, so the service itself keeps
        an invalidation subscription on the deployment's commit stream —
        a write committed while no shared-cache session is open still
        purges the entries it stales.  Later callers asking for a larger
        capacity grow the store (never shrink it under existing users).
        """
        if self._shared_cache is None:
            self._shared_cache = SharedReadCache(capacity=capacity)
            events = getattr(getattr(self.deployment, "fabric", None), "events", None)
            if events is not None:
                self._shared_cache_invalidator = ReadCacheMiddleware(
                    store=self._shared_cache, events=events
                )
        else:
            self._shared_cache.capacity = max(self._shared_cache.capacity, capacity)
        return self._shared_cache

    def session(
        self,
        tenant: Optional[str] = None,
        pipeline: Optional[PipelineConfig] = None,
        max_in_flight: int = 0,
    ) -> ProvenanceSession:
        """Open a session.

        Without a tenant (and no cap) the session wraps the deployment's
        stock client — byte-for-byte the single-tenant behaviour, with
        ``pipeline`` applied the way benchmarks always did.  With a tenant
        or a cap, the session gets its own client whose pipeline includes
        the tenant-prefix and admission-control middlewares; the network,
        identity, off-chain storage and (with ``shared_cache``) the read
        cache tier are shared.
        """
        if tenant is None and max_in_flight == 0:
            client = self.deployment.client
            if pipeline is not None:
                if pipeline.shared_cache:
                    client.shared_cache = self.shared_cache(pipeline.cache_capacity)
                client.configure_pipeline(pipeline)
            return ProvenanceSession(client.as_store(), tenant="")

        from repro.core.client import HyperProvClient

        config = replace(
            pipeline or PipelineConfig(),
            tenant=tenant or "",
            max_in_flight=max_in_flight,
        )
        client = HyperProvClient(
            network=self.deployment.fabric,
            client_name=self.deployment.client.client_name,
            storage=self.deployment.storage,
            pipeline_config=config,
            shared_cache=(
                self.shared_cache(config.cache_capacity)
                if config.shared_cache
                else None
            ),
        )
        if config.max_in_flight > 0:
            admission = client.pipeline.find(AdmissionControlMiddleware)
            if admission is not None:
                counter = self._admission_counters.setdefault(
                    config.tenant, InFlightCounter()
                )
                admission.adopt_counter(counter)
        if pipeline is not None:
            self.deployment.fabric.set_order_batch_size(config.order_batch_size)
            if config.scheduler is not None:
                self.deployment.fabric.set_scheduler(config.scheduler)
            if config.indexes:
                self.deployment.fabric.enable_secondary_indexes(config.indexes)
        return ProvenanceSession(
            client.as_store(), tenant=tenant or "", owns_store=True
        )

    def drain(self) -> None:
        """Flush pending batches and run the simulation to quiescence."""
        self.deployment.drain()
