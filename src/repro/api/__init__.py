"""Unified client-facing API: one protocol, three backends, tenant sessions.

* :mod:`repro.api.protocol` — the :class:`ProvenanceStore` protocol and
  its typed envelopes (:class:`StoreRequest`, :class:`RecordView`,
  :class:`HistoryView`, :class:`VerifyResult`, :class:`SubmitHandle`).
* :mod:`repro.api.adapters` — the protocol implementations for
  HyperProv, the central database and the PoW chain (every backend also
  exposes ``as_store()``).
* :mod:`repro.api.service` — :class:`HyperProvService`, the sessioned
  facade with futures-based submission and tenant namespaces.

See ``docs/api.md`` for the session lifecycle and the migration table
from the legacy blocking methods.
"""

from repro.api.adapters import (
    CentralDbStore,
    HyperProvStore,
    PowChainStore,
    adapt_store,
)
from repro.api.protocol import (
    HistoryEntryView,
    HistoryView,
    ProvenanceStore,
    QueryPage,
    RecordView,
    StoreReceipt,
    StoreRequest,
    SubmitHandle,
    VerifyResult,
)
from repro.api.service import HyperProvService, ProvenanceSession

__all__ = [
    "ProvenanceStore",
    "StoreRequest",
    "RecordView",
    "HistoryView",
    "HistoryEntryView",
    "VerifyResult",
    "QueryPage",
    "StoreReceipt",
    "SubmitHandle",
    "HyperProvStore",
    "CentralDbStore",
    "PowChainStore",
    "adapt_store",
    "HyperProvService",
    "ProvenanceSession",
]
