"""The unified ``ProvenanceStore`` protocol and its typed envelopes.

The paper's HyperProv client and both baselines answer the same four
questions — store, get, history, verify — but historically exposed three
divergent blocking surfaces.  This module defines the single protocol all
three backends implement, so benches, workloads and examples are written
once:

=============  ============================================================
Call           Meaning
=============  ============================================================
``submit``     Non-blocking write: returns a :class:`SubmitHandle` future;
               the record may still be queued in the endorsement batcher or
               awaiting commit.  Backends with synchronous writes return an
               already-completed handle.
``store``      Blocking convenience: ``submit`` + ``drain``.
``get``        Latest record for a key as a :class:`RecordView`.
``history``    Every recorded version, oldest first (:class:`HistoryView`).
``verify``     Check data (or a checksum) against the stored record.
``query``      Rich query over record fields (:class:`QueryPage`), with
               optional limit/bookmark pagination and plan explanation.
``subscribe``  Standing commit-fed selector (continuous query); matching
               committed records are pushed as they commit.
``audit``      Backend-wide integrity check (hash chain / ledger heights);
               this is where tamper *evidence* shows up — or doesn't, for
               the central database.
``drain``      Await every in-flight submission.
=============  ============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        return cls

from repro.chaincode.records import ProvenanceRecord
from repro.common.errors import IncompleteTransactionError


# ---------------------------------------------------------------- requests
@dataclass(frozen=True)
class StoreRequest:
    """One write, described independently of the backend.

    Exactly one of ``data`` (store the payload and derive its checksum) or
    ``checksum`` + ``location`` (metadata-only post for data that already
    lives elsewhere) should be provided.
    """

    key: str
    data: Optional[bytes] = None
    checksum: Optional[str] = None
    location: Optional[str] = None
    dependencies: Tuple[str, ...] = ()
    metadata: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    #: Creator identity hint for backends without a membership service.
    creator: str = ""

    @property
    def is_metadata_only(self) -> bool:
        return self.data is None


# ---------------------------------------------------------------- responses
@dataclass(frozen=True)
class RecordView:
    """Backend-independent view of one provenance record version."""

    key: str
    checksum: str
    location: str
    creator: str
    organization: str
    dependencies: Tuple[str, ...]
    metadata: Dict[str, Any]
    timestamp: float
    size_bytes: int
    #: End-to-end latency of the read that produced this view (seconds).
    latency_s: float = 0.0
    #: True when the result was served from the stale-read archive because
    #: the authoritative peer was unreachable (never silently fresh).
    stale: bool = False
    #: The underlying backend record (shared across all three backends).
    record: Optional[ProvenanceRecord] = None

    @classmethod
    def from_record(
        cls,
        record: ProvenanceRecord,
        latency_s: float = 0.0,
        stale: bool = False,
    ) -> "RecordView":
        return cls(
            key=record.key,
            checksum=record.checksum,
            location=record.location,
            creator=record.creator,
            organization=record.organization,
            dependencies=tuple(record.dependencies),
            metadata=dict(record.metadata),
            timestamp=record.timestamp,
            size_bytes=record.size_bytes,
            latency_s=latency_s,
            stale=stale,
            record=record,
        )

    def relative_to(self, strip: Callable[[str], str]) -> "RecordView":
        """A copy with ``strip`` applied to the key and every dependency."""
        return replace(
            self,
            key=strip(self.key),
            dependencies=tuple(strip(dep) for dep in self.dependencies),
        )


@dataclass(frozen=True)
class HistoryEntryView:
    """One version in a key's history."""

    view: Optional[RecordView]
    tx_id: Optional[str] = None
    block: Optional[int] = None
    deleted: bool = False


@dataclass(frozen=True)
class HistoryView:
    """Every recorded version of a key, oldest first."""

    key: str
    entries: Tuple[HistoryEntryView, ...]
    latency_s: float = 0.0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def records(self) -> List[RecordView]:
        """The surviving record views, oldest first (deletes skipped)."""
        return [entry.view for entry in self.entries if entry.view is not None]


@dataclass(frozen=True)
class QueryPage:
    """One page of rich-query results.

    ``bookmark`` resumes the next page (``None`` = last page); ``plan``
    carries the planner's access-path report when the query asked to
    explain itself.
    """

    records: Tuple[RecordView, ...]
    bookmark: Optional[str] = None
    plan: Optional[Dict[str, Any]] = None
    latency_s: float = 0.0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of checking data (or a checksum) against the store."""

    key: str
    matches: bool
    latency_s: float = 0.0

    def __bool__(self) -> bool:
        return self.matches


@dataclass(frozen=True)
class StoreReceipt:
    """Final outcome of one completed store submission."""

    key: str
    checksum: str
    backend: str
    ok: bool
    latency_s: float
    completed_at: float


# ------------------------------------------------------------------ futures
class SubmitHandle:
    """Future-style handle for one submitted store operation.

    HyperProv submissions complete asynchronously — the envelope may sit
    in the endorsement batcher and the orderer's block cutter until the
    network drains — while the baselines complete synchronously in virtual
    time.  Both shapes hide behind the same handle:

    * ``done`` / ``ok`` — completion and validity.
    * ``result()`` — the :class:`StoreReceipt`; raises
      :class:`~repro.common.errors.IncompleteTransactionError` while the
      submission is still in flight (call ``drain()`` on the session or
      store first).
    * ``add_done_callback(fn)`` — fires ``fn(handle)`` at completion (or
      immediately if already complete).

    The attributes ``record`` / ``handle`` / ``storage_receipt`` mirror
    the legacy ``PostResult`` shape so converted call sites keep working.
    """

    def __init__(
        self,
        request: StoreRequest,
        backend: str,
        record: ProvenanceRecord,
        handle: Optional[Any] = None,
        storage_receipt: Optional[Any] = None,
        raw: Optional[Any] = None,
        latency_s: Optional[float] = None,
        completed_at: Optional[float] = None,
    ) -> None:
        self.request = request
        self.backend = backend
        #: Client-side echo of the record that was (or will be) stored.
        self.record = record
        #: Underlying :class:`TransactionHandle` for async backends.
        self.handle = handle
        self.storage_receipt = storage_receipt
        #: Backend-native result object (``PostResult``, ``PowStoreResult``, …).
        self.raw = raw
        self._latency_s = latency_s
        self._completed_at = completed_at

    # ------------------------------------------------------------ liveness
    @property
    def done(self) -> bool:
        if self.handle is not None:
            return bool(self.handle.is_complete)
        return True

    @property
    def ok(self) -> bool:
        """Whether the submission committed successfully."""
        if self.handle is not None:
            return bool(self.handle.is_complete and self.handle.is_valid)
        return True

    @property
    def committed_at(self) -> float:
        if self.handle is not None:
            return float(self.handle.committed_at)
        return float(self._completed_at or 0.0)

    @property
    def commit_block(self) -> Optional[int]:
        return getattr(self.handle, "commit_block", None)

    @property
    def latency_s(self) -> float:
        """Total submission latency (off-chain storage + chain commit).

        Raises :class:`IncompleteTransactionError` while still in flight.
        """
        if self.handle is not None:
            if not self.handle.is_complete:
                raise IncompleteTransactionError(
                    f"submission for key {self.request.key!r} has not committed yet; "
                    f"drain() the session before reading its latency"
                )
            storage = self.storage_receipt.duration_s if self.storage_receipt else 0.0
            return storage + self.handle.latency_s
        return float(self._latency_s or 0.0)

    # ------------------------------------------------------------ callbacks
    def add_done_callback(self, fn: Callable[["SubmitHandle"], None]) -> None:
        if self.handle is not None and not self.handle.is_complete:
            self.handle.on_complete(lambda _h: fn(self))
        else:
            fn(self)

    # --------------------------------------------------------------- result
    def result(self) -> StoreReceipt:
        if not self.done:
            raise IncompleteTransactionError(
                f"submission for key {self.request.key!r} has not committed yet; "
                f"drain() the session before requesting its result"
            )
        return StoreReceipt(
            key=self.record.key,
            checksum=self.record.checksum,
            backend=self.backend,
            ok=self.ok,
            latency_s=self.latency_s,
            completed_at=self.committed_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "in-flight"
        return f"<SubmitHandle {self.request.key!r} backend={self.backend} {state}>"


# ----------------------------------------------------------------- protocol
@runtime_checkable
class ProvenanceStore(Protocol):
    """What every provenance backend exposes to benches and workloads."""

    backend_name: str

    def submit(
        self, request: StoreRequest, at_time: Optional[float] = None
    ) -> SubmitHandle:
        """Non-blocking write; returns a future-style handle."""
        ...

    def store(
        self, request: StoreRequest, at_time: Optional[float] = None
    ) -> SubmitHandle:
        """Blocking write: ``submit`` then ``drain``; the handle is done."""
        ...

    def get(self, key: str, at_time: Optional[float] = None) -> RecordView:
        """Latest record for ``key`` (raises ``NotFoundError`` if absent)."""
        ...

    def history(self, key: str, at_time: Optional[float] = None) -> HistoryView:
        """Every recorded version of ``key``, oldest first."""
        ...

    def verify(
        self,
        key: str,
        data_or_checksum: Union[bytes, bytearray, str],
        at_time: Optional[float] = None,
    ) -> VerifyResult:
        """Check data (or a precomputed checksum) against the store."""
        ...

    def query(
        self,
        selector: Dict[str, Any],
        at_time: Optional[float] = None,
        limit: Optional[int] = None,
        bookmark: Optional[str] = None,
        explain: bool = False,
    ) -> QueryPage:
        """Rich query over record fields (backends without one raise)."""
        ...

    def subscribe(
        self,
        selector: Dict[str, Any],
        callback: Optional[Callable[[Dict[str, Any]], None]] = None,
        tenant: Optional[str] = None,
    ) -> Any:
        """Standing commit-fed selector; returns a cancellable handle."""
        ...

    def audit(self) -> bool:
        """Backend-wide integrity check (tamper evidence, if any)."""
        ...

    def drain(self) -> None:
        """Await every in-flight submission."""
        ...

    def close(self) -> None:
        """Release pipeline resources (subscriptions, queues)."""
        ...
