"""Content-addressed naming layer over any storage backend.

HyperProv's data pointers are derived from the content checksum, so the
same payload stored twice resolves to the same location and the on-chain
record's checksum doubles as the retrieval key.
"""

from __future__ import annotations

from typing import List, Optional

from repro.storage.base import StorageBackend, StorageReceipt, StoredObject


class ContentAddressedStore:
    """Names objects ``<prefix>/<checksum>`` on an underlying backend."""

    def __init__(self, backend: StorageBackend, prefix: str = "objects") -> None:
        self.backend = backend
        self.prefix = prefix

    def path_for(self, checksum: str) -> str:
        """Storage path used for a payload with the given checksum."""
        return f"{self.prefix}/{checksum[:2]}/{checksum}"

    def put(self, data: bytes, at_time: float = 0.0, **kwargs) -> StorageReceipt:
        """Store ``data`` under its content address (idempotent)."""
        checksum = self.backend.checksum(data)
        path = self.path_for(checksum)
        if self.backend.exists(path):
            # Already stored: return a zero-cost receipt pointing at it.
            return StorageReceipt(
                path=path,
                location=self.backend.location_of(path),
                checksum=checksum,
                size_bytes=len(data),
                duration_s=0.0,
                completed_at=at_time,
            )
        return self.backend.store(path, data, at_time=at_time, **kwargs)

    def get(self, checksum: str, at_time: float = 0.0, **kwargs) -> StorageReceipt:
        """Retrieve the payload whose checksum is ``checksum``."""
        return self.backend.retrieve(self.path_for(checksum), at_time=at_time, **kwargs)

    def get_object(self, checksum: str) -> Optional[StoredObject]:
        return self.backend.get_object(self.path_for(checksum))

    def exists(self, checksum: str) -> bool:
        return self.backend.exists(self.path_for(checksum))

    def list_checksums(self) -> List[str]:
        """Checksums of every object stored through this layer."""
        paths = self.backend.list_paths(prefix=self.prefix)
        return sorted(path.rsplit("/", 1)[-1] for path in paths)
