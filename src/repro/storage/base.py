"""Storage backend interface and common result types."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from repro.common.hashing import checksum_of


@dataclass(frozen=True)
class StoredObject:
    """An object held by a storage backend."""

    path: str
    data: bytes
    checksum: str
    stored_at: float = 0.0

    @property
    def size_bytes(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class StorageReceipt:
    """Result of a store/retrieve operation, including its simulated cost."""

    path: str
    location: str
    checksum: str
    size_bytes: int
    duration_s: float
    completed_at: float


class StorageBackend(ABC):
    """Interface every off-chain storage implementation provides."""

    #: URI scheme used when building data-pointer locations.
    scheme: str = "mem"

    @abstractmethod
    def store(self, path: str, data: bytes, at_time: float = 0.0) -> StorageReceipt:
        """Persist ``data`` under ``path``; returns a receipt with the cost."""

    @abstractmethod
    def retrieve(self, path: str, at_time: float = 0.0) -> StorageReceipt:
        """Fetch the object at ``path``; raises ``StorageError`` if missing."""

    @abstractmethod
    def get_object(self, path: str) -> Optional[StoredObject]:
        """Direct access to the stored object (no cost accounting)."""

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Whether an object is stored under ``path``."""

    @abstractmethod
    def delete(self, path: str) -> bool:
        """Remove the object; returns whether it existed."""

    @abstractmethod
    def list_paths(self, prefix: str = "") -> List[str]:
        """All stored paths starting with ``prefix``."""

    def location_of(self, path: str) -> str:
        """The URI recorded on chain as the data pointer."""
        return f"{self.scheme}://{path}"

    @staticmethod
    def checksum(data: bytes) -> str:
        """Checksum used to verify integrity against the on-chain record."""
        return checksum_of(data)
