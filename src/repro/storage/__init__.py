"""Off-chain storage.

HyperProv keeps only provenance *metadata* on chain; the data items
themselves go to an off-chain store — in the paper, an SSH file system
(SSHFS) mount served by a separate node.  This package provides:

* :class:`~repro.storage.base.StorageBackend` — the interface,
* :class:`~repro.storage.local.LocalStorageBackend` — in-memory /
  dictionary-backed store used when the client keeps data on its own disk,
* :class:`~repro.storage.sshfs.SSHFSStorageBackend` — the paper's setup: a
  remote store reached over the simulated network, charging transfer and
  checksum time to the requesting device,
* :class:`~repro.storage.content.ContentAddressedStore` — a thin layer that
  names objects by their checksum (how the client library builds data
  pointers).
"""

from repro.storage.base import StorageBackend, StoredObject, StorageReceipt
from repro.storage.local import LocalStorageBackend
from repro.storage.sshfs import SSHFSStorageBackend, SSHFSConfig
from repro.storage.content import ContentAddressedStore

__all__ = [
    "StorageBackend",
    "StoredObject",
    "StorageReceipt",
    "LocalStorageBackend",
    "SSHFSStorageBackend",
    "SSHFSConfig",
    "ContentAddressedStore",
]
