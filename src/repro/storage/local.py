"""Local (client-side) storage backend.

Models the case where a node keeps data items on its own disk and only
anchors the provenance metadata on chain.  Costs are charged to the owning
device's disk; no network transfer is involved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import NotFoundError
from repro.devices.model import DeviceModel
from repro.storage.base import StorageBackend, StorageReceipt, StoredObject


class LocalStorageBackend(StorageBackend):
    """Dictionary-backed store with disk-time accounting on the local device."""

    scheme = "file"

    def __init__(self, device: Optional[DeviceModel] = None, host: str = "localhost") -> None:
        self.device = device
        self.host = host
        self._objects: Dict[str, StoredObject] = {}

    def location_of(self, path: str) -> str:
        return f"{self.scheme}://{self.host}/{path}"

    def _disk_cost(self, size_bytes: int, at_time: float, write: bool) -> float:
        if self.device is None:
            return 0.0
        duration = (
            self.device.disk_write_time(size_bytes)
            if write
            else self.device.disk_read_time(size_bytes)
        )
        _, end = self.device.occupy("disk", at_time, duration, label="local-storage")
        return end - at_time

    def store(self, path: str, data: bytes, at_time: float = 0.0) -> StorageReceipt:
        checksum = self.checksum(data)
        duration = self._disk_cost(len(data), at_time, write=True)
        self._objects[path] = StoredObject(
            path=path, data=bytes(data), checksum=checksum, stored_at=at_time + duration
        )
        return StorageReceipt(
            path=path,
            location=self.location_of(path),
            checksum=checksum,
            size_bytes=len(data),
            duration_s=duration,
            completed_at=at_time + duration,
        )

    def retrieve(self, path: str, at_time: float = 0.0) -> StorageReceipt:
        obj = self._objects.get(path)
        if obj is None:
            raise NotFoundError(f"no object stored at {path!r}")
        duration = self._disk_cost(obj.size_bytes, at_time, write=False)
        return StorageReceipt(
            path=path,
            location=self.location_of(path),
            checksum=obj.checksum,
            size_bytes=obj.size_bytes,
            duration_s=duration,
            completed_at=at_time + duration,
        )

    def get_object(self, path: str) -> Optional[StoredObject]:
        return self._objects.get(path)

    def exists(self, path: str) -> bool:
        return path in self._objects

    def delete(self, path: str) -> bool:
        return self._objects.pop(path, None) is not None

    def list_paths(self, prefix: str = "") -> List[str]:
        return sorted(path for path in self._objects if path.startswith(prefix))
