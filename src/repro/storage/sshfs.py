"""SSHFS-style remote storage backend.

The paper's off-chain storage "based on SSH file system always runs on a
separate node".  Writing a data item therefore costs:

* checksum computation on the *client* device (HyperProv always hashes the
  data before posting its metadata),
* SSH encryption overhead on the client CPU,
* a network transfer from the client's host to the storage node,
* a disk write on the storage node.

Reads mirror the same path in the other direction plus a checksum
verification on the client.  These per-size costs are exactly what drives
the shape of Fig. 1 and Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ChecksumMismatchError, NotFoundError, StorageError
from repro.devices.model import DeviceModel
from repro.network.fabric import NetworkFabric
from repro.storage.base import StorageBackend, StorageReceipt, StoredObject


@dataclass
class SSHFSConfig:
    """Tunables of the SSHFS mount."""

    #: Name of the network node hosting the SSHFS export.
    storage_node: str = "storage"
    #: Extra CPU factor for SSH encryption/decryption relative to hashing
    #: the same payload (AES on the client; cheap but not free on a RPi).
    encryption_factor: float = 0.5
    #: Fixed per-operation protocol overhead (SSH round-trips, FUSE), seconds.
    protocol_overhead_s: float = 0.004
    #: Verify the checksum after every retrieval.
    verify_on_read: bool = True


class SSHFSStorageBackend(StorageBackend):
    """Remote store reached over the simulated network."""

    scheme = "ssh"

    def __init__(
        self,
        network: NetworkFabric,
        storage_device: DeviceModel,
        config: Optional[SSHFSConfig] = None,
    ) -> None:
        self.network = network
        self.storage_device = storage_device
        self.config = config or SSHFSConfig()
        self._objects: Dict[str, StoredObject] = {}
        if self.config.storage_node not in network.nodes:
            network.register_node(self.config.storage_node, profile=storage_device.profile.nic)

    def location_of(self, path: str) -> str:
        return f"{self.scheme}://{self.config.storage_node}/{path}"

    # ------------------------------------------------------------------ cost
    def _client_side_cost(
        self, client_device: Optional[DeviceModel], size_bytes: int, at_time: float, label: str
    ) -> float:
        """Checksum + SSH encryption on the requesting device."""
        if client_device is None:
            return self.config.protocol_overhead_s
        duration = (
            client_device.hash_time(size_bytes) * (1.0 + self.config.encryption_factor)
            + self.config.protocol_overhead_s
        )
        _, end = client_device.charge_cpu(at_time, duration, label=label)
        return end - at_time

    # ----------------------------------------------------------------- store
    def store(
        self,
        path: str,
        data: bytes,
        at_time: float = 0.0,
        client_device: Optional[DeviceModel] = None,
        client_node: Optional[str] = None,
    ) -> StorageReceipt:
        """Upload ``data`` to the storage node.

        ``client_device``/``client_node`` identify where the upload
        originates; without them only the storage-side costs are charged.
        """
        checksum = self.checksum(data)
        cursor = at_time
        cursor += self._client_side_cost(client_device, len(data), cursor, f"sshfs-put:{path}")

        if client_node is not None:
            transfer = self.network.estimate_transfer_time(
                client_node, self.config.storage_node, len(data)
            )
        else:
            transfer = 0.0
        cursor += transfer

        write_duration = self.storage_device.disk_write_time(len(data))
        _, cursor = self.storage_device.occupy(
            "disk", cursor, write_duration, label=f"sshfs-write:{path}"
        )

        self._objects[path] = StoredObject(
            path=path, data=bytes(data), checksum=checksum, stored_at=cursor
        )
        return StorageReceipt(
            path=path,
            location=self.location_of(path),
            checksum=checksum,
            size_bytes=len(data),
            duration_s=cursor - at_time,
            completed_at=cursor,
        )

    # -------------------------------------------------------------- retrieve
    def retrieve(
        self,
        path: str,
        at_time: float = 0.0,
        client_device: Optional[DeviceModel] = None,
        client_node: Optional[str] = None,
        expected_checksum: Optional[str] = None,
    ) -> StorageReceipt:
        """Download the object at ``path`` and (optionally) verify its checksum."""
        obj = self._objects.get(path)
        if obj is None:
            raise NotFoundError(f"no object stored at {path!r} on {self.config.storage_node}")

        cursor = at_time
        read_duration = self.storage_device.disk_read_time(obj.size_bytes)
        _, cursor = self.storage_device.occupy(
            "disk", cursor, read_duration, label=f"sshfs-read:{path}"
        )
        if client_node is not None:
            cursor += self.network.estimate_transfer_time(
                self.config.storage_node, client_node, obj.size_bytes
            )
        if self.config.verify_on_read:
            cursor += self._client_side_cost(
                client_device, obj.size_bytes, cursor, f"sshfs-verify:{path}"
            )
            if expected_checksum is not None and expected_checksum != obj.checksum:
                raise ChecksumMismatchError(expected_checksum, obj.checksum)

        return StorageReceipt(
            path=path,
            location=self.location_of(path),
            checksum=obj.checksum,
            size_bytes=obj.size_bytes,
            duration_s=cursor - at_time,
            completed_at=cursor,
        )

    # ------------------------------------------------------------- inventory
    def get_object(self, path: str) -> Optional[StoredObject]:
        return self._objects.get(path)

    def exists(self, path: str) -> bool:
        return path in self._objects

    def delete(self, path: str) -> bool:
        return self._objects.pop(path, None) is not None

    def list_paths(self, prefix: str = "") -> List[str]:
        return sorted(path for path in self._objects if path.startswith(prefix))

    def total_bytes_stored(self) -> int:
        """Bytes currently held by the storage node (capacity planning)."""
        return sum(obj.size_bytes for obj in self._objects.values())

    def verify_integrity(self) -> List[str]:
        """Re-hash every stored object; returns paths whose checksum drifted."""
        corrupted = []
        for path, obj in self._objects.items():
            if self.checksum(obj.data) != obj.checksum:
                corrupted.append(path)
        if corrupted:
            raise StorageError(f"corrupted objects detected: {corrupted}")
        return corrupted
