"""Deterministic fault-injection subsystem.

Declarative :class:`FaultPlan` schedules (partitions, crashes, orderer
stalls, degraded links, byzantine rewrites, device churn) applied to a
running deployment by the :class:`FaultInjector` in virtual time —
byte-reproducible given the same plan, seed and deployment.
"""

from repro.faults.injector import FAULT_INJECTED_TOPIC, FaultInjector
from repro.faults.plan import (
    ByzantineFault,
    ChurnFault,
    Fault,
    FaultPlan,
    LinkDegradeFault,
    OrdererStallFault,
    PartitionFault,
    PeerCrashFault,
)

__all__ = [
    "FAULT_INJECTED_TOPIC",
    "ByzantineFault",
    "ChurnFault",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradeFault",
    "OrdererStallFault",
    "PartitionFault",
    "PeerCrashFault",
]
