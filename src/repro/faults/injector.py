"""Turns a :class:`~repro.faults.plan.FaultPlan` into simulation events.

The injector binds a plan to one :class:`~repro.fabric.network.FabricNetwork`
and schedules every injection on the deployment's discrete-event engine:

* Partition and churn windows are applied at their boundary instants.
  Overlapping windows compose with intersection semantics (two nodes can
  talk only if every active window allows it), implemented by grouping
  nodes on the tuple of group ids they hold across all active faults.
  After every boundary the orderer-reachable peers that fell behind are
  caught up, so partial heals recover immediately.
* Peer crashes/restarts and orderer stalls/resumes are point events.
* Link degradation is handed to the network fabric, which gates the
  extra latency / drop / duplicate behaviour on its own clock.
* Byzantine rewrites fire once, via the target peer's copy-on-write
  ``tamper`` hook, forging the last argument of the chosen transaction
  with bytes drawn from the plan-seeded RNG.

Every applied injection is appended to :attr:`FaultInjector.log` and
published as a ``fault_injected`` event on the deployment's aggregate
bus, so benchmarks can assert on exactly what happened and when.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.common.errors import SimulationError
from repro.faults.plan import (
    ByzantineFault,
    ChurnFault,
    FaultPlan,
    LinkDegradeFault,
    OrdererStallFault,
    PartitionFault,
    PeerCrashFault,
)
from repro.fabric.network import FabricNetwork
from repro.simulation.randomness import DeterministicRandom

#: Topic carrying one payload per applied injection on ``fabric.events``.
FAULT_INJECTED_TOPIC = "fault_injected"


class FaultInjector:
    """Schedules a fault plan against one deployment, deterministically."""

    def __init__(self, plan: FaultPlan, fabric: FabricNetwork) -> None:
        self.plan = plan.validate()
        self.fabric = fabric
        self.engine = fabric.engine
        self.rng = DeterministicRandom(plan.seed).fork("faults")
        #: Chronological record of every injection actually applied.
        self.log: List[Dict[str, Any]] = []
        self._events: List[Any] = []
        self._installed = False

    # ------------------------------------------------------------- install
    def install(self) -> "FaultInjector":
        """Schedule every injection; call once, before driving the run."""
        if self._installed:
            raise SimulationError("fault plan is already installed")
        self._installed = True

        window_faults = self.plan.of_type(PartitionFault, ChurnFault)
        boundaries = sorted(
            {fault.start_s for fault in window_faults}
            | {fault.end_s for fault in window_faults}
        )
        for boundary in boundaries:
            self._events.append(
                self.engine.schedule_at(
                    boundary,
                    lambda at=boundary: self._apply_partition_state(at),
                    label=f"fault:partition@{boundary}",
                )
            )

        for crash in self.plan.of_type(PeerCrashFault):
            self._events.append(
                self.engine.schedule_at(
                    crash.start_s,
                    lambda fault=crash: self._crash(fault),
                    label=f"fault:crash:{crash.peer}",
                )
            )
            self._events.append(
                self.engine.schedule_at(
                    crash.end_s,
                    lambda fault=crash: self._restart(fault),
                    label=f"fault:restart:{crash.peer}",
                )
            )

        for stall in self.plan.of_type(OrdererStallFault):
            self._events.append(
                self.engine.schedule_at(
                    stall.start_s,
                    lambda fault=stall: self._stall(fault),
                    label=f"fault:stall:{stall.shard}",
                )
            )
            self._events.append(
                self.engine.schedule_at(
                    stall.end_s,
                    lambda fault=stall: self._resume(fault),
                    label=f"fault:resume:{stall.shard}",
                )
            )

        for link in self.plan.of_type(LinkDegradeFault):
            # The network gates the window on its own clock; nothing to
            # schedule.  Registration errors (typo'd node) surface now.
            self.fabric.network.inject_link_fault(
                link.source,
                link.destination,
                start_s=link.start_s,
                end_s=link.end_s,
                extra_latency_s=link.extra_latency_s,
                drop_rate=link.drop_rate,
                duplicate_rate=link.duplicate_rate,
            )
            self._note(
                "link_degrade",
                at=link.start_s,
                source=link.source,
                destination=link.destination,
                publish=False,
            )

        for byz in self.plan.of_type(ByzantineFault):
            self._events.append(
                self.engine.schedule_at(
                    byz.at_s,
                    lambda fault=byz: self._tamper(fault),
                    label=f"fault:byzantine:{byz.peer}",
                )
            )
        return self

    def uninstall(self) -> None:
        """Cancel every not-yet-fired injection (the log is kept)."""
        for event in self._events:
            event.cancel()
        self._events.clear()

    # ------------------------------------------------- partition boundaries
    def _active_windows(self, at: float) -> List[Tuple[Tuple[str, ...], ...]]:
        """Group sets of every partition/churn fault active at ``at``."""
        active: List[Tuple[Tuple[str, ...], ...]] = []
        for fault in self.plan.of_type(PartitionFault, ChurnFault):
            if fault.start_s <= at < fault.end_s:
                if isinstance(fault, ChurnFault):
                    active.append(((fault.device,),))
                else:
                    active.append(fault.groups)
        return active

    def _apply_partition_state(self, at: float) -> None:
        partitions = self.fabric.network.partitions
        active = self._active_windows(at)
        if not active:
            if partitions.is_partitioned:
                partitions.heal()
                caught_up = self.fabric.catch_up_peers(at_time=self.engine.now)
                self._note("heal", at=at, caught_up=caught_up)
            return
        # Intersection semantics: a node's effective group is the tuple of
        # group ids it holds across every active window (implicit group -1
        # where unmentioned).  Nodes sharing the tuple can still talk.
        membership: Dict[str, List[int]] = {}
        for window_index, groups in enumerate(active):
            for group_index, group in enumerate(groups):
                for node in group:
                    slots = membership.setdefault(node, [-1] * len(active))
                    slots[window_index] = group_index
        merged: Dict[Tuple[int, ...], List[str]] = {}
        for node in sorted(membership):
            merged.setdefault(tuple(membership[node]), []).append(node)
        groups = [merged[key] for key in sorted(merged)]
        partitions.partition(groups)
        # A boundary can *shrink* the cut (partial heal): bring peers that
        # are reachable again up to date right away.
        caught_up = self.fabric.catch_up_peers(at_time=self.engine.now)
        self._note(
            "partition",
            at=at,
            groups=[list(group) for group in groups],
            caught_up=caught_up,
        )

    # --------------------------------------------------------- point faults
    def _crash(self, fault: PeerCrashFault) -> None:
        self.fabric.crash_peer(fault.peer)
        self._note("peer_crash", at=fault.start_s, peer=fault.peer)

    def _restart(self, fault: PeerCrashFault) -> None:
        self.fabric.restart_peer(fault.peer, at_time=self.engine.now)
        self._note("peer_restart", at=fault.end_s, peer=fault.peer)

    def _stall(self, fault: OrdererStallFault) -> None:
        self.fabric.shard(fault.shard).orderer.stall()
        self._note("orderer_stall", at=fault.start_s, shard=fault.shard)

    def _resume(self, fault: OrdererStallFault) -> None:
        self.fabric.shard(fault.shard).orderer.resume()
        self._note("orderer_resume", at=fault.end_s, shard=fault.shard)

    def _tamper(self, fault: ByzantineFault) -> None:
        peer = self.fabric.peer(fault.peer, shard=fault.shard)
        height = peer.block_store.height
        number = fault.block_number if fault.block_number >= 0 else height - 1
        if number < 0 or number >= height:
            self._note(
                "byzantine_skipped", at=fault.at_s, peer=fault.peer, block=number
            )
            return
        block = peer.block_store.block(number)
        if fault.tx_position >= len(block.transactions):
            self._note(
                "byzantine_skipped", at=fault.at_s, peer=fault.peer, block=number
            )
            return
        clone = peer.tamper(number, fault.tx_position)
        forged = self.rng.bytes(32).hex()
        if clone.args:
            clone.args[-1] = forged
        else:
            clone.args.append(forged)
        self._note(
            "byzantine_tamper",
            at=fault.at_s,
            peer=fault.peer,
            block=number,
            tx_position=fault.tx_position,
        )

    # ------------------------------------------------------------- plumbing
    def _note(self, kind: str, publish: bool = True, **details: Any) -> None:
        payload = {"kind": kind, **details}
        self.log.append(payload)
        if publish:
            self.fabric.events.publish(FAULT_INJECTED_TOPIC, payload)
