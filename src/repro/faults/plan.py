"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a pure description of *what goes wrong and when*,
expressed in virtual time: site partitions that later heal, peer crashes
with recovery, orderer intake stalls, degraded links, byzantine ledger
rewrites and device churn.  Plans are frozen data — they carry no
behaviour and can be validated, printed and compared independently of
any deployment.  The :class:`~repro.faults.injector.FaultInjector` turns
a plan into scheduled simulation events; because every injection rides
the discrete-event clock and the plan's seeded RNG, the same plan on the
same deployment produces byte-identical runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple, Type, Union

from repro.common.errors import ConfigurationError


def _check_window(name: str, start_s: float, end_s: float) -> None:
    if start_s < 0:
        raise ConfigurationError(f"{name}: start_s must be >= 0 (got {start_s})")
    if end_s < start_s:
        raise ConfigurationError(
            f"{name}: end_s ({end_s}) must be >= start_s ({start_s})"
        )


@dataclass(frozen=True)
class PartitionFault:
    """Split the node universe into isolated groups for a time window.

    ``groups`` name the nodes to isolate; nodes absent from every group
    form the implicit remainder (the usual "edge site cut off from the
    cloud" shape names just the site's nodes).  A zero-duration window
    (``end_s == start_s``) is a legal no-op: the fault is never active at
    any boundary instant.  Overlapping partition faults compose with
    intersection semantics — two nodes can talk only if every active
    fault allows it.
    """

    start_s: float
    end_s: float
    groups: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        # Normalise nested sequences so plans hash/compare structurally.
        object.__setattr__(
            self, "groups", tuple(tuple(group) for group in self.groups)
        )

    def validate(self) -> None:
        _check_window("PartitionFault", self.start_s, self.end_s)
        if not self.groups or all(not group for group in self.groups):
            raise ConfigurationError("PartitionFault: needs at least one named node")


@dataclass(frozen=True)
class ChurnFault:
    """One device drops off the network for a window, then returns.

    Modelled as a single-node partition: during the window the device can
    reach nobody (and nobody can reach it); on return it is healed back
    in and caught up like any partition survivor.
    """

    start_s: float
    end_s: float
    device: str

    def validate(self) -> None:
        _check_window("ChurnFault", self.start_s, self.end_s)
        if not self.device:
            raise ConfigurationError("ChurnFault: device name must be non-empty")


@dataclass(frozen=True)
class PeerCrashFault:
    """A peer process dies at ``start_s`` and restarts at ``end_s``.

    While down the peer endorses nothing, serves no queries and misses
    every block delivery; the restart replays the missed blocks (state
    recovery) before the peer serves traffic again.
    """

    start_s: float
    end_s: float
    peer: str

    def validate(self) -> None:
        _check_window("PeerCrashFault", self.start_s, self.end_s)
        if not self.peer:
            raise ConfigurationError("PeerCrashFault: peer name must be non-empty")


@dataclass(frozen=True)
class OrdererStallFault:
    """One shard's ordering service stops cutting blocks for a window.

    Intake keeps accepting transactions (the backlog grows); on resume
    the backlog drains in the order it arrived.
    """

    start_s: float
    end_s: float
    shard: int = 0

    def validate(self) -> None:
        _check_window("OrdererStallFault", self.start_s, self.end_s)
        if self.shard < 0:
            raise ConfigurationError("OrdererStallFault: shard must be >= 0")


@dataclass(frozen=True)
class LinkDegradeFault:
    """One directed link gets slower/lossy for a window (not severed)."""

    start_s: float
    end_s: float
    source: str
    destination: str
    extra_latency_s: float = 0.0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0

    def validate(self) -> None:
        _check_window("LinkDegradeFault", self.start_s, self.end_s)
        if not self.source or not self.destination:
            raise ConfigurationError("LinkDegradeFault: endpoints must be non-empty")
        if self.extra_latency_s < 0:
            raise ConfigurationError("LinkDegradeFault: extra_latency_s must be >= 0")
        for rate_name in ("drop_rate", "duplicate_rate"):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"LinkDegradeFault: {rate_name} must be in [0, 1] (got {rate})"
                )


@dataclass(frozen=True)
class ByzantineFault:
    """A peer rewrites one committed transaction in its ledger copy.

    Fires once at ``at_s``.  ``block_number=-1`` targets the newest block
    on the peer at fire time; if the peer's ledger is still empty the
    injection is recorded as skipped rather than failing the run.
    """

    at_s: float
    peer: str
    block_number: int = -1
    tx_position: int = 0
    shard: int = 0

    def validate(self) -> None:
        if self.at_s < 0:
            raise ConfigurationError("ByzantineFault: at_s must be >= 0")
        if not self.peer:
            raise ConfigurationError("ByzantineFault: peer name must be non-empty")
        if self.block_number < -1:
            raise ConfigurationError(
                "ByzantineFault: block_number must be >= 0, or -1 for newest"
            )
        if self.tx_position < 0:
            raise ConfigurationError("ByzantineFault: tx_position must be >= 0")
        if self.shard < 0:
            raise ConfigurationError("ByzantineFault: shard must be >= 0")


Fault = Union[
    PartitionFault,
    ChurnFault,
    PeerCrashFault,
    OrdererStallFault,
    LinkDegradeFault,
    ByzantineFault,
]


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault injections over one simulated run."""

    seed: int
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def validate(self) -> "FaultPlan":
        for fault in self.faults:
            fault.validate()
        return self

    def of_type(self, *types: Type["Fault"]) -> Tuple[Fault, ...]:
        return tuple(fault for fault in self.faults if isinstance(fault, types))

    @property
    def horizon_s(self) -> float:
        """Virtual time by which every scheduled injection has fired."""
        edges = [0.0]
        for fault in self.faults:
            if isinstance(fault, ByzantineFault):
                edges.append(fault.at_s)
            else:
                edges.append(fault.end_s)
        return max(edges)
